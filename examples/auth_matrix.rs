//! Prints the Figure 6 implicit-authorization conflict matrix and the
//! Figure 7 / Figure 8 lock compatibility matrices, regenerated from the
//! rules (see EXPERIMENTS.md F6–F8).
//!
//! Run with: `cargo run --example auth_matrix`

use corion::authz::matrix::render_figure6;
use corion::lock::modes::render_matrix;
use corion::LockMode;

fn main() {
    println!("Figure 6 — implicit authorizations on a component shared by two");
    println!("composite objects (rows: grant via Instance[j]; cols: via Instance[k]):\n");
    println!("{}", render_figure6());

    println!("Figure 7 — compatibility matrix, granularity + exclusive composite modes:\n");
    println!("{}", render_matrix(&LockMode::FIGURE7));

    println!("Figure 8 — expanded matrix with shared-reference modes (ISOS/IXOS/SIXOS):\n");
    println!("{}", render_matrix(&LockMode::ALL));
}
