//! The Vehicle physical part hierarchy — §2.3 Example 1.
//!
//! "We require that a vehicle part may be used for only one vehicle at any
//! point in time; however, vehicle parts may be re-used for other
//! vehicles." Independent exclusive composite references make that exact
//! policy expressible: exclusivity prevents double-fitting, independence
//! lets parts outlive the vehicle.
//!
//! Run with: `cargo run --example vehicle_assembly`

use corion::workload::VehicleSchema;
use corion::{Database, Filter, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    let schema = VehicleSchema::define(&mut db)?;

    // Build a vehicle bottom-up from freshly machined parts.
    let sedan = schema.build_vehicle(&mut db, "red", 4)?;
    let parts = db.components_of(sedan, &Filter::all())?;
    println!("sedan {sedan} assembled from {} parts", parts.len());

    // Exclusivity: a fitted body cannot be fitted to a second vehicle.
    let body = db.get_attr(sedan, "Body")?.refs()[0];
    let coupe = db.make(
        schema.vehicle,
        vec![("Color", Value::Str("blue".into()))],
        vec![],
    )?;
    match db.set_attr(coupe, "Body", Value::Ref(body)) {
        Err(e) => println!("fitting sedan's body to the coupe rejected: {e}"),
        Ok(()) => unreachable!("the Make-Component Rule forbids this"),
    }

    // Reading the whole composite object via the engine is one traversal;
    // count the page I/O it costs (clustering puts parts near the vehicle).
    db.clear_cache()?;
    db.reset_io_stats();
    let _ = db.components_of(sedan, &Filter::all())?;
    let io = db.disk_stats();
    println!(
        "reading the sedan cold: {} page reads (parts clustered with the vehicle)",
        io.reads
    );

    // Dismantle: the vehicle is deleted, the parts survive (independent)
    // and return to the free pool…
    let freed = schema.dismantle(&mut db, sedan)?;
    println!("dismantled the sedan, freed {} parts", freed.len());
    assert!(freed.iter().all(|&p| db.exists(p)));

    // …and can be re-used for the coupe.
    db.set_attr(coupe, "Body", Value::Ref(body))?;
    println!(
        "re-fitted the freed body to the coupe: child-of = {}",
        db.child_of(body, coupe)?
    );

    // Level filter: the tires are level-1 components of the coupe.
    for &tire in &freed {
        if tire != body && db.make_component(tire, coupe, "Tires").is_ok() {}
    }
    let level1 = db.components_of(coupe, &Filter::all().level(1))?;
    println!("coupe now has {} direct components", level1.len());
    Ok(())
}
