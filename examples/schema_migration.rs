//! Schema evolution in a living database — §4.
//!
//! A CAD shop's parts catalogue evolves: parts become shareable between
//! assemblies (I2, deferred), then independent of them (I3); an audit
//! attribute arrives mid-flight; a weak supplier link is promoted to a
//! composite reference (D2) — all while instances exist and without any
//! stop-the-world rewrite for the state-independent steps.
//!
//! Run with: `cargo run --example schema_migration`

use corion::core::evolution::{AttrTypeChange, Maintenance};
use corion::{AttributeDef, ClassBuilder, CompositeSpec, Database, Domain, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    let supplier = db.define_class(ClassBuilder::new("Supplier"))?;
    let part = db.define_class(
        ClassBuilder::new("Part")
            .attr("name", Domain::String)
            .attr("source", Domain::Class(supplier)), // weak, for now
    )?;
    let assembly = db.define_class(ClassBuilder::new("Assembly").attr_composite(
        "parts",
        Domain::SetOf(Box::new(Domain::Class(part))),
        CompositeSpec {
            exclusive: true,
            dependent: true,
        }, // the [KIM87b] default
    ))?;

    // Populate: 1000 parts in 100 assemblies, each from one supplier.
    let acme = db.make(supplier, vec![], vec![])?;
    let mut assemblies = Vec::new();
    for a in 0..100 {
        let parts: Vec<Value> = (0..10)
            .map(|p| {
                db.make(
                    part,
                    vec![
                        ("name", Value::Str(format!("part-{a}-{p}"))),
                        ("source", Value::Ref(acme)),
                    ],
                    vec![],
                )
                .map(Value::Ref)
            })
            .collect::<Result<_, _>>()?;
        assemblies.push(db.make(assembly, vec![("parts", Value::Set(parts))], vec![])?);
    }
    println!("populated: {} objects", db.object_count());

    // --- I2, deferred: parts become shareable --------------------------
    db.change_attribute_type(
        assembly,
        "parts",
        AttrTypeChange::ExclusiveToShared,
        Maintenance::Deferred,
    )?;
    println!("I2 exclusive->shared issued (deferred): no instance was touched");
    // The flags catch up lazily; sharing works immediately for whatever we
    // touch.
    let borrowed = db.get_attr(assemblies[0], "parts")?.refs()[0];
    db.make_component(borrowed, assemblies[1], "parts")?;
    println!("part {borrowed} is now shared by two assemblies");

    // --- I3, deferred: parts outlive their assemblies -------------------
    db.change_attribute_type(
        assembly,
        "parts",
        AttrTypeChange::ToIndependent,
        Maintenance::Deferred,
    )?;
    let victim = assemblies[2];
    let survivors = db.components_of(victim, &corion::Filter::all())?;
    db.delete(victim)?;
    assert!(survivors.iter().all(|&p| db.exists(p)));
    println!(
        "deleted an assembly; its {} parts survive (now independent)",
        survivors.len()
    );

    // --- add an attribute mid-flight ------------------------------------
    let mut audit = AttributeDef::plain("audited", Domain::Boolean);
    audit.init = Value::Bool(false);
    db.add_attribute(part, audit)?;
    println!(
        "added Part.audited; existing instance reads {:?}",
        db.get_attr(borrowed, "audited")?
    );

    // --- D2: promote the weak supplier link to a shared composite -------
    // State-dependent: the engine scans the full Part extension ("may be
    // very expensive") and verifies Topology Rule 3 before committing.
    db.change_attribute_type(
        part,
        "source",
        AttrTypeChange::WeakToShared { dependent: false },
        Maintenance::Immediate,
    )?;
    println!(
        "D2 weak->shared verified against {} parts",
        db.instances_of(part, false).len()
    );
    // Each part now holds a shared composite reference to the supplier —
    // the supplier is a component of every part that sources from it.
    assert!(db.component_of(acme, borrowed)?);
    println!(
        "supplier {} is now a shared component of {} parts",
        acme,
        db.parents_of(acme, &corion::Filter::all())?.len()
    );

    // Everything above preserved the §2 invariants:
    let report = db.verify_integrity()?;
    println!(
        "integrity: {} objects, {} composite edges, {} weak refs — all invariants hold",
        report.objects, report.composite_edges, report.weak_refs
    );
    Ok(())
}
