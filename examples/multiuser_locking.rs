//! Concurrent transactions over composite objects — §7.
//!
//! Spawns reader and writer threads over a fleet of vehicles (exclusive
//! hierarchy) and a document corpus (shared hierarchy) and shows the
//! protocol's properties live: different vehicles proceed in parallel;
//! a shared class admits several readers but a single writer.
//!
//! Run with: `cargo run --example multiuser_locking`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use corion::lock::protocol::composite_lockset;
use corion::workload::{Corpus, CorpusParams, Fleet};
use corion::{Database, LockIntent, LockManager, Transaction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- exclusive hierarchy: vehicles -----------------------------------
    let mut db = Database::new();
    let fleet = Fleet::generate(&mut db, 8, 4)?;
    let locksets: Vec<_> = fleet
        .vehicles
        .iter()
        .map(|&v| {
            (
                composite_lockset(&db, v, LockIntent::Read),
                composite_lockset(&db, v, LockIntent::Write),
            )
        })
        .collect();
    let locksets = Arc::new(locksets);
    let lm = LockManager::shared();
    let done = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for worker in 0..8usize {
        let lm = lm.clone();
        let locksets = locksets.clone();
        let done = done.clone();
        handles.push(thread::spawn(move || {
            for round in 0..50 {
                let idx = (worker * 31 + round * 7) % locksets.len();
                let write = (worker + round) % 4 == 0;
                let txn = Transaction::begin(lm.clone());
                let set = if write {
                    &locksets[idx].1
                } else {
                    &locksets[idx].0
                };
                set.acquire(&lm, txn.id())
                    .expect("no deadlock in this access pattern");
                // ... read or update the vehicle here ...
                txn.commit();
                done.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "vehicles (exclusive hierarchy): {} transactions committed, {} locks granted",
        done.load(Ordering::Relaxed),
        lm.grant_count()
    );

    // --- shared hierarchy: documents --------------------------------------
    // One writer at a time on the shared Section class: show that a writer
    // blocks a second writer but a reader set acquired first coexists with
    // nothing conflicting.
    let mut db = Database::new();
    let corpus = Corpus::generate(
        &mut db,
        CorpusParams {
            documents: 4,
            ..CorpusParams::default()
        },
    )?;
    let lm2 = LockManager::shared();
    let d0_read = composite_lockset(&db, corpus.documents[0], LockIntent::Read);
    let d1_read = composite_lockset(&db, corpus.documents[1], LockIntent::Read);
    let d2_write = composite_lockset(&db, corpus.documents[2], LockIntent::Write);
    let d3_write = composite_lockset(&db, corpus.documents[3], LockIntent::Write);

    let r1 = Transaction::begin(lm2.clone());
    let r2 = Transaction::begin(lm2.clone());
    d0_read.try_acquire(&lm2, r1.id())?;
    d1_read.try_acquire(&lm2, r2.id())?;
    println!("documents: two concurrent readers of different documents — OK (ISOS || ISOS)");

    let w1 = Transaction::begin(lm2.clone());
    match d2_write.try_acquire(&lm2, w1.id()) {
        Err(e) => println!("writer blocked while readers hold the shared Section class: {e}"),
        Ok(()) => println!("writer admitted (unexpected for ISOS vs IXOS)"),
    }
    r1.commit();
    r2.commit();
    lm2.release_all(w1.id()); // clear the partial acquisition
    let w1 = Transaction::begin(lm2.clone());
    d2_write.try_acquire(&lm2, w1.id())?;
    println!("readers done: writer admitted");
    let w2 = Transaction::begin(lm2.clone());
    match d3_write.try_acquire(&lm2, w2.id()) {
        Err(e) => println!(
            "second writer on another document rejected (one writer per shared class): {e}"
        ),
        Ok(()) => unreachable!("IXOS vs IXOS must conflict"),
    }
    w1.commit();
    w2.abort();
    Ok(())
}
