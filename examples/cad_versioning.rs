//! Versioned mechanical-CAD designs — §5.
//!
//! A CAD assembly references its subassembly; both evolve through versions.
//! Demonstrates static vs. dynamic binding, the Figure 1 derivation
//! semantics, default versions, and the ref-counted reverse composite
//! generic references of §5.3.
//!
//! Run with: `cargo run --example cad_versioning`

use corion::{ClassBuilder, CompositeSpec, Database, Domain, Value, VersionManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    let wing = db.define_class(
        ClassBuilder::new("Wing")
            .versionable()
            .attr("span", Domain::Float),
    )?;
    let aircraft = db.define_class(
        ClassBuilder::new("Aircraft")
            .versionable()
            .attr("name", Domain::String)
            .attr_composite(
                "wing",
                Domain::Class(wing),
                CompositeSpec {
                    exclusive: true,
                    dependent: false,
                },
            ),
    )?;
    let mut vm = VersionManager::new(db);

    // Versionable objects: a generic instance + version instances.
    let (g_wing, wing_v1) = vm.create(wing, vec![("span", Value::Float(30.0))])?;
    let (g_plane, plane_v1) = vm.create(aircraft, vec![("name", Value::Str("P-1".into()))])?;
    println!("wing generic {g_wing} v1 {wing_v1}; aircraft generic {g_plane} v1 {plane_v1}");

    // Static binding: P-1 v1 uses exactly wing v1.
    vm.bind_static(plane_v1, "wing", wing_v1)?;
    println!("statically bound plane v1 -> wing v1");

    // Derive a new wing (longer span) and a new plane version.
    let wing_v2 = vm.derive(wing_v1)?;
    vm.db_mut().set_attr(wing_v2, "span", Value::Float(34.5))?;
    let plane_v2 = vm.derive(plane_v1)?;
    // Figure 1: the derived plane's exclusive independent wing reference was
    // re-bound to the wing's *generic* instance (dynamic binding).
    let bound = vm.db_mut().get_attr(plane_v2, "wing")?;
    println!("derived plane v2 wing reference: {bound} (the generic — dynamic binding)");
    assert_eq!(bound, Value::Ref(g_wing));

    // Dynamic resolution follows the default version (latest by default).
    let resolved = vm.resolve(g_wing)?;
    println!("dynamic binding resolves to {resolved} (wing v2)");
    assert_eq!(resolved, wing_v2);

    // Pin the default back to v1 — §5.1's user-specified default.
    vm.set_default_version(g_wing, wing_v1)?;
    println!(
        "after set-default-version: resolves to {}",
        vm.resolve(g_wing)?
    );

    // §5.3 ref-counts: the wing generic records one reference from the
    // plane hierarchy per version-level reference.
    println!(
        "reverse composite generic ref-count wing<-plane: {:?}",
        vm.generic_ref_count(g_wing, g_plane)
    );
    println!(
        "parents-of generic wing: {:?}",
        vm.parents_of_generic(g_wing)?
    );

    // CV-4X: deleting all plane versions deletes the plane generic; the
    // wing is independent, so it survives.
    vm.delete_version(plane_v1)?;
    vm.delete_version(plane_v2)?;
    assert!(!vm.is_generic(g_plane));
    assert!(vm.is_generic(g_wing));
    println!(
        "deleted both plane versions: plane generic gone, wing generic survives \
         (ref-count now {:?})",
        vm.generic_ref_count(g_wing, g_plane)
    );
    Ok(())
}
