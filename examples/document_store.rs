//! A document store over the logical part hierarchy of §2.3 Example 2,
//! at corpus scale: documents share sections, deletion reference-counts
//! dependent shared components, annotations are private, figures are
//! independent.
//!
//! Run with: `cargo run --example document_store`

use corion::workload::{Corpus, CorpusParams};
use corion::{Database, Filter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    let corpus = Corpus::generate(
        &mut db,
        CorpusParams {
            documents: 20,
            sections_per_doc: 6,
            paras_per_section: 5,
            share_fraction: 0.4,
            figures_per_doc: 2,
            seed: 1989,
        },
    )?;
    println!(
        "corpus: {} documents, {} distinct sections, {} section references reused",
        corpus.documents.len(),
        corpus.sections.len(),
        corpus.shared_section_refs
    );

    // How shared is the corpus? Count sections by number of owning docs.
    let mut histogram = std::collections::BTreeMap::<usize, usize>::new();
    for &s in &corpus.sections {
        let owners = db.get(s)?.ds().len();
        *histogram.entry(owners).or_default() += 1;
    }
    for (owners, count) in &histogram {
        println!("  sections in {owners} document(s): {count}");
    }

    // Pick the most-shared section and show the §3 operations on it.
    let most_shared = corpus
        .sections
        .iter()
        .copied()
        .max_by_key(|&s| db.get(s).map(|o| o.ds().len()).unwrap_or(0))
        .expect("non-empty corpus");
    let owners = db.parents_of(most_shared, &Filter::all())?;
    println!(
        "most shared section {most_shared} belongs to {} documents",
        owners.len()
    );

    // Delete owners one at a time: the section survives until the last
    // dependent parent goes (the paper's reference-counted deletion).
    let total_before = db.object_count();
    for (i, &owner) in owners.iter().enumerate() {
        if !db.exists(owner) {
            continue;
        }
        db.delete(owner)?;
        let alive = db.exists(most_shared);
        println!(
            "  deleted owner {}/{} -> section alive: {alive}",
            i + 1,
            owners.len()
        );
        if i + 1 < owners.len() {
            assert!(alive, "section must survive while dependent parents remain");
        }
    }
    assert!(
        !db.exists(most_shared),
        "last dependent parent deleted the section"
    );
    println!(
        "objects: {} -> {} (cascades removed private annotations and orphaned paragraphs; \
         independent figures survive)",
        total_before,
        db.object_count()
    );

    // Independent figures from the deleted documents are still there.
    let images_alive = db.instances_of(corpus.schema.image, false).len();
    println!("figures still alive: {images_alive}");
    assert!(images_alive > 0);
    Ok(())
}
