//! An interactive REPL for the ORION message syntax of §2.3/§3.
//!
//! ```text
//! $ cargo run --example orion_repl
//! orion> (make-class 'Part)
//! #<class c0>
//! orion> (define p (make Part))
//! #<c0.i0>
//! ```
//!
//! Piping a script works too:
//! `cargo run --example orion_repl < script.lisp`

use std::io::{self, BufRead, Write};

use corion::Interpreter;

const BANNER: &str = "\
CORION — Composite Objects Revisited (SIGMOD 1989) message REPL
Messages: make-class, make, get, set!, delete, make-component,
          remove-component, components-of, parents-of, ancestors-of,
          compositep, exclusive-compositep, shared-compositep,
          dependent-compositep, component-of, child-of,
          exclusive-component-of, shared-component-of, instances-of,
          select, describe, verify-integrity, save-database,
          drop-attribute, add-attribute, add-superclass,
          remove-superclass, drop-class, change-attribute-type,
          create-versioned, derive-version, default-version,
          set-default-version, resolve, define.
Ctrl-D to exit.";

fn main() {
    println!("{BANNER}");
    let mut interp = Interpreter::new();
    let stdin = io::stdin();
    let interactive = atty_stdin();
    let mut buffer = String::new();
    loop {
        if interactive && buffer.is_empty() {
            print!("orion> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        // Evaluate once parentheses balance (multi-line input support).
        if paren_balance(&buffer) > 0 {
            continue;
        }
        let src = std::mem::take(&mut buffer);
        if src.trim().is_empty() {
            continue;
        }
        match interp.eval_str(&src) {
            Ok(v) => println!("{v}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn paren_balance(s: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev = '\0';
    for c in s.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth -= 1,
            _ => {}
        }
        prev = c;
    }
    depth
}

/// Best-effort interactivity probe without external crates: treat stdin as
/// interactive unless the `CORION_BATCH` env var is set (scripts/pipes work
/// either way; the probe only controls the prompt).
fn atty_stdin() -> bool {
    std::env::var_os("CORION_BATCH").is_none()
}
