//! Quickstart: the composite-object model in five minutes.
//!
//! Builds the paper's running example — documents sharing sections — and
//! walks through the five reference types, bottom-up creation, the
//! operations of §3, and the Deletion Rule.
//!
//! Run with: `cargo run --example quickstart`

use corion::{ClassBuilder, CompositeSpec, Database, Domain, Filter, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // --- schema ---------------------------------------------------------
    // (make-class 'Paragraph), (make-class 'Section ...), (make-class
    // 'Document ...) — §2.3 Example 2.
    let paragraph = db.define_class(ClassBuilder::new("Paragraph"))?;
    let image = db.define_class(ClassBuilder::new("Image"))?;
    let section = db.define_class(ClassBuilder::new("Section").attr_composite(
        "Content",
        Domain::SetOf(Box::new(Domain::Class(paragraph))),
        CompositeSpec {
            exclusive: false,
            dependent: true,
        }, // shared + dependent
    ))?;
    let document = db.define_class(
        ClassBuilder::new("Document")
            .attr("Title", Domain::String)
            .attr_composite(
                "Sections",
                Domain::SetOf(Box::new(Domain::Class(section))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            )
            .attr_composite(
                "Figures",
                Domain::SetOf(Box::new(Domain::Class(image))),
                CompositeSpec {
                    exclusive: false,
                    dependent: false,
                }, // independent
            ),
    )?;

    // --- bottom-up creation ----------------------------------------------
    // [KIM87b] forced top-down creation; the revisited model assembles
    // existing objects.
    let p1 = db.make(paragraph, vec![], vec![])?;
    let p2 = db.make(paragraph, vec![], vec![])?;
    let intro = db.make(
        section,
        vec![("Content", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)]))],
        vec![],
    )?;
    let figure = db.make(image, vec![], vec![])?;

    let thesis = db.make(
        document,
        vec![
            ("Title", Value::Str("Composite Objects Revisited".into())),
            ("Sections", Value::Set(vec![Value::Ref(intro)])),
            ("Figures", Value::Set(vec![Value::Ref(figure)])),
        ],
        vec![],
    )?;
    // The identical section becomes part of a second document — a *logical*
    // part hierarchy, impossible under [KIM87b]'s exclusive-only model.
    let survey = db.make(
        document,
        vec![
            ("Title", Value::Str("A Survey".into())),
            ("Sections", Value::Set(vec![Value::Ref(intro)])),
        ],
        vec![],
    )?;

    // --- operations (§3) --------------------------------------------------
    println!(
        "components-of thesis  = {:?}",
        db.components_of(thesis, &Filter::all())?
    );
    println!(
        "parents-of intro      = {:?}",
        db.parents_of(intro, &Filter::all())?
    );
    println!(
        "ancestors-of p1       = {:?}",
        db.ancestors_of(p1, &Filter::all())?
    );
    println!(
        "component-of p1 thesis          = {}",
        db.component_of(p1, thesis)?
    );
    println!(
        "shared-component-of intro thesis = {}",
        db.shared_component_of(intro, thesis)?
    );
    assert!(db.component_of(intro, thesis)? && db.component_of(intro, survey)?);

    // --- the Deletion Rule (§2.2) -----------------------------------------
    // Deleting the thesis does NOT delete the shared section: DS(intro)
    // still contains the survey.
    db.delete(thesis)?;
    assert!(db.exists(intro));
    println!(
        "after deleting thesis: intro survives, held by {:?}",
        db.parents_of(intro, &Filter::all())?
    );
    // The figure is independent — it survives no matter what.
    assert!(db.exists(figure));

    // Deleting the survey removes the last dependent parent: the section
    // and (transitively) its paragraphs go with it.
    db.delete(survey)?;
    assert!(!db.exists(intro) && !db.exists(p1) && !db.exists(p2));
    assert!(db.exists(figure), "independent components always survive");
    println!("after deleting survey: section and paragraphs cascaded, figure survives");
    println!("objects remaining: {}", db.object_count());
    Ok(())
}
