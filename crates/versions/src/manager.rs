//! The version manager: rules CV-1X…CV-4X (paper §5.2) and the reverse
//! composite generic reference bookkeeping of §5.3.

use std::collections::HashMap;

use corion_core::{ClassId, Database, DbError, Oid, Value};

use crate::error::{VersionError, VersionResult};
use crate::generic::GenericInstance;

/// One version-level composite reference the manager tracks for ref-count
/// maintenance: `parent` (a version instance or plain object) references
/// `target` (a version instance or a generic instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    parent: Oid,
    target: Oid,
    dependent: bool,
    exclusive: bool,
}

/// Manages versionable objects over a [`Database`].
///
/// Version instances are ordinary objects (their version-to-version
/// composite references use the engine's reverse references and Deletion
/// Rule). Generic instances are ordinary objects *owned by this manager*:
/// references to them (dynamic bindings) bypass the Make-Component Rule —
/// their legality is governed by rule CV-2X instead, and their reverse
/// information lives in [`GenericInstance::reverse_generic_refs`] with
/// ref-counts.
pub struct VersionManager {
    db: Database,
    generics: HashMap<Oid, GenericInstance>,
    version_to_generic: HashMap<Oid, Oid>,
    edges: Vec<Edge>,
    clock: u64,
}

impl VersionManager {
    /// Wraps an engine.
    pub fn new(db: Database) -> Self {
        VersionManager {
            db,
            generics: HashMap::new(),
            version_to_generic: HashMap::new(),
            edges: Vec::new(),
            clock: 0,
        }
    }

    /// Read access to the engine.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the engine (for non-versioned operations).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Unwraps the engine.
    pub fn into_db(self) -> Database {
        self.db
    }

    // ------------------------------------------------------------------
    // Creation and derivation
    // ------------------------------------------------------------------

    /// Creates a versionable object: a generic instance plus its first
    /// version instance (with the given attribute values). The class must
    /// be declared versionable (§5.1).
    pub fn create(
        &mut self,
        class: ClassId,
        values: Vec<(&str, Value)>,
    ) -> VersionResult<(Oid, Oid)> {
        if !self.db.class(class)?.versionable {
            return Err(VersionError::NotVersionable(class));
        }
        let generic = self.db.make(class, vec![], vec![])?;
        let v1 = self.db.make(class, values, vec![])?;
        self.clock += 1;
        let mut g = GenericInstance::new();
        g.add_version(v1, None, self.clock);
        self.generics.insert(generic, g);
        self.version_to_generic.insert(v1, generic);
        self.register_initial_edges(v1)?;
        Ok((generic, v1))
    }

    /// Records edges (and generic ref-counts) for composite references the
    /// engine wired during a `make`.
    fn register_initial_edges(&mut self, parent: Oid) -> VersionResult<()> {
        let class = self.db.class(parent.class)?.clone();
        let obj = self.db.get(parent)?;
        for (idx, def) in class.attrs.iter().enumerate() {
            if let Some(spec) = def.composite {
                for target in obj.attrs[idx].refs() {
                    self.note_edge(parent, target, spec.dependent, spec.exclusive);
                }
            }
        }
        Ok(())
    }

    /// True if `oid` is a generic instance.
    pub fn is_generic(&self, oid: Oid) -> bool {
        self.generics.contains_key(&oid)
    }

    /// True if `oid` is a version instance.
    pub fn is_version(&self, oid: Oid) -> bool {
        self.version_to_generic.contains_key(&oid)
    }

    /// The generic instance owning a version instance.
    pub fn generic_of(&self, version: Oid) -> VersionResult<Oid> {
        self.version_to_generic
            .get(&version)
            .copied()
            .ok_or(VersionError::NotAVersion(version))
    }

    /// The derivation hierarchy of a generic instance.
    pub fn generic(&self, generic: Oid) -> VersionResult<&GenericInstance> {
        self.generics
            .get(&generic)
            .ok_or(VersionError::NotAGeneric(generic))
    }

    /// Sets the user default version (§5.1).
    pub fn set_default_version(&mut self, generic: Oid, version: Oid) -> VersionResult<()> {
        let g = self
            .generics
            .get_mut(&generic)
            .ok_or(VersionError::NotAGeneric(generic))?;
        if !g.has_version(version) {
            return Err(VersionError::NotAVersion(version));
        }
        g.user_default = Some(version);
        Ok(())
    }

    /// The default version: user-specified, else latest by timestamp.
    pub fn default_version(&self, generic: Oid) -> VersionResult<Oid> {
        self.generic(generic)?
            .default_version()
            .ok_or(VersionError::NotAGeneric(generic))
    }

    /// Resolves a dynamically bound reference: a generic instance resolves
    /// to its default version; anything else resolves to itself.
    pub fn resolve(&self, oid: Oid) -> VersionResult<Oid> {
        if self.is_generic(oid) {
            self.default_version(oid)
        } else {
            Ok(oid)
        }
    }

    /// Derives a new version instance from `from` — rule CV-2X's copy
    /// semantics (Figure 1):
    ///
    /// * a **shared** static reference is copied as-is (any number of
    ///   shared references to a version instance are legal);
    /// * an **independent exclusive** static reference to a version
    ///   instance is re-bound "to the generic instance g-d of the
    ///   referenced version instance" (Figure 1.b);
    /// * a **dependent** exclusive reference "is set to Nil";
    /// * dynamic references (to generic instances) are copied as-is
    ///   (CV-1X: any number of version instances of g-c may share the
    ///   composite reference to g-d).
    pub fn derive(&mut self, from: Oid) -> VersionResult<Oid> {
        let generic = self.generic_of(from)?;
        let class = self.db.class(from.class)?.clone();
        let src = self.db.get(from)?;

        // Partition attribute values into those the engine may wire
        // normally (plain values + shared static refs) and dynamic refs the
        // manager wires itself.
        let mut static_values: Vec<(String, Value)> = Vec::new();
        let mut dynamic_values: Vec<(String, Value)> = Vec::new();
        for (idx, def) in class.attrs.iter().enumerate() {
            let value = src.attrs[idx].clone();
            match def.composite {
                None => static_values.push((def.name.clone(), value)),
                Some(spec) => {
                    let mut statics: Vec<Value> = Vec::new();
                    let mut dynamics: Vec<Value> = Vec::new();
                    for r in value.refs() {
                        if self.is_generic(r) {
                            dynamics.push(Value::Ref(r));
                        } else if spec.exclusive {
                            if spec.dependent {
                                // CV-2X: dependent exclusive -> Nil.
                            } else if let Ok(g) = self.generic_of(r) {
                                // CV-2X: rebind to the generic instance.
                                dynamics.push(Value::Ref(g));
                            }
                            // Exclusive reference to a non-versionable
                            // object: copying would create a second
                            // exclusive reference, so it is dropped (Nil),
                            // the conservative reading of CV-2X.
                        } else {
                            statics.push(Value::Ref(r));
                        }
                    }
                    let is_set = def.domain.is_set();
                    static_values.push((def.name.clone(), pack(statics, is_set)));
                    if !dynamics.is_empty() {
                        dynamic_values.push((def.name.clone(), pack(dynamics, is_set)));
                    }
                }
            }
        }

        let value_refs: Vec<(&str, Value)> = static_values
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let new_version = self.db.make(from.class, value_refs, vec![])?;
        self.clock += 1;
        self.generics
            .get_mut(&generic)
            .expect("generic of a version exists")
            .add_version(new_version, Some(from), self.clock);
        self.version_to_generic.insert(new_version, generic);
        self.register_initial_edges(new_version)?;

        // Wire dynamic references (manager-owned semantics).
        for (attr, value) in dynamic_values {
            let def = class.attr(&attr).expect("attr from class").clone();
            let spec = def
                .composite
                .expect("dynamic values only on composite attrs");
            for target_generic in value.refs() {
                self.bind_dynamic_inner(
                    new_version,
                    &attr,
                    target_generic,
                    spec.dependent,
                    spec.exclusive,
                    def.domain.is_set(),
                )?;
            }
        }
        Ok(new_version)
    }

    // ------------------------------------------------------------------
    // Binding
    // ------------------------------------------------------------------

    /// Statically binds: makes version instance (or plain object) `target` a
    /// component of `parent` through composite attribute `attr`.
    ///
    /// The engine enforces the version-instance half of CV-2X (at most one
    /// exclusive reference / any number of shared ones); the manager
    /// enforces the generic half — exclusive references to version
    /// instances of one versionable object must all come from a single
    /// version-derivation hierarchy (which also yields CV-3X).
    pub fn bind_static(&mut self, parent: Oid, attr: &str, target: Oid) -> VersionResult<()> {
        let def = self
            .db
            .class(parent.class)?
            .attr(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: parent.class,
                attr: attr.into(),
            })?
            .clone();
        let spec = def.composite.ok_or_else(|| {
            VersionError::Db(DbError::NotComposite {
                class: parent.class,
                attr: attr.into(),
            })
        })?;
        if spec.exclusive {
            if let Ok(target_generic) = self.generic_of(target) {
                let parent_key = self.parent_key(parent);
                let g = self.generic(target_generic)?;
                if g.has_exclusive_ref_from_other(parent_key) {
                    return Err(VersionError::Cv3xViolation {
                        generic: target_generic,
                        detail: format!(
                            "version instances of different versionable objects cannot hold \
                             exclusive references to versions of {target_generic}"
                        ),
                    });
                }
            }
        }
        self.db.make_component(target, parent, attr)?;
        self.note_edge(parent, target, spec.dependent, spec.exclusive);
        Ok(())
    }

    /// Dynamically binds: points `parent.attr` at generic instance
    /// `target_generic`; dereferences resolve to the default version.
    pub fn bind_dynamic(
        &mut self,
        parent: Oid,
        attr: &str,
        target_generic: Oid,
    ) -> VersionResult<()> {
        if !self.is_generic(target_generic) {
            return Err(VersionError::NotAGeneric(target_generic));
        }
        let def = self
            .db
            .class(parent.class)?
            .attr(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: parent.class,
                attr: attr.into(),
            })?
            .clone();
        let spec = def.composite.ok_or_else(|| {
            VersionError::Db(DbError::NotComposite {
                class: parent.class,
                attr: attr.into(),
            })
        })?;
        self.bind_dynamic_inner(
            parent,
            attr,
            target_generic,
            spec.dependent,
            spec.exclusive,
            def.domain.is_set(),
        )
    }

    fn bind_dynamic_inner(
        &mut self,
        parent: Oid,
        attr: &str,
        target_generic: Oid,
        dependent: bool,
        exclusive: bool,
        is_set: bool,
    ) -> VersionResult<()> {
        let parent_key = self.parent_key(parent);
        {
            let g = self
                .generics
                .get(&target_generic)
                .ok_or(VersionError::NotAGeneric(target_generic))?;
            if exclusive && g.has_exclusive_ref_from_other(parent_key) {
                // CV-2X: "A generic instance may have more than one
                // exclusive composite reference to it, only if all
                // references are from objects that belong to the same
                // version-derivation hierarchy."
                return Err(VersionError::Cv2xViolation {
                    generic: target_generic,
                    detail: "exclusive references from multiple version-derivation hierarchies"
                        .into(),
                });
            }
        }
        let mut value = self.db.get_attr(parent, attr)?;
        if value.add_ref(target_generic, is_set) {
            self.db.set_attr_weak(parent, attr, value)?;
            self.note_edge(parent, target_generic, dependent, exclusive);
        }
        Ok(())
    }

    /// Removes the composite reference `parent.attr -> target` (static or
    /// dynamic), decrementing the generic ref-count — the Figure 3
    /// narrative: the reverse composite generic reference is removed only
    /// when its ref-count reaches zero.
    pub fn unbind(&mut self, parent: Oid, attr: &str, target: Oid) -> VersionResult<()> {
        if self.is_generic(target) {
            let mut value = self.db.get_attr(parent, attr)?;
            if value.remove_ref(target) == 0 {
                return Err(VersionError::Db(DbError::NoSuchObject(target)));
            }
            self.db.set_attr_weak(parent, attr, value)?;
        } else {
            self.db.remove_component(target, parent, attr)?;
        }
        self.drop_edge(parent, target);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deletion (rule CV-4X)
    // ------------------------------------------------------------------

    /// Deletes a version instance. Statically bound dependent components
    /// cascade through the engine's Deletion Rule ("the deletion of a
    /// version instance causes a recursive deletion of all version
    /// instances statically bound to it through dependent references").
    /// If the last version of a generic instance dies, the generic dies
    /// with it, cascading per CV-4X.
    pub fn delete_version(&mut self, version: Oid) -> VersionResult<Vec<Oid>> {
        self.generic_of(version)?;
        let deleted = self.db.delete(version)?;
        let emptied = self.after_deletion(&deleted)?;
        let mut all = deleted;
        // "If the deleted version instance c-i is the only version of the
        // object O, its generic instance g-c is also deleted…" — and the
        // cascade may have emptied other hierarchies too.
        for g in emptied {
            if self.is_generic(g) {
                all.extend(self.delete_generic(g)?);
            }
        }
        Ok(all)
    }

    /// Deletes a generic instance: "all generic instances to which it has
    /// exclusive references are recursively deleted. Further, if a generic
    /// instance is deleted, all its version instances are deleted."
    pub fn delete_generic(&mut self, generic: Oid) -> VersionResult<Vec<Oid>> {
        if !self.is_generic(generic) {
            return Err(VersionError::NotAGeneric(generic));
        }
        let mut all_deleted = Vec::new();
        let mut queue = vec![generic];
        while let Some(g_oid) = queue.pop() {
            let Some(g) = self.generics.remove(&g_oid) else {
                continue;
            };
            // Exclusive references from this hierarchy to other generics
            // cascade (CV-4X).
            let members: Vec<Oid> = g.versions.iter().map(|v| v.oid).chain([g_oid]).collect();
            for e in self.edges.clone() {
                if e.exclusive && members.contains(&e.parent) {
                    if let Some(&target_generic) = self.version_to_generic.get(&e.target) {
                        queue.push(target_generic);
                    } else if self.generics.contains_key(&e.target) {
                        queue.push(e.target);
                    }
                }
            }
            // Delete every version instance, then the generic object itself.
            // Cascades may empty other hierarchies; those follow per CV-4X.
            for v in &g.versions {
                if self.db.exists(v.oid) {
                    let deleted = self.db.delete(v.oid)?;
                    queue.extend(self.after_deletion(&deleted)?);
                    all_deleted.extend(deleted);
                }
                self.version_to_generic.remove(&v.oid);
            }
            if self.db.exists(g_oid) {
                let deleted = self.db.delete(g_oid)?;
                queue.extend(self.after_deletion(&deleted)?);
                all_deleted.extend(deleted);
            }
        }
        Ok(all_deleted)
    }

    /// Updates manager bookkeeping after the engine deleted `deleted`:
    /// drops every edge touching a dead object (decrementing generic
    /// ref-counts — while the dead object's generic mapping is still known,
    /// so §5.3's parent keys resolve correctly), then removes dead versions
    /// from their hierarchies. Returns generics left without versions; the
    /// caller cascades them per CV-4X.
    fn after_deletion(&mut self, deleted: &[Oid]) -> VersionResult<Vec<Oid>> {
        for &oid in deleted {
            let dead_edges: Vec<Edge> = self
                .edges
                .iter()
                .copied()
                .filter(|e| e.parent == oid || e.target == oid)
                .collect();
            for e in dead_edges {
                self.drop_edge(e.parent, e.target);
            }
        }
        let mut emptied = Vec::new();
        for &oid in deleted {
            if let Some(generic) = self.version_to_generic.remove(&oid) {
                if let Some(g) = self.generics.get_mut(&generic) {
                    g.remove_version(oid);
                    if g.versions.is_empty() && !emptied.contains(&generic) {
                        emptied.push(generic);
                    }
                }
            }
        }
        Ok(emptied)
    }

    // ------------------------------------------------------------------
    // Reverse composite generic references (§5.3)
    // ------------------------------------------------------------------

    /// §5.3's referencing key: "if O' is a versionable object, a reverse
    /// composite reference to the generic instance g' of O' is stored";
    /// otherwise to O' itself.
    fn parent_key(&self, parent: Oid) -> Oid {
        self.version_to_generic
            .get(&parent)
            .copied()
            .unwrap_or(parent)
    }

    /// The generic-level key of a reference target: the generic owning a
    /// version instance, the generic itself for a dynamic binding, `None`
    /// for a non-versioned target.
    fn target_generic(&self, target: Oid) -> Option<Oid> {
        if self.generics.contains_key(&target) {
            Some(target)
        } else {
            self.version_to_generic.get(&target).copied()
        }
    }

    fn note_edge(&mut self, parent: Oid, target: Oid, dependent: bool, exclusive: bool) {
        self.edges.push(Edge {
            parent,
            target,
            dependent,
            exclusive,
        });
        if let Some(tg) = self.target_generic(target) {
            let key = self.parent_key(parent);
            if let Some(g) = self.generics.get_mut(&tg) {
                g.incr_ref(key, dependent, exclusive);
            }
        }
    }

    fn drop_edge(&mut self, parent: Oid, target: Oid) {
        let Some(idx) = self
            .edges
            .iter()
            .position(|e| e.parent == parent && e.target == target)
        else {
            return;
        };
        let e = self.edges.remove(idx);
        if let Some(tg) = self.target_generic(target) {
            let key = self.parent_key(parent);
            if let Some(g) = self.generics.get_mut(&tg) {
                g.decr_ref(key, e.dependent, e.exclusive);
            }
        }
    }

    /// `parents-of` on a generic instance: answered from the reverse
    /// composite generic references — Figure 3.b: "if the operation
    /// parents-of is applied on the generic instance b1, the result would
    /// be the instance a1, even if all composite references are statically
    /// bound."
    pub fn parents_of_generic(&self, generic: Oid) -> VersionResult<Vec<Oid>> {
        Ok(self.generic(generic)?.generic_parents())
    }

    /// The ref-count of the reverse composite generic reference from
    /// `generic` to `parent_key`, if present (test/bench introspection).
    pub fn generic_ref_count(&self, generic: Oid, parent_key: Oid) -> Option<u32> {
        self.generics.get(&generic).and_then(|g| {
            g.reverse_generic_refs
                .iter()
                .filter(|r| r.parent == parent_key)
                .map(|r| r.ref_count)
                .max()
        })
    }
}

/// Packs a list of refs back into a scalar or set value.
fn pack(mut refs: Vec<Value>, is_set: bool) -> Value {
    if is_set {
        Value::Set(refs)
    } else if refs.is_empty() {
        Value::Null
    } else {
        refs.swap_remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::{ClassBuilder, CompositeSpec, Domain};

    /// Versionable classes C and D; C has composite attribute `part` with
    /// domain D, parameterised by spec.
    fn setup(exclusive: bool, dependent: bool) -> (VersionManager, ClassId, ClassId) {
        let mut db = Database::new();
        let d = db
            .define_class(ClassBuilder::new("D").versionable())
            .unwrap();
        let c = db
            .define_class(ClassBuilder::new("C").versionable().attr_composite(
                "part",
                Domain::Class(d),
                CompositeSpec {
                    exclusive,
                    dependent,
                },
            ))
            .unwrap();
        (VersionManager::new(db), c, d)
    }

    #[test]
    fn create_requires_versionable_class() {
        let mut db = Database::new();
        let plain = db.define_class(ClassBuilder::new("Plain")).unwrap();
        let mut vm = VersionManager::new(db);
        assert!(matches!(
            vm.create(plain, vec![]),
            Err(VersionError::NotVersionable(_))
        ));
    }

    #[test]
    fn create_and_derive_builds_hierarchy() {
        let (mut vm, c, _d) = setup(true, false);
        let (g, v1) = vm.create(c, vec![]).unwrap();
        let v2 = vm.derive(v1).unwrap();
        let v3 = vm.derive(v1).unwrap();
        let gi = vm.generic(g).unwrap();
        assert_eq!(gi.versions.len(), 3);
        assert_eq!(gi.derived_from(v1), vec![v2, v3]);
        assert!(vm.is_version(v2) && vm.is_generic(g));
        assert_eq!(vm.generic_of(v3).unwrap(), g);
    }

    #[test]
    fn default_version_is_latest_then_user_choice() {
        let (mut vm, c, _d) = setup(true, false);
        let (g, v1) = vm.create(c, vec![]).unwrap();
        let v2 = vm.derive(v1).unwrap();
        assert_eq!(vm.default_version(g).unwrap(), v2);
        vm.set_default_version(g, v1).unwrap();
        assert_eq!(vm.default_version(g).unwrap(), v1);
        assert_eq!(vm.resolve(g).unwrap(), v1);
        assert_eq!(
            vm.resolve(v2).unwrap(),
            v2,
            "non-generics resolve to themselves"
        );
    }

    #[test]
    fn figure1_derive_rebinds_independent_exclusive_to_generic() {
        // Figure 1: c-i has an exclusive (independent) reference to d-k;
        // the copy c-j's reference is set to the generic g-d.
        let (mut vm, c, d) = setup(true, false);
        let (g_d, d_k) = vm.create(d, vec![]).unwrap();
        let (_g_c, c_i) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c_i, "part", d_k).unwrap();
        let c_j = vm.derive(c_i).unwrap();
        assert_eq!(vm.db_mut().get_attr(c_j, "part").unwrap(), Value::Ref(g_d));
        // The original static binding is untouched.
        assert_eq!(vm.db_mut().get_attr(c_i, "part").unwrap(), Value::Ref(d_k));
    }

    #[test]
    fn figure1_derive_nils_dependent_exclusive() {
        // "However, if the reference is a dependent composite reference, it
        // is set to Nil."
        let (mut vm, c, d) = setup(true, true);
        let (_g_d, d_k) = vm.create(d, vec![]).unwrap();
        let (_g_c, c_i) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c_i, "part", d_k).unwrap();
        let c_j = vm.derive(c_i).unwrap();
        assert_eq!(vm.db_mut().get_attr(c_j, "part").unwrap(), Value::Null);
    }

    #[test]
    fn derive_copies_shared_static_references() {
        let (mut vm, c, d) = setup(false, false);
        let (_g_d, d_k) = vm.create(d, vec![]).unwrap();
        let (_g_c, c_i) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c_i, "part", d_k).unwrap();
        let c_j = vm.derive(c_i).unwrap();
        assert_eq!(vm.db_mut().get_attr(c_j, "part").unwrap(), Value::Ref(d_k));
        // d_k now carries two shared reverse references.
        assert_eq!(vm.db_mut().get(d_k).unwrap().is_().len(), 2);
    }

    #[test]
    fn derive_copies_dynamic_bindings() {
        // CV-1X: any number of version instances of g-c may have the same
        // composite reference to g-d.
        let (mut vm, c, d) = setup(true, false);
        let (g_d, _d1) = vm.create(d, vec![]).unwrap();
        let (g_c, c_i) = vm.create(c, vec![]).unwrap();
        vm.bind_dynamic(c_i, "part", g_d).unwrap();
        let c_j = vm.derive(c_i).unwrap();
        assert_eq!(vm.db_mut().get_attr(c_j, "part").unwrap(), Value::Ref(g_d));
        assert_eq!(
            vm.generic_ref_count(g_d, g_c),
            Some(2),
            "two version-level refs"
        );
    }

    #[test]
    fn figure2_versions_may_reference_different_versions() {
        // Different version instances of g-c reference different version
        // instances of g-d, each with one exclusive reference.
        let (mut vm, c, d) = setup(true, false);
        let (_g_d, d1) = vm.create(d, vec![]).unwrap();
        let d2 = vm.derive(d1).unwrap();
        let (_g_c, c1) = vm.create(c, vec![]).unwrap();
        let c2 = vm.derive(c1).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        vm.bind_static(c2, "part", d2).unwrap();
        assert_eq!(vm.db_mut().get(d1).unwrap().ix(), vec![c1]);
        assert_eq!(vm.db_mut().get(d2).unwrap().ix(), vec![c2]);
    }

    #[test]
    fn cv2x_version_instance_single_exclusive_reference() {
        let (mut vm, c, d) = setup(true, false);
        let (_g_d, d1) = vm.create(d, vec![]).unwrap();
        let (_g_c, c1) = vm.create(c, vec![]).unwrap();
        let (_g_c2, c1b) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        assert!(
            vm.bind_static(c1b, "part", d1).is_err(),
            "second exclusive ref rejected"
        );
    }

    #[test]
    fn cv3x_exclusive_refs_to_one_generic_from_one_hierarchy_only() {
        // Versions of *different* versionable objects may not hold
        // exclusive references to different versions of the same object O.
        let (mut vm, c, d) = setup(true, false);
        let (_g_d, d1) = vm.create(d, vec![]).unwrap();
        let d2 = vm.derive(d1).unwrap();
        let (_g_c, c1) = vm.create(c, vec![]).unwrap();
        let (_g_c2, x1) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        let err = vm.bind_static(x1, "part", d2).unwrap_err();
        assert!(matches!(err, VersionError::Cv3xViolation { .. }));
        // A version from the *same* hierarchy is fine (CV-2X).
        let c2 = vm.derive(c1).unwrap();
        vm.bind_static(c2, "part", d2).unwrap();
    }

    #[test]
    fn cv2x_generic_exclusive_dynamic_bindings_one_hierarchy() {
        let (mut vm, c, d) = setup(true, false);
        let (g_d, _d1) = vm.create(d, vec![]).unwrap();
        let (_g_c, c1) = vm.create(c, vec![]).unwrap();
        let (_g_x, x1) = vm.create(c, vec![]).unwrap();
        vm.bind_dynamic(c1, "part", g_d).unwrap();
        let err = vm.bind_dynamic(x1, "part", g_d).unwrap_err();
        assert!(matches!(err, VersionError::Cv2xViolation { .. }));
        // Same hierarchy: allowed.
        let c2 = vm.derive(c1).unwrap();
        // derive already copied the dynamic binding; binding again is a
        // no-op rather than an error.
        vm.bind_dynamic(c2, "part", g_d).unwrap();
    }

    #[test]
    fn figure3_ref_count_lifecycle() {
        // Figure 3.b: a1.v0 -> b1.v0 and a1.v1 -> b1.v1 give the reverse
        // composite generic reference from b1 to a1 a ref-count of 2.
        let (mut vm, c, d) = setup(true, false);
        let (g_b, b_v0) = vm.create(d, vec![]).unwrap();
        let b_v1 = vm.derive(b_v0).unwrap();
        let (g_a, a_v0) = vm.create(c, vec![]).unwrap();
        let a_v1 = vm.derive(a_v0).unwrap();
        vm.bind_static(a_v0, "part", b_v0).unwrap();
        vm.bind_static(a_v1, "part", b_v1).unwrap();
        assert_eq!(vm.generic_ref_count(g_b, g_a), Some(2));
        // "Suppose the reference from a1.v0 to b1.v0 is removed… the
        // reverse composite generic reference from b1 to a1 is not removed;
        // only the ref-count is decremented by one."
        vm.unbind(a_v0, "part", b_v0).unwrap();
        assert_eq!(vm.generic_ref_count(g_b, g_a), Some(1));
        assert!(vm.db_mut().get(b_v0).unwrap().reverse_refs.is_empty());
        // "Now if the composite reference from a1.v1 to b1.v1 is removed…
        // the reverse composite generic reference from b1 to a1 is also
        // removed, since decrementing ref-count by one will set it to zero."
        vm.unbind(a_v1, "part", b_v1).unwrap();
        assert_eq!(vm.generic_ref_count(g_b, g_a), None);
        // parents-of on the generic now yields nothing.
        assert!(vm.parents_of_generic(g_b).unwrap().is_empty());
    }

    #[test]
    fn figure3_parents_of_generic_sees_static_binders() {
        let (mut vm, c, d) = setup(true, false);
        let (g_b, b_v0) = vm.create(d, vec![]).unwrap();
        let (g_a, a_v0) = vm.create(c, vec![]).unwrap();
        vm.bind_static(a_v0, "part", b_v0).unwrap();
        assert_eq!(vm.parents_of_generic(g_b).unwrap(), vec![g_a]);
    }

    #[test]
    fn cv4x_deleting_last_version_deletes_generic() {
        let (mut vm, c, _d) = setup(true, false);
        let (g, v1) = vm.create(c, vec![]).unwrap();
        let v2 = vm.derive(v1).unwrap();
        vm.delete_version(v1).unwrap();
        assert!(vm.is_generic(g), "one version remains");
        vm.delete_version(v2).unwrap();
        assert!(!vm.is_generic(g), "last version gone -> generic gone");
        assert!(!vm.db().exists(g), "generic object removed from the engine");
    }

    #[test]
    fn cv4x_generic_deletion_cascades_exclusive_references() {
        // "When a generic instance g-c is deleted, all generic instances to
        // which it has exclusive references are recursively deleted."
        let (mut vm, c, d) = setup(true, false);
        let (g_d, d1) = vm.create(d, vec![]).unwrap();
        let (g_c, c1) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        vm.delete_generic(g_c).unwrap();
        assert!(!vm.is_generic(g_c));
        assert!(
            !vm.is_generic(g_d),
            "exclusively referenced generic cascades"
        );
        assert!(!vm.db().exists(d1));
    }

    #[test]
    fn cv4x_shared_references_do_not_cascade_generics() {
        let (mut vm, c, d) = setup(false, false);
        let (g_d, d1) = vm.create(d, vec![]).unwrap();
        let (g_c, c1) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        vm.delete_generic(g_c).unwrap();
        assert!(vm.is_generic(g_d), "shared reference does not cascade");
        assert!(vm.db().exists(d1));
        // …and the generic ref-count bookkeeping was cleaned up.
        assert_eq!(vm.generic_ref_count(g_d, g_c), None);
    }

    #[test]
    fn dependent_static_binding_cascades_on_version_delete() {
        // CV-2X + CV-4X: deleting a version recursively deletes version
        // instances statically bound through dependent references.
        let (mut vm, c, d) = setup(true, true);
        let (g_d, d1) = vm.create(d, vec![]).unwrap();
        let (_g_c, c1) = vm.create(c, vec![]).unwrap();
        vm.bind_static(c1, "part", d1).unwrap();
        vm.delete_version(c1).unwrap();
        assert!(
            !vm.db().exists(d1),
            "dependent statically-bound version deleted"
        );
        assert!(
            !vm.is_generic(g_d),
            "its generic followed (last version died)"
        );
    }
}
