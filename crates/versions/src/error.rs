//! Version-layer errors.

use std::fmt;

use corion_core::{DbError, Oid};

/// Result alias for version operations.
pub type VersionResult<T> = Result<T, VersionError>;

/// Errors raised by the version manager.
#[derive(Debug, Clone, PartialEq)]
pub enum VersionError {
    /// The class is not declared versionable (§5.1 requires an explicit
    /// declaration).
    NotVersionable(corion_core::ClassId),
    /// The OID is not a known generic instance.
    NotAGeneric(Oid),
    /// The OID is not a known version instance.
    NotAVersion(Oid),
    /// Rule CV-2X: a generic instance may carry multiple exclusive
    /// composite references only from within one version-derivation
    /// hierarchy.
    Cv2xViolation {
        /// The generic instance receiving the reference.
        generic: Oid,
        /// Explanation.
        detail: String,
    },
    /// Rule CV-3X consequence: version instances of different versionable
    /// objects cannot hold exclusive references to different versions of
    /// the same object.
    Cv3xViolation {
        /// The versionable object being referenced.
        generic: Oid,
        /// Explanation.
        detail: String,
    },
    /// The underlying engine reported an error.
    Db(DbError),
}

impl fmt::Display for VersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionError::NotVersionable(c) => {
                write!(f, "class {c} is not declared versionable")
            }
            VersionError::NotAGeneric(o) => write!(f, "{o} is not a generic instance"),
            VersionError::NotAVersion(o) => write!(f, "{o} is not a version instance"),
            VersionError::Cv2xViolation { generic, detail } => {
                write!(f, "rule CV-2X violated at generic {generic}: {detail}")
            }
            VersionError::Cv3xViolation { generic, detail } => {
                write!(f, "rule CV-3X violated at generic {generic}: {detail}")
            }
            VersionError::Db(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for VersionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VersionError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for VersionError {
    fn from(e: DbError) -> Self {
        VersionError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::ClassId;

    #[test]
    fn display_and_source() {
        let e = VersionError::NotVersionable(ClassId(2));
        assert!(e.to_string().contains("c2"));
        let e: VersionError = DbError::NoSuchObject(Oid::new(ClassId(1), 1)).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
