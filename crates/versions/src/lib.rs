//! # corion-versions
//!
//! Versions of composite objects — paper §5.
//!
//! The ORION version model [CHOU86, CHOU88] (§5.1): a class may be declared
//! *versionable*; an instance is then a **versionable object** — a logical
//! collection of **version instances** organised in a *version-derivation
//! hierarchy*, with the derivation history kept in a **generic instance**.
//! A reference can be **statically bound** (to a specific version instance)
//! or **dynamically bound** (to the generic instance, resolved to the
//! default version on access).
//!
//! §5.2 extends composite-reference semantics to versioned objects with
//! rules **CV-1X…CV-4X**; §5.3 implements them with *reverse composite
//! generic references* carrying a **ref-count**. Both live in
//! [`manager::VersionManager`], layered over `corion-core` (version
//! instances are ordinary objects; generic instances are ordinary objects
//! whose composite semantics this crate owns through
//! [`corion_core::Database::set_attr_weak`]).

//! ```
//! use corion_core::{Database, ClassBuilder, Domain, Value};
//! use corion_versions::VersionManager;
//!
//! let mut db = Database::new();
//! let design = db
//!     .define_class(ClassBuilder::new("Design").versionable().attr("rev", Domain::Integer))
//!     .unwrap();
//! let mut vm = VersionManager::new(db);
//! let (generic, v1) = vm.create(design, vec![("rev", Value::Int(1))]).unwrap();
//! let v2 = vm.derive(v1).unwrap();
//! // Dynamic binding resolves to the default version (latest by default).
//! assert_eq!(vm.resolve(generic).unwrap(), v2);
//! vm.set_default_version(generic, v1).unwrap();
//! assert_eq!(vm.resolve(generic).unwrap(), v1);
//! ```

pub mod error;
pub mod generic;
pub mod manager;

pub use error::{VersionError, VersionResult};
pub use generic::{GenericInstance, GenericReverseRef, VersionInfo};
pub use manager::VersionManager;
