//! Generic instances (paper §5.1) and reverse composite generic references
//! (§5.3).

use corion_core::Oid;

/// One version instance's record in the derivation hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// The version instance's OID.
    pub oid: Oid,
    /// Version number within the hierarchy (1-based, assignment order).
    pub number: u32,
    /// The version this one was derived from (`None` for the initial one).
    pub derived_from: Option<Oid>,
    /// Logical creation timestamp — "the system determines the system
    /// default on the basis of a timestamp ordering of the creation of the
    /// version instances" (§5.1).
    pub created_at: u64,
}

/// A reverse composite generic reference (§5.3): stored in a generic
/// instance, pointing at the referencing object (a generic instance when the
/// referencer is versionable, the object itself otherwise), with a ref-count
/// of how many version-level composite references it stands for.
///
/// > "A reverse composite reference from g of O to g' of O' … has
/// > associated with it a counter, called ref-count, which keeps track of
/// > the number of composite references from version instances of O' to
/// > version instances of O. The ref-count is used to determine when a
/// > reverse composite generic reference must be removed."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericReverseRef {
    /// The referencing side: a generic instance or a plain object.
    pub parent: Oid,
    /// D flag of the underlying composite references.
    pub dependent: bool,
    /// X flag of the underlying composite references.
    pub exclusive: bool,
    /// Number of version-level composite references this entry stands for.
    pub ref_count: u32,
}

/// A generic instance: the version-derivation hierarchy of one versionable
/// object plus its reverse composite generic references.
#[derive(Debug, Clone, Default)]
pub struct GenericInstance {
    /// The version instances, in creation order.
    pub versions: Vec<VersionInfo>,
    /// User-specified default version, if any (§5.1: "The user may specify
    /// the default version instance for any given versionable object").
    pub user_default: Option<Oid>,
    /// Reverse composite generic references (§5.3).
    pub reverse_generic_refs: Vec<GenericReverseRef>,
    next_number: u32,
}

impl GenericInstance {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        GenericInstance::default()
    }

    /// Registers a new version instance derived from `derived_from`.
    pub fn add_version(&mut self, oid: Oid, derived_from: Option<Oid>, now: u64) -> u32 {
        self.next_number += 1;
        self.versions.push(VersionInfo {
            oid,
            number: self.next_number,
            derived_from,
            created_at: now,
        });
        self.next_number
    }

    /// Removes a version instance from the hierarchy; returns `true` if it
    /// was present. Children derived from it keep their `derived_from` OID
    /// as history (ORION keeps derivation history in the generic instance).
    pub fn remove_version(&mut self, oid: Oid) -> bool {
        let before = self.versions.len();
        self.versions.retain(|v| v.oid != oid);
        if self.user_default == Some(oid) {
            self.user_default = None;
        }
        before != self.versions.len()
    }

    /// True if `oid` is a version instance of this hierarchy.
    pub fn has_version(&self, oid: Oid) -> bool {
        self.versions.iter().any(|v| v.oid == oid)
    }

    /// The default version: the user default if set, else the most recently
    /// created version (timestamp ordering, §5.1).
    pub fn default_version(&self) -> Option<Oid> {
        self.user_default.or_else(|| {
            self.versions
                .iter()
                .max_by_key(|v| v.created_at)
                .map(|v| v.oid)
        })
    }

    /// Direct descendants of `oid` in the derivation hierarchy.
    pub fn derived_from(&self, oid: Oid) -> Vec<Oid> {
        self.versions
            .iter()
            .filter(|v| v.derived_from == Some(oid))
            .map(|v| v.oid)
            .collect()
    }

    /// Increments (or creates) the reverse generic ref for `parent`,
    /// returning the new count.
    pub fn incr_ref(&mut self, parent: Oid, dependent: bool, exclusive: bool) -> u32 {
        if let Some(r) = self
            .reverse_generic_refs
            .iter_mut()
            .find(|r| r.parent == parent && r.dependent == dependent && r.exclusive == exclusive)
        {
            r.ref_count += 1;
            r.ref_count
        } else {
            self.reverse_generic_refs.push(GenericReverseRef {
                parent,
                dependent,
                exclusive,
                ref_count: 1,
            });
            1
        }
    }

    /// Decrements the reverse generic ref for `parent`; removes the entry
    /// when the count reaches zero (the Figure 3 narrative). Returns the
    /// remaining count, or `None` if no such entry existed.
    pub fn decr_ref(&mut self, parent: Oid, dependent: bool, exclusive: bool) -> Option<u32> {
        let idx = self.reverse_generic_refs.iter().position(|r| {
            r.parent == parent && r.dependent == dependent && r.exclusive == exclusive
        })?;
        let r = &mut self.reverse_generic_refs[idx];
        r.ref_count -= 1;
        let left = r.ref_count;
        if left == 0 {
            self.reverse_generic_refs.remove(idx);
        }
        Some(left)
    }

    /// The parents recorded in reverse generic refs — what `parents-of`
    /// answers on a generic instance (Figure 3.b: "the result would be the
    /// instance a1, even if all composite references are statically bound").
    pub fn generic_parents(&self) -> Vec<Oid> {
        self.reverse_generic_refs.iter().map(|r| r.parent).collect()
    }

    /// True if an exclusive reverse generic ref exists from a parent other
    /// than `from` (the CV-2X check support).
    pub fn has_exclusive_ref_from_other(&self, from: Oid) -> bool {
        self.reverse_generic_refs
            .iter()
            .any(|r| r.exclusive && r.parent != from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::ClassId;

    fn oid(s: u64) -> Oid {
        Oid::new(ClassId(1), s)
    }

    #[test]
    fn versions_accumulate_with_numbers() {
        let mut g = GenericInstance::new();
        assert_eq!(g.add_version(oid(1), None, 10), 1);
        assert_eq!(g.add_version(oid(2), Some(oid(1)), 20), 2);
        assert!(g.has_version(oid(1)));
        assert_eq!(g.derived_from(oid(1)), vec![oid(2)]);
    }

    #[test]
    fn default_is_latest_unless_user_set() {
        let mut g = GenericInstance::new();
        g.add_version(oid(1), None, 10);
        g.add_version(oid(2), Some(oid(1)), 20);
        assert_eq!(g.default_version(), Some(oid(2)), "timestamp ordering");
        g.user_default = Some(oid(1));
        assert_eq!(g.default_version(), Some(oid(1)), "user default wins");
        g.remove_version(oid(1));
        assert_eq!(
            g.default_version(),
            Some(oid(2)),
            "user default cleared on removal"
        );
    }

    #[test]
    fn ref_count_lifecycle_matches_figure3() {
        let mut g = GenericInstance::new();
        // Two version-level references from the same parent a1 (Figure 3.b:
        // ref-count 2).
        assert_eq!(g.incr_ref(oid(100), false, true), 1);
        assert_eq!(g.incr_ref(oid(100), false, true), 2);
        // Remove one: entry stays, count 1.
        assert_eq!(g.decr_ref(oid(100), false, true), Some(1));
        assert_eq!(g.generic_parents(), vec![oid(100)]);
        // Remove the second: entry removed.
        assert_eq!(g.decr_ref(oid(100), false, true), Some(0));
        assert!(g.generic_parents().is_empty());
        assert_eq!(g.decr_ref(oid(100), false, true), None);
    }

    #[test]
    fn refs_with_different_flags_are_distinct_entries() {
        let mut g = GenericInstance::new();
        g.incr_ref(oid(1), true, false);
        g.incr_ref(oid(1), false, false);
        assert_eq!(g.reverse_generic_refs.len(), 2);
    }

    #[test]
    fn exclusive_ref_from_other_detection() {
        let mut g = GenericInstance::new();
        g.incr_ref(oid(1), false, true);
        assert!(
            !g.has_exclusive_ref_from_other(oid(1)),
            "same hierarchy is fine"
        );
        assert!(g.has_exclusive_ref_from_other(oid(2)));
    }
}
