//! # corion-authz
//!
//! Composite objects as a unit of authorization — paper §6.
//!
//! The ORION authorization model \[RABI88\] rests on three concepts the paper
//! recounts: **implicit authorization** (authorizations are deduced from
//! explicitly stored ones along the granularity hierarchy), **positive and
//! negative** authorizations (prohibition vs. absence), and **strong and
//! weak** authorizations (weak ones can be overridden; strong ones and
//! everything they imply cannot).
//!
//! The paper's contribution is extending implicit authorization to
//! **composite classes and composite objects**:
//!
//! > "An authorization on a composite class C implies the same
//! > authorization on all instances of C and on all objects which are
//! > components of the instances of C. … Similarly, an authorization on a
//! > composite object implies the same authorization on each component of
//! > the composite object."
//!
//! * [`types`] — the authorization lattice: Read/Write × ±, strong/weak,
//!   with the implication rules (W ⇒ R, ¬R ⇒ ¬W);
//! * [`store`] — explicit grants with the §6 conflict check (a new grant is
//!   rejected when it contradicts an existing *implied* authorization on
//!   any affected object);
//! * [`implicit`] — the derivation of implied authorizations over the
//!   granularity hierarchy and composite objects (Figures 4 and 5);
//! * [`matrix`] — the Figure 6 conflict matrix, generated from the rules.
//!
//! ```
//! use corion_authz::{combine, Cell, Authorization};
//!
//! // §6: "if a user receives a strong R authorization from Instance[j]
//! // and a strong W authorization from Instance[k], the authorization
//! // implied on Instance[o'] is a strong W authorization."
//! assert_eq!(combine(Authorization::SR, Authorization::SW),
//!            Cell::Auths(vec![Authorization::SW]));
//! assert_eq!(combine(Authorization::SNR, Authorization::SW), Cell::Conflict);
//! ```

pub mod implicit;
pub mod matrix;
pub mod store;
pub mod types;

pub use implicit::Decision;
pub use matrix::{combine, Cell};
pub use store::{AuthError, AuthObject, AuthStore, UserId};
pub use types::{AuthType, Authorization, Sign, Strength};
