//! The authorization lattice.
//!
//! §6 works with "positive and negative (denoted by ¬), and strong (s) and
//! weak (w) forms of two authorization types, Read (R) and Write (W)", with
//! the implication rules from \[RABI88\]:
//!
//! > "A (positive) W authorization implies a (positive) R authorization;
//! > and a negative R authorization implies a negative W authorization."

use std::fmt;

/// The two authorization types of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AuthType {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// Positive (grant) or negative (prohibition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// The authorization grants the capability.
    Positive,
    /// The authorization prohibits the capability (¬).
    Negative,
}

/// Strong authorizations cannot be overridden; weak ones can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strength {
    /// Cannot be overridden (nor can anything it implies).
    Strong,
    /// May be overridden by other authorizations.
    Weak,
}

/// One authorization: strength × sign × type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Authorization {
    /// Strong or weak.
    pub strength: Strength,
    /// Positive or negative.
    pub sign: Sign,
    /// Read or Write.
    pub ty: AuthType,
}

impl Authorization {
    /// Shorthand constructor.
    pub fn new(strength: Strength, sign: Sign, ty: AuthType) -> Self {
        Authorization { strength, sign, ty }
    }

    /// `sR` — strong positive Read.
    pub const SR: Authorization = Authorization {
        strength: Strength::Strong,
        sign: Sign::Positive,
        ty: AuthType::Read,
    };
    /// `sW` — strong positive Write.
    pub const SW: Authorization = Authorization {
        strength: Strength::Strong,
        sign: Sign::Positive,
        ty: AuthType::Write,
    };
    /// `s¬R` — strong negative Read.
    pub const SNR: Authorization = Authorization {
        strength: Strength::Strong,
        sign: Sign::Negative,
        ty: AuthType::Read,
    };
    /// `s¬W` — strong negative Write.
    pub const SNW: Authorization = Authorization {
        strength: Strength::Strong,
        sign: Sign::Negative,
        ty: AuthType::Write,
    };
    /// `wR` — weak positive Read.
    pub const WR: Authorization = Authorization {
        strength: Strength::Weak,
        sign: Sign::Positive,
        ty: AuthType::Read,
    };
    /// `wW` — weak positive Write.
    pub const WW: Authorization = Authorization {
        strength: Strength::Weak,
        sign: Sign::Positive,
        ty: AuthType::Write,
    };
    /// `w¬R` — weak negative Read.
    pub const WNR: Authorization = Authorization {
        strength: Strength::Weak,
        sign: Sign::Negative,
        ty: AuthType::Read,
    };
    /// `w¬W` — weak negative Write.
    pub const WNW: Authorization = Authorization {
        strength: Strength::Weak,
        sign: Sign::Negative,
        ty: AuthType::Write,
    };

    /// The eight forms, in the order of Figure 6's rows/columns.
    pub const ALL: [Authorization; 8] = [
        Authorization::SR,
        Authorization::SW,
        Authorization::SNR,
        Authorization::SNW,
        Authorization::WR,
        Authorization::WW,
        Authorization::WNR,
        Authorization::WNW,
    ];

    /// The closure of this authorization under the implication rules
    /// (implications inherit strength, per \[RABI88\]: "a strong
    /// authorization and all authorizations implied by it cannot be
    /// overridden").
    pub fn closure(self) -> Vec<Authorization> {
        let mut out = vec![self];
        match (self.sign, self.ty) {
            // W implies R.
            (Sign::Positive, AuthType::Write) => {
                out.push(Authorization::new(
                    self.strength,
                    Sign::Positive,
                    AuthType::Read,
                ));
            }
            // ¬R implies ¬W.
            (Sign::Negative, AuthType::Read) => {
                out.push(Authorization::new(
                    self.strength,
                    Sign::Negative,
                    AuthType::Write,
                ));
            }
            _ => {}
        }
        out
    }

    /// True if the two authorizations assert opposite signs for the same
    /// type at the same strength — the paper's conflict condition for
    /// implied authorizations.
    pub fn contradicts(self, other: Authorization) -> bool {
        self.ty == other.ty && self.strength == other.strength && self.sign != other.sign
    }
}

impl fmt::Display for Authorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            match self.strength {
                Strength::Strong => "s",
                Strength::Weak => "w",
            },
            match self.sign {
                Sign::Positive => "",
                Sign::Negative => "¬",
            },
            match self.ty {
                AuthType::Read => "R",
                AuthType::Write => "W",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_figure6_labels() {
        assert_eq!(Authorization::SR.to_string(), "sR");
        assert_eq!(Authorization::SNW.to_string(), "s¬W");
        assert_eq!(Authorization::WNR.to_string(), "w¬R");
        assert_eq!(Authorization::WW.to_string(), "wW");
    }

    #[test]
    fn positive_write_implies_read() {
        assert!(Authorization::SW.closure().contains(&Authorization::SR));
        assert!(Authorization::WW.closure().contains(&Authorization::WR));
        assert_eq!(Authorization::SR.closure(), vec![Authorization::SR]);
    }

    #[test]
    fn negative_read_implies_negative_write() {
        assert!(Authorization::SNR.closure().contains(&Authorization::SNW));
        assert!(Authorization::WNR.closure().contains(&Authorization::WNW));
        assert_eq!(Authorization::SNW.closure(), vec![Authorization::SNW]);
    }

    #[test]
    fn contradiction_requires_same_type_and_strength() {
        assert!(Authorization::SR.contradicts(Authorization::SNR));
        assert!(
            !Authorization::SR.contradicts(Authorization::SNW),
            "different type"
        );
        assert!(
            !Authorization::SR.contradicts(Authorization::WNR),
            "different strength"
        );
        assert!(
            !Authorization::SR.contradicts(Authorization::SR),
            "same sign"
        );
    }

    #[test]
    fn eight_forms() {
        assert_eq!(Authorization::ALL.len(), 8);
        let unique: std::collections::HashSet<_> = Authorization::ALL.into_iter().collect();
        assert_eq!(unique.len(), 8);
    }
}
