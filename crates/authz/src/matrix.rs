//! The Figure 6 conflict matrix.
//!
//! > "The matrix in Figure 6 summarizes conflicts in authorization implied
//! > by explicit authorizations on two composite objects rooted at
//! > Instance\[j\] and Instance\[k\] in Figure 5. The \[i,j\]-th element of the
//! > matrix contains the resulting authorizations on Instance[o']; the
//! > symbol 'Conflict' denotes that a conflict arises."
//!
//! The cell is computed from the rules the paper states:
//!
//! * each implied authorization is closed under the implications
//!   (W ⇒ R, ¬R ⇒ ¬W), *at its own strength*;
//! * "the resulting authorization on O is the strongest of all the implied
//!   authorizations on O" — a strong fact overrides a contradicting weak
//!   fact;
//! * two contradicting facts of the *same* strength are a `Conflict`.

use crate::types::Authorization;

/// The result of combining the implied authorizations from two composite
/// objects on a shared component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// Irreconcilable: same-strength facts of opposite sign.
    Conflict,
    /// The surviving authorizations, reduced to their generators (facts
    /// implied by another surviving fact are omitted), in `ALL` order.
    Auths(Vec<Authorization>),
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Conflict => write!(f, "Conflict"),
            Cell::Auths(list) => {
                for (i, a) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Combines the authorizations a user receives on one object from several
/// composite parents (Figure 6 uses exactly two).
pub fn combine_all(implied: &[Authorization]) -> Cell {
    use crate::types::Strength;
    // 1. Close the strong authorizations; a contradiction among them is a
    //    Conflict (nothing can override a strong fact).
    let mut strong: Vec<Authorization> = implied
        .iter()
        .filter(|a| a.strength == Strength::Strong)
        .flat_map(|a| a.closure())
        .collect();
    strong.sort();
    strong.dedup();
    for (i, a) in strong.iter().enumerate() {
        for b in &strong[i + 1..] {
            if a.contradicts(*b) {
                return Cell::Conflict;
            }
        }
    }
    // 2. A weak authorization is overridden — dropped wholesale, together
    //    with everything it implies — when any fact in its closure is
    //    contradicted by a strong fact ("the resulting authorization on O
    //    is the strongest of all the implied authorizations").
    let mut weak: Vec<Authorization> = implied
        .iter()
        .filter(|a| a.strength == Strength::Weak)
        .filter(|a| {
            !a.closure()
                .iter()
                .any(|f| strong.iter().any(|s| s.ty == f.ty && s.sign != f.sign))
        })
        .flat_map(|a| a.closure())
        .collect();
    weak.sort();
    weak.dedup();
    // 3. Contradictions among the surviving weak facts cannot be resolved
    //    by strength: Conflict.
    for (i, a) in weak.iter().enumerate() {
        for b in &weak[i + 1..] {
            if a.contradicts(*b) {
                return Cell::Conflict;
            }
        }
    }
    let mut facts = strong;
    facts.extend(weak);
    // 4. Reduce to generators: drop facts implied by another surviving
    //    fact, and weak facts whose strong counterpart (same sign and type)
    //    already stands.
    let reduced: Vec<Authorization> = facts
        .iter()
        .copied()
        .filter(|a| {
            let implied_by_other = facts.iter().any(|b| b != a && b.closure().contains(a));
            let strong_twin = Authorization::new(crate::types::Strength::Strong, a.sign, a.ty);
            let subsumed_by_strong = a.strength == crate::types::Strength::Weak
                && facts.iter().any(|b| b.closure().contains(&strong_twin));
            !implied_by_other && !subsumed_by_strong
        })
        .collect();
    // Present in Figure 6 label order.
    let mut ordered: Vec<Authorization> = Authorization::ALL
        .into_iter()
        .filter(|a| reduced.contains(a))
        .collect();
    ordered.dedup();
    Cell::Auths(ordered)
}

/// The Figure 6 cell for authorizations `from_j` and `from_k` implied on a
/// component shared by the two composite objects.
pub fn combine(from_j: Authorization, from_k: Authorization) -> Cell {
    combine_all(&[from_j, from_k])
}

/// Renders the full 8×8 Figure 6 matrix.
pub fn render_figure6() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>10}", ""));
    for a in Authorization::ALL {
        out.push_str(&format!("{:>10}", a.to_string()));
    }
    out.push('\n');
    for row in Authorization::ALL {
        out.push_str(&format!("{:>10}", row.to_string()));
        for col in Authorization::ALL {
            out.push_str(&format!("{:>10}", combine(row, col).to_string()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Authorization as A;

    #[test]
    fn paper_example_strong_r_plus_strong_w() {
        // "If a user receives a strong R authorization from Instance[j] and
        // a strong W authorization from Instance[k], the authorization
        // implied on Instance[o'] is a strong W authorization, which in
        // turn implies a strong R authorization."
        assert_eq!(combine(A::SR, A::SW), Cell::Auths(vec![A::SW]));
    }

    #[test]
    fn paper_example_strong_nr_plus_strong_nw() {
        // "Similarly, if a user receives a strong ¬R authorization from
        // Instance[j] and a strong ¬W authorization from Instance[k], the
        // authorization implied on Instance[o'] is a strong ¬R
        // authorization, which implies a strong ¬W authorization."
        assert_eq!(combine(A::SNR, A::SNW), Cell::Auths(vec![A::SNR]));
    }

    #[test]
    fn paper_example_strong_nr_vs_strong_w_conflicts() {
        // "…a later attempt to grant the user a strong W authorization …
        // will fail. This is because ¬R implies ¬W, which contradicts the
        // positive strong W being granted."
        assert_eq!(combine(A::SNR, A::SW), Cell::Conflict);
    }

    #[test]
    fn same_strength_opposites_conflict() {
        assert_eq!(combine(A::SR, A::SNR), Cell::Conflict);
        assert_eq!(combine(A::SW, A::SNW), Cell::Conflict);
        assert_eq!(combine(A::WR, A::WNR), Cell::Conflict);
        assert_eq!(combine(A::WW, A::WNW), Cell::Conflict);
        // Implied contradiction: wW implies wR, which contradicts w¬R.
        assert_eq!(combine(A::WW, A::WNR), Cell::Conflict);
    }

    #[test]
    fn strong_overrides_contradicting_weak() {
        // Weak authorizations "can be overridden": s¬R beats wR.
        assert_eq!(combine(A::SNR, A::WR), Cell::Auths(vec![A::SNR]));
        assert_eq!(combine(A::SW, A::WNW), Cell::Auths(vec![A::SW]));
        // s¬R implies s¬W which overrides wW; wW's implied wR also falls.
        assert_eq!(combine(A::SNR, A::WW), Cell::Auths(vec![A::SNR]));
    }

    #[test]
    fn compatible_mixed_strengths_union() {
        // sR + wW: the strong read stands; the weak write adds on top (its
        // implied wR is subsumed by sR? No — different strengths, both
        // kept as facts, but wR is implied by wW so only generators shown).
        assert_eq!(combine(A::SR, A::WW), Cell::Auths(vec![A::SR, A::WW]));
        // sR + s¬W coexist: may read, must not write.
        assert_eq!(combine(A::SR, A::SNW), Cell::Auths(vec![A::SR, A::SNW]));
        // wR + w¬W coexist at weak strength.
        assert_eq!(combine(A::WR, A::WNW), Cell::Auths(vec![A::WR, A::WNW]));
    }

    #[test]
    fn diagonal_is_idempotent() {
        for a in A::ALL {
            assert_eq!(combine(a, a), Cell::Auths(vec![a]), "{a}");
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for a in A::ALL {
            for b in A::ALL {
                assert_eq!(combine(a, b), combine(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conflict_count_matches_structure() {
        // Conflicts arise exactly between same-strength opposite-sign pairs
        // (directly or through implication). Count them for the record; the
        // full matrix is printed by `cargo run --example auth_matrix` and
        // recorded in EXPERIMENTS.md.
        let conflicts = A::ALL
            .into_iter()
            .flat_map(|a| A::ALL.into_iter().map(move |b| (a, b)))
            .filter(|(a, b)| combine(*a, *b) == Cell::Conflict)
            .count();
        // Strong block: (sR,s¬R),(sR ,s¬W)? no — sR+s¬W is compatible.
        // Pairs (unordered) that conflict at strong strength: sR/s¬R,
        // sW/s¬R, sW/s¬W -> 3 pairs = 6 ordered cells; same at weak
        // strength = 6; cross-strength never conflicts (override instead).
        assert_eq!(conflicts, 12);
    }

    #[test]
    fn render_contains_conflict_and_labels() {
        let m = render_figure6();
        assert!(m.contains("Conflict"));
        assert!(m.contains("s¬W"));
        assert_eq!(m.lines().count(), 9);
    }

    #[test]
    fn combine_all_handles_more_than_two_parents() {
        // "If an instance is a component of more than one composite object,
        // a user can receive more than one implicit authorization on that
        // instance."
        assert_eq!(
            combine_all(&[A::SR, A::WR, A::SW]),
            Cell::Auths(vec![A::SW])
        );
        assert_eq!(
            combine_all(&[A::WR, A::SNR, A::WNW]),
            Cell::Auths(vec![A::SNR])
        );
        assert_eq!(combine_all(&[]), Cell::Auths(vec![]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::{AuthType, Authorization, Sign, Strength};
    use proptest::prelude::*;

    fn auth_strategy() -> impl Strategy<Value = Authorization> {
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(s, p, t)| Authorization {
            strength: if s { Strength::Strong } else { Strength::Weak },
            sign: if p { Sign::Positive } else { Sign::Negative },
            ty: if t { AuthType::Read } else { AuthType::Write },
        })
    }

    proptest! {
        #[test]
        fn combine_is_commutative(a in auth_strategy(), b in auth_strategy()) {
            prop_assert_eq!(combine(a, b), combine(b, a));
        }

        #[test]
        fn combine_is_idempotent_on_the_diagonal(a in auth_strategy()) {
            prop_assert_eq!(combine(a, a), Cell::Auths(vec![a]));
        }

        #[test]
        fn combine_all_is_order_insensitive(
            mut auths in prop::collection::vec(auth_strategy(), 0..6),
            seed in any::<u64>(),
        ) {
            let original = combine_all(&auths);
            // Deterministic shuffle.
            let n = auths.len();
            for i in 0..n {
                let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) as usize) % n.max(1);
                auths.swap(i, j);
            }
            prop_assert_eq!(combine_all(&auths), original);
        }

        #[test]
        fn adding_a_weak_authorization_never_unconflicts(
            auths in prop::collection::vec(auth_strategy(), 1..5),
            extra in auth_strategy(),
        ) {
            // Weak authorizations cannot override anything, so they can
            // never *resolve* a conflict. (A strong authorization CAN: it
            // overrides one side of a weak-weak contradiction — that is the
            // point of strength in [RABI88].)
            let extra = Authorization { strength: Strength::Weak, ..extra };
            if combine_all(&auths) == Cell::Conflict {
                let mut bigger = auths.clone();
                bigger.push(extra);
                prop_assert_eq!(combine_all(&bigger), Cell::Conflict);
            }
        }

        #[test]
        fn strong_overrides_can_resolve_weak_conflicts(t in any::<bool>()) {
            // Document the asymmetry explicitly: wR + w¬R conflicts, but a
            // strong fact settles the dispute in its own favour.
            let ty = if t { AuthType::Read } else { AuthType::Write };
            let wp = Authorization::new(Strength::Weak, Sign::Positive, ty);
            let wn = Authorization::new(Strength::Weak, Sign::Negative, ty);
            let sp = Authorization::new(Strength::Strong, Sign::Positive, ty);
            prop_assert_eq!(combine_all(&[wp, wn]), Cell::Conflict);
            prop_assert_eq!(combine_all(&[wp, wn, sp]), Cell::Auths(vec![sp]));
        }

        #[test]
        fn surviving_facts_never_contain_same_type_opposites(
            auths in prop::collection::vec(auth_strategy(), 0..6),
        ) {
            if let Cell::Auths(facts) = combine_all(&auths) {
                let closed: Vec<Authorization> =
                    facts.iter().flat_map(|a| a.closure()).collect();
                for a in &closed {
                    for b in &closed {
                        prop_assert!(
                            !(a.ty == b.ty && a.sign != b.sign),
                            "contradictory facts {a} and {b} both survived"
                        );
                    }
                }
            }
        }
    }
}
