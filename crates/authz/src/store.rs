//! Explicit grants and the §6 grant-time conflict check.
//!
//! > "When an authorization is granted on a composite object, the
//! > authorization component of a database system must ensure that there
//! > are no conflicts between the authorization being granted and
//! > authorizations (either explicit or implicit) already on any of the
//! > component objects. … If there is no conflict, the resulting
//! > authorization on O is the strongest of all the implied authorizations
//! > on O."

use std::collections::HashMap;
use std::fmt;

use corion_core::{ClassId, Database, DbError, Oid};

use crate::matrix::{combine_all, Cell};
use crate::types::Authorization;

/// A subject of authorization (DESIGN.md §5: flat users, no role graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A unit of authorization in the granularity hierarchy, extended with
/// composite objects (which are not separate granules — an instance grant
/// on a composite root *implies* grants on its components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthObject {
    /// The whole database.
    Database,
    /// A class: implies its instances (and subclass instances), and the
    /// components of those instances when the class is composite.
    Class(ClassId),
    /// A single object: implies its components when it roots (part of) a
    /// composite object.
    Instance(Oid),
}

impl fmt::Display for AuthObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthObject::Database => write!(f, "database"),
            AuthObject::Class(c) => write!(f, "class {c}"),
            AuthObject::Instance(o) => write!(f, "instance {o}"),
        }
    }
}

/// Errors raised by the authorization subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthError {
    /// §6: "if a new authorization issued conflicts with an existing
    /// authorization, the new authorization is rejected."
    Conflict {
        /// The object on which the implied authorizations collide.
        object: Oid,
        /// The grant being rejected.
        granting: Authorization,
    },
    /// The grant references a missing object/class.
    Db(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Conflict { object, granting } => {
                write!(
                    f,
                    "granting {granting} conflicts with implied authorizations on {object}"
                )
            }
            AuthError::Db(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for AuthError {}

impl From<DbError> for AuthError {
    fn from(e: DbError) -> Self {
        AuthError::Db(e.to_string())
    }
}

/// The store of explicit authorizations.
#[derive(Debug, Default)]
pub struct AuthStore {
    grants: HashMap<UserId, Vec<(AuthObject, Authorization)>>,
    /// Authorization checks performed (benchmark metric, DESIGN.md B4).
    checks: std::cell::Cell<u64>,
}

impl AuthStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AuthStore::default()
    }

    /// Grants `auth` to `user` on `object`, after verifying that no implied
    /// authorization on any affected object conflicts with it.
    pub fn grant(
        &mut self,
        db: &mut Database,
        user: UserId,
        object: AuthObject,
        auth: Authorization,
    ) -> Result<(), AuthError> {
        for affected in self.affected_objects(db, object)? {
            let mut implied = self.implied_on(db, user, affected)?;
            implied.push(auth);
            if combine_all(&implied) == Cell::Conflict {
                return Err(AuthError::Conflict {
                    object: affected,
                    granting: auth,
                });
            }
        }
        self.grants.entry(user).or_default().push((object, auth));
        Ok(())
    }

    /// Removes an explicit grant; returns `true` if it was present.
    pub fn revoke(&mut self, user: UserId, object: AuthObject, auth: Authorization) -> bool {
        if let Some(gs) = self.grants.get_mut(&user) {
            if let Some(i) = gs.iter().position(|(o, a)| *o == object && *a == auth) {
                gs.remove(i);
                return true;
            }
        }
        false
    }

    /// The explicit grants of a user.
    pub fn explicit(&self, user: UserId) -> &[(AuthObject, Authorization)] {
        self.grants.get(&user).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Every live object whose implied authorizations a grant on `object`
    /// touches: the instances it covers plus all their components.
    fn affected_objects(
        &self,
        db: &mut Database,
        object: AuthObject,
    ) -> Result<Vec<Oid>, AuthError> {
        let roots: Vec<Oid> = match object {
            AuthObject::Database => db
                .catalog()
                .all_classes()
                .iter()
                .flat_map(|&c| db.instances_of(c, false))
                .collect(),
            AuthObject::Class(c) => db.instances_of(c, true),
            AuthObject::Instance(o) => vec![o],
        };
        let mut out = Vec::new();
        for r in roots {
            if !db.exists(r) {
                continue;
            }
            out.push(r);
            out.extend(db.components_of(r, &corion_core::composite::Filter::all())?);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Every authorization `user` holds on `oid`, explicit or implied —
    /// from the object itself, from classes covering it, from the database
    /// grant, and from every composite ancestor (paper §6 / Figures 4–5).
    pub fn implied_on(
        &self,
        db: &mut Database,
        user: UserId,
        oid: Oid,
    ) -> Result<Vec<Authorization>, AuthError> {
        self.checks.set(self.checks.get() + 1);
        let Some(grants) = self.grants.get(&user) else {
            return Ok(Vec::new());
        };
        let mut carriers = vec![oid];
        carriers.extend(db.ancestors_of(oid, &corion_core::composite::Filter::all())?);
        let mut out = Vec::new();
        for carrier in carriers {
            for (object, auth) in grants {
                let covers = match object {
                    AuthObject::Database => true,
                    AuthObject::Class(c) => db.is_subclass_of(carrier.class, *c),
                    AuthObject::Instance(o) => *o == carrier,
                };
                if covers {
                    out.push(*auth);
                }
            }
        }
        Ok(out)
    }

    /// Number of `implied_on` evaluations performed (bench metric).
    pub fn check_count(&self) -> u64 {
        self.checks.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Authorization as A;
    use corion_core::{ClassBuilder, CompositeSpec, Domain, Value};

    /// Figure 4-style composite object: root with components k, m, n, o
    /// (k and m level 1; n under m; o under n).
    struct Fx {
        db: Database,
        root_class: ClassId,
        part_class: ClassId,
        root: Oid,
        k: Oid,
        m: Oid,
        n: Oid,
        o: Oid,
    }

    fn fixture() -> Fx {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        // Parts nest recursively (self-referential composite attribute).
        db.add_attribute(
            part,
            corion_core::AttributeDef::composite(
                "sub",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ),
        )
        .unwrap();
        let root_class = db
            .define_class(ClassBuilder::new("Root").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let o = db.make(part, vec![], vec![]).unwrap();
        let n = db
            .make(part, vec![("sub", Value::Set(vec![Value::Ref(o)]))], vec![])
            .unwrap();
        let m = db
            .make(part, vec![("sub", Value::Set(vec![Value::Ref(n)]))], vec![])
            .unwrap();
        let k = db.make(part, vec![], vec![]).unwrap();
        let root = db
            .make(
                root_class,
                vec![("parts", Value::Set(vec![Value::Ref(k), Value::Ref(m)]))],
                vec![],
            )
            .unwrap();
        Fx {
            db,
            root_class,
            part_class: part,
            root,
            k,
            m,
            n,
            o,
        }
    }

    #[test]
    fn figure4_instance_grant_reaches_every_component() {
        // "If a user is granted a Read authorization on the root of the
        // composite object in Figure 4, the user implicitly receives a Read
        // authorization on each of the component objects."
        let mut fx = fixture();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut fx.db, u, AuthObject::Instance(fx.root), A::SR)
            .unwrap();
        for obj in [fx.root, fx.k, fx.m, fx.n, fx.o] {
            let implied = st.implied_on(&mut fx.db, u, obj).unwrap();
            assert_eq!(implied, vec![A::SR], "implied on {obj}");
        }
    }

    #[test]
    fn class_grant_covers_instances_and_their_components_only() {
        // "The authorization on Vehicle does not imply the same
        // authorization on all instances of Autobody…, since not all
        // instances … may be components of Vehicle."
        let mut fx = fixture();
        let mut st = AuthStore::new();
        let u = UserId(1);
        let loose = fx.db.make(fx.part_class, vec![], vec![]).unwrap();
        st.grant(&mut fx.db, u, AuthObject::Class(fx.root_class), A::SR)
            .unwrap();
        assert_eq!(
            st.implied_on(&mut fx.db, u, fx.o).unwrap(),
            vec![A::SR],
            "component covered"
        );
        assert!(
            st.implied_on(&mut fx.db, u, loose).unwrap().is_empty(),
            "non-component instance of the part class is NOT covered"
        );
    }

    #[test]
    fn conflicting_grant_on_component_class_is_rejected() {
        // "A new authorization issued on a component class may conflict
        // with an authorization on the class which is implied by a
        // previously granted authorization. In this case, the authorization
        // subsystem must reject the new authorization."
        let mut fx = fixture();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut fx.db, u, AuthObject::Class(fx.root_class), A::SR)
            .unwrap();
        let err = st
            .grant(&mut fx.db, u, AuthObject::Class(fx.part_class), A::SNR)
            .unwrap_err();
        assert!(matches!(err, AuthError::Conflict { .. }));
    }

    #[test]
    fn paper_example_snr_then_sw_on_other_root_fails() {
        // Figure 5 narrative: o' shared between j and k; s¬R from j, then
        // granting sW on k must fail (¬R implies ¬W, contradicting W).
        let mut db = Database::new();
        let comp = db.define_class(ClassBuilder::new("Comp")).unwrap();
        let root = db
            .define_class(ClassBuilder::new("Root2").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(comp))),
                CompositeSpec {
                    exclusive: false,
                    dependent: false,
                },
            ))
            .unwrap();
        let o_prime = db.make(comp, vec![], vec![]).unwrap();
        let j = db
            .make(
                root,
                vec![("parts", Value::Set(vec![Value::Ref(o_prime)]))],
                vec![],
            )
            .unwrap();
        let k = db
            .make(
                root,
                vec![("parts", Value::Set(vec![Value::Ref(o_prime)]))],
                vec![],
            )
            .unwrap();
        let mut st = AuthStore::new();
        let u = UserId(7);
        st.grant(&mut db, u, AuthObject::Instance(j), A::SNR)
            .unwrap();
        let err = st
            .grant(&mut db, u, AuthObject::Instance(k), A::SW)
            .unwrap_err();
        assert!(matches!(err, AuthError::Conflict { object, .. } if object == o_prime));
        // A weak W on k would be overridden rather than conflicting.
        st.grant(&mut db, u, AuthObject::Instance(k), A::WW)
            .unwrap();
    }

    #[test]
    fn shared_component_receives_multiple_implicit_authorizations() {
        // Figure 5: "If a user receives a Read authorization on the
        // composite object rooted at Instance[j] … and later … rooted at
        // Instance[k], the user again receives an implicit authorization on
        // Instance[o']."
        let mut db = Database::new();
        let comp = db.define_class(ClassBuilder::new("Comp")).unwrap();
        let root = db
            .define_class(ClassBuilder::new("Root2").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(comp))),
                CompositeSpec {
                    exclusive: false,
                    dependent: false,
                },
            ))
            .unwrap();
        let o_prime = db.make(comp, vec![], vec![]).unwrap();
        let j = db
            .make(
                root,
                vec![("parts", Value::Set(vec![Value::Ref(o_prime)]))],
                vec![],
            )
            .unwrap();
        let k = db
            .make(
                root,
                vec![("parts", Value::Set(vec![Value::Ref(o_prime)]))],
                vec![],
            )
            .unwrap();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut db, u, AuthObject::Instance(j), A::SR)
            .unwrap();
        st.grant(&mut db, u, AuthObject::Instance(k), A::SW)
            .unwrap();
        let implied = st.implied_on(&mut db, u, o_prime).unwrap();
        assert_eq!(implied.len(), 2);
        assert_eq!(combine_all(&implied), Cell::Auths(vec![A::SW]));
    }

    #[test]
    fn revoke_removes_explicit_grant() {
        let mut fx = fixture();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut fx.db, u, AuthObject::Instance(fx.root), A::SR)
            .unwrap();
        assert!(st.revoke(u, AuthObject::Instance(fx.root), A::SR));
        assert!(!st.revoke(u, AuthObject::Instance(fx.root), A::SR));
        assert!(st.implied_on(&mut fx.db, u, fx.o).unwrap().is_empty());
    }

    #[test]
    fn users_are_isolated() {
        let mut fx = fixture();
        let mut st = AuthStore::new();
        st.grant(&mut fx.db, UserId(1), AuthObject::Instance(fx.root), A::SR)
            .unwrap();
        assert!(st
            .implied_on(&mut fx.db, UserId(2), fx.o)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn database_grant_covers_everything() {
        let mut fx = fixture();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut fx.db, u, AuthObject::Database, A::WR)
            .unwrap();
        assert!(!st.implied_on(&mut fx.db, u, fx.o).unwrap().is_empty());
    }
}
