//! Access-check evaluation over implied authorizations.
//!
//! Ties §6's machinery together: gather every authorization the user holds
//! on an object (explicit, via its classes, via the database grant, and via
//! every composite ancestor), combine them with the Figure 6 rules, and
//! decide.
//!
//! The decision distinguishes *prohibition* from *absence* — "positive and
//! negative authorizations … differentiate between prohibition and absence
//! of an authorization" — so a denied check reports which of the two it was.

use corion_core::{Database, Oid};

use crate::matrix::{combine_all, Cell};
use crate::store::{AuthError, AuthStore, UserId};
use crate::types::{AuthType, Sign};

/// Outcome of an access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A positive authorization covers the request.
    Granted,
    /// A negative authorization prohibits the request.
    Prohibited,
    /// No authorization either way (absence ≠ prohibition).
    NoAuthorization,
}

impl AuthStore {
    /// Checks whether `user` may perform `ty` on `oid`.
    ///
    /// This is the paper's single-check benefit made concrete: for an
    /// entire composite object the caller checks the *root* once; the
    /// components need no separate checks because the root's authorization
    /// implies theirs.
    pub fn check(
        &self,
        db: &mut Database,
        user: UserId,
        ty: AuthType,
        oid: Oid,
    ) -> Result<Decision, AuthError> {
        let implied = self.implied_on(db, user, oid)?;
        let cell = combine_all(&implied);
        let facts = match cell {
            // A conflict among implied authorizations resolves to
            // prohibition at check time (grants normally prevent this, but
            // grants issued before objects were assembled can collide).
            Cell::Conflict => return Ok(Decision::Prohibited),
            Cell::Auths(a) => a,
        };
        // Close the surviving generators so sW answers a Read check, etc.
        let closed: Vec<_> = facts.iter().flat_map(|a| a.closure()).collect();
        if closed
            .iter()
            .any(|a| a.ty == ty && a.sign == Sign::Negative)
        {
            Ok(Decision::Prohibited)
        } else if closed
            .iter()
            .any(|a| a.ty == ty && a.sign == Sign::Positive)
        {
            Ok(Decision::Granted)
        } else {
            Ok(Decision::NoAuthorization)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AuthObject;
    use crate::types::Authorization as A;
    use corion_core::{ClassBuilder, CompositeSpec, Domain, Value};

    fn setup() -> (Database, Oid, Oid) {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let root = db
            .define_class(ClassBuilder::new("Root").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let p = db.make(part, vec![], vec![]).unwrap();
        let r = db
            .make(
                root,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        (db, r, p)
    }

    #[test]
    fn root_grant_answers_component_checks() {
        let (mut db, root, part) = setup();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut db, u, AuthObject::Instance(root), A::SW)
            .unwrap();
        assert_eq!(
            st.check(&mut db, u, AuthType::Write, part).unwrap(),
            Decision::Granted
        );
        // sW implies sR.
        assert_eq!(
            st.check(&mut db, u, AuthType::Read, part).unwrap(),
            Decision::Granted
        );
    }

    #[test]
    fn negative_grant_prohibits() {
        let (mut db, root, part) = setup();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut db, u, AuthObject::Instance(root), A::SNR)
            .unwrap();
        assert_eq!(
            st.check(&mut db, u, AuthType::Read, part).unwrap(),
            Decision::Prohibited
        );
        // ¬R implies ¬W.
        assert_eq!(
            st.check(&mut db, u, AuthType::Write, part).unwrap(),
            Decision::Prohibited
        );
    }

    #[test]
    fn absence_differs_from_prohibition() {
        let (mut db, _root, part) = setup();
        let st = AuthStore::new();
        assert_eq!(
            st.check(&mut db, UserId(1), AuthType::Read, part).unwrap(),
            Decision::NoAuthorization
        );
    }

    #[test]
    fn weak_grant_is_overridden_by_strong_negative() {
        let (mut db, root, part) = setup();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut db, u, AuthObject::Instance(root), A::WR)
            .unwrap();
        assert_eq!(
            st.check(&mut db, u, AuthType::Read, part).unwrap(),
            Decision::Granted
        );
        st.grant(&mut db, u, AuthObject::Instance(root), A::SNR)
            .unwrap();
        assert_eq!(
            st.check(&mut db, u, AuthType::Read, part).unwrap(),
            Decision::Prohibited
        );
    }

    #[test]
    fn positive_read_does_not_grant_write() {
        let (mut db, root, part) = setup();
        let mut st = AuthStore::new();
        let u = UserId(1);
        st.grant(&mut db, u, AuthObject::Instance(root), A::SR)
            .unwrap();
        assert_eq!(
            st.check(&mut db, u, AuthType::Write, part).unwrap(),
            Decision::NoAuthorization
        );
    }
}
