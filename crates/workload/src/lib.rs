//! # corion-workload
//!
//! Workload generators for the CORION examples, tests, and benchmarks.
//!
//! The paper motivates composite objects with two application domains, both
//! generated here: mechanical-CAD style **physical part hierarchies**
//! (§2.3 Example 1 — vehicles built from exclusively-owned, reusable parts)
//! and **electronic documents** (§2.3 Example 2 — documents sharing
//! sections and paragraphs, with exclusive annotations and independent
//! figures). [`dag`] generalises both into parameterised random part
//! hierarchies (fan-out, depth, sharing fraction, reference-kind mix), and
//! [`txmix`] generates the transaction mixes the locking benchmarks replay.

//! ```
//! use corion_core::Database;
//! use corion_workload::{Corpus, CorpusParams};
//!
//! let mut db = Database::new();
//! let corpus = Corpus::generate(&mut db, CorpusParams::default()).unwrap();
//! assert_eq!(corpus.documents.len(), 10);
//! ```

pub mod dag;
pub mod documents;
pub mod txmix;
pub mod vehicles;

pub use dag::{DagParams, GeneratedDag};
pub use documents::{Corpus, CorpusParams, DocumentSchema};
pub use txmix::{AccessKind, TxMixParams, TxOp, WriteMixParams, WriteOp};
pub use vehicles::{Fleet, VehicleSchema};
