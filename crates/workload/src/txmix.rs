//! Transaction mixes for the locking benchmarks (DESIGN.md B3).
//!
//! Each generated operation touches one composite object (by root index)
//! for reading or writing; the benchmark replays the mix under the §7
//! composite protocol and under per-object locking and compares lock
//! counts and conflict rates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read the whole composite object.
    Read,
    /// Update the composite object.
    Write,
}

/// One operation in a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxOp {
    /// Index into the workload's root list.
    pub root_index: usize,
    /// Access kind.
    pub kind: AccessKind,
}

/// Mix parameters.
#[derive(Debug, Clone, Copy)]
pub struct TxMixParams {
    /// Number of operations.
    pub ops: usize,
    /// Number of composite-object roots to spread over.
    pub roots: usize,
    /// Fraction of writes.
    pub write_fraction: f64,
    /// Zipf-ish skew: probability mass concentrated on the first root
    /// (0.0 = uniform).
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TxMixParams {
    fn default() -> Self {
        TxMixParams {
            ops: 100,
            roots: 10,
            write_fraction: 0.2,
            hot_fraction: 0.0,
            seed: 42,
        }
    }
}

/// Generates a deterministic mix.
pub fn generate(params: TxMixParams) -> Vec<TxOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.ops)
        .map(|_| {
            let root_index = if params.hot_fraction > 0.0 && rng.gen_bool(params.hot_fraction) {
                0
            } else {
                rng.gen_range(0..params.roots)
            };
            let kind = if rng.gen_bool(params.write_fraction) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            TxOp { root_index, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Write mixes (for the write-throughput benchmarks)
// ---------------------------------------------------------------------

/// One operation in a write-path mix: either a fresh object or an
/// in-place update of an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Create a new object carrying `payload` bytes of string data.
    Create {
        /// String payload length in bytes.
        payload: usize,
    },
    /// Rewrite the payload of existing object `index`.
    Update {
        /// Index into the workload's object list.
        index: usize,
        /// New string payload length in bytes.
        payload: usize,
    },
}

/// Parameters for a write-path mix.
#[derive(Debug, Clone, Copy)]
pub struct WriteMixParams {
    /// Number of operations.
    pub ops: usize,
    /// Number of pre-existing objects updates may target.
    pub objects: usize,
    /// Fraction of operations that are updates (the rest create).
    pub update_fraction: f64,
    /// Nominal payload length; actual lengths jitter ±50% so repeated
    /// updates of one object keep changing its size.
    pub payload: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WriteMixParams {
    fn default() -> Self {
        WriteMixParams {
            ops: 500,
            objects: 100,
            update_fraction: 0.8,
            payload: 64,
            seed: 42,
        }
    }
}

/// Generates a deterministic write mix. An update-heavy mix
/// (`update_fraction` near 1.0) rewrites the same pages over and over —
/// the workload where delta-page logging and commit-window deduplication
/// pay off; a create-heavy mix measures raw ingest.
pub fn generate_writes(params: WriteMixParams) -> Vec<WriteOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.ops)
        .map(|_| {
            let payload = rng.gen_range(params.payload / 2..=params.payload * 3 / 2);
            if params.objects > 0 && rng.gen_bool(params.update_fraction) {
                WriteOp::Update {
                    index: rng.gen_range(0..params.objects),
                    payload,
                }
            } else {
                WriteOp::Create { payload }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(TxMixParams::default());
        let b = generate(TxMixParams::default());
        assert_eq!(a, b);
        let c = generate(TxMixParams {
            seed: 1,
            ..TxMixParams::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn write_fraction_is_respected_approximately() {
        let mix = generate(TxMixParams {
            ops: 2000,
            write_fraction: 0.3,
            ..TxMixParams::default()
        });
        let writes = mix.iter().filter(|op| op.kind == AccessKind::Write).count();
        let frac = writes as f64 / mix.len() as f64;
        assert!((0.25..0.35).contains(&frac), "got {frac}");
    }

    #[test]
    fn hot_fraction_skews_to_first_root() {
        let mix = generate(TxMixParams {
            ops: 1000,
            hot_fraction: 0.9,
            ..TxMixParams::default()
        });
        let hot = mix.iter().filter(|op| op.root_index == 0).count();
        assert!(hot > 800);
        let uniform = generate(TxMixParams {
            ops: 1000,
            hot_fraction: 0.0,
            ..TxMixParams::default()
        });
        let hot = uniform.iter().filter(|op| op.root_index == 0).count();
        assert!(hot < 300);
    }

    #[test]
    fn indices_stay_in_range() {
        let mix = generate(TxMixParams {
            ops: 500,
            roots: 3,
            ..TxMixParams::default()
        });
        assert!(mix.iter().all(|op| op.root_index < 3));
    }

    #[test]
    fn write_mix_is_deterministic_and_in_range() {
        let a = generate_writes(WriteMixParams::default());
        let b = generate_writes(WriteMixParams::default());
        assert_eq!(a, b);
        for op in &a {
            match *op {
                WriteOp::Create { payload } => assert!((32..=96).contains(&payload)),
                WriteOp::Update { index, payload } => {
                    assert!(index < 100);
                    assert!((32..=96).contains(&payload));
                }
            }
        }
        let updates = a
            .iter()
            .filter(|op| matches!(op, WriteOp::Update { .. }))
            .count();
        let frac = updates as f64 / a.len() as f64;
        assert!((0.7..0.9).contains(&frac), "got {frac}");
    }

    #[test]
    fn write_mix_with_no_objects_only_creates() {
        let mix = generate_writes(WriteMixParams {
            objects: 0,
            ..WriteMixParams::default()
        });
        assert!(mix.iter().all(|op| matches!(op, WriteOp::Create { .. })));
    }
}
