//! Parameterised random part hierarchies.
//!
//! Generates "object topologies" (paper §2.2) that respect the Topology
//! Rules by construction: a pool of `Part` objects arranged in levels, each
//! non-root level attached to the level above through exclusive or shared
//! composite references. The sharing fraction selects, per object, whether
//! it is an exclusive component (exactly one parent) or a shared component
//! (one or more parents) — exercising the benchmark knobs of DESIGN.md
//! (B3, B5, B7).

use corion_core::{
    AttributeDef, ClassBuilder, ClassId, CompositeSpec, Database, DbResult, Domain, Oid,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DagParams {
    /// Number of levels below the roots.
    pub depth: usize,
    /// Children created per parent.
    pub fanout: usize,
    /// Number of root objects.
    pub roots: usize,
    /// Probability that a child is attached through the *shared* attribute
    /// (and then to 1–3 parents) rather than the exclusive one.
    pub share_fraction: f64,
    /// Probability that a composite edge is dependent.
    pub dependent_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams {
            depth: 3,
            fanout: 3,
            roots: 2,
            share_fraction: 0.25,
            dependent_fraction: 0.5,
            seed: 42,
        }
    }
}

/// The generated hierarchy.
pub struct GeneratedDag {
    /// The single `Part` class used for every node.
    pub class: ClassId,
    /// Root objects (no composite parents).
    pub roots: Vec<Oid>,
    /// All objects by level (`levels[0]` = roots).
    pub levels: Vec<Vec<Oid>>,
    /// Total composite edges created.
    pub edges: usize,
}

impl GeneratedDag {
    /// All objects in the hierarchy.
    pub fn all(&self) -> Vec<Oid> {
        self.levels.iter().flatten().copied().collect()
    }

    /// Total object count.
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// True if empty (never, for positive parameters).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generates a hierarchy per `params` into `db`.
    ///
    /// The `Part` class carries four self-referential set attributes — one
    /// per composite reference kind — so any mix the parameters ask for is
    /// expressible:
    /// `kids_de`, `kids_ie` (exclusive), `kids_ds`, `kids_is` (shared).
    pub fn generate(db: &mut Database, params: DagParams) -> DbResult<GeneratedDag> {
        let class = db.define_class(ClassBuilder::new(format!("Part_{}", params.seed)))?;
        for (name, exclusive, dependent) in [
            ("kids_de", true, true),
            ("kids_ie", true, false),
            ("kids_ds", false, true),
            ("kids_is", false, false),
        ] {
            db.add_attribute(
                class,
                AttributeDef::composite(
                    name,
                    Domain::SetOf(Box::new(Domain::Class(class))),
                    CompositeSpec {
                        exclusive,
                        dependent,
                    },
                ),
            )?;
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut levels: Vec<Vec<Oid>> = Vec::with_capacity(params.depth + 1);
        let roots: Vec<Oid> = (0..params.roots)
            .map(|_| db.make(class, vec![], vec![]))
            .collect::<DbResult<_>>()?;
        levels.push(roots.clone());
        let mut edges = 0;
        for _ in 0..params.depth {
            let parents = levels.last().expect("at least roots").clone();
            let mut level = Vec::new();
            for &parent in &parents {
                for _ in 0..params.fanout {
                    let shared = rng.gen_bool(params.share_fraction);
                    let dependent = rng.gen_bool(params.dependent_fraction);
                    let attr = match (shared, dependent) {
                        (false, true) => "kids_de",
                        (false, false) => "kids_ie",
                        (true, true) => "kids_ds",
                        (true, false) => "kids_is",
                    };
                    // Create the child clustered with its (first) parent.
                    let child = db.make(class, vec![], vec![(parent, attr)])?;
                    edges += 1;
                    if shared {
                        // Attach to up to two more parents at this level.
                        for _ in 0..rng.gen_range(0..=2usize) {
                            let extra = parents[rng.gen_range(0..parents.len())];
                            if extra != parent && db.make_component(child, extra, attr).is_ok() {
                                edges += 1;
                            }
                        }
                    }
                    level.push(child);
                }
            }
            levels.push(level);
        }
        Ok(GeneratedDag {
            class,
            roots,
            levels,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::composite::Filter;

    #[test]
    fn generation_matches_requested_shape() {
        let mut db = Database::new();
        let dag = GeneratedDag::generate(&mut db, DagParams::default()).unwrap();
        assert_eq!(dag.levels.len(), 4, "roots + 3 levels");
        assert_eq!(dag.levels[0].len(), 2);
        assert_eq!(dag.levels[1].len(), 2 * 3);
        assert_eq!(dag.levels[3].len(), 2 * 3 * 3 * 3);
        assert!(!dag.is_empty());
        assert_eq!(dag.len(), 2 + 6 + 18 + 54);
    }

    #[test]
    fn exclusive_only_dag_is_a_forest() {
        let mut db = Database::new();
        let dag = GeneratedDag::generate(
            &mut db,
            DagParams {
                share_fraction: 0.0,
                ..DagParams::default()
            },
        )
        .unwrap();
        for o in dag.all() {
            let parents = db.get(o).unwrap().reverse_refs.len();
            assert!(parents <= 1, "forest: every node has at most one parent");
        }
        assert_eq!(dag.edges, dag.len() - dag.roots.len());
    }

    #[test]
    fn shared_dag_contains_multi_parent_nodes() {
        let mut db = Database::new();
        let dag = GeneratedDag::generate(
            &mut db,
            DagParams {
                share_fraction: 0.9,
                seed: 3,
                ..DagParams::default()
            },
        )
        .unwrap();
        let multi = dag
            .all()
            .iter()
            .filter(|&&o| db.get(o).unwrap().reverse_refs.len() > 1)
            .count();
        assert!(multi > 0);
        assert!(dag.edges > dag.len() - dag.roots.len());
    }

    #[test]
    fn every_generated_topology_satisfies_the_rules() {
        for seed in 0..5 {
            let mut db = Database::new();
            let dag = GeneratedDag::generate(
                &mut db,
                DagParams {
                    seed,
                    share_fraction: 0.5,
                    ..DagParams::default()
                },
            )
            .unwrap();
            for o in dag.all() {
                let obj = db.get(o).unwrap();
                corion_core::composite::ParentSets::of(&obj)
                    .check(o)
                    .unwrap();
            }
        }
    }

    #[test]
    fn roots_reach_their_levels() {
        let mut db = Database::new();
        let dag = GeneratedDag::generate(
            &mut db,
            DagParams {
                roots: 1,
                depth: 2,
                fanout: 2,
                share_fraction: 0.0,
                ..DagParams::default()
            },
        )
        .unwrap();
        let comps = db.components_of(dag.roots[0], &Filter::all()).unwrap();
        assert_eq!(comps.len(), 2 + 4);
    }
}
