//! The electronic-document logical part hierarchy of §2.3 Example 2.
//!
//! "A document consists of a title, authors and a number of sections. A
//! section in turn is composed of paragraphs. A document may share entire
//! sections or section paragraphs with other documents. Annotations may be
//! added to documents; however, they are not shared among different
//! documents. Further, documents may contain images that are extracted
//! from files."

use corion_core::{ClassBuilder, ClassId, CompositeSpec, Database, DbResult, Domain, Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The classes of the document schema.
#[derive(Debug, Clone, Copy)]
pub struct DocumentSchema {
    /// `Paragraph`.
    pub paragraph: ClassId,
    /// `Image`.
    pub image: ClassId,
    /// `Section` — `Content: (set-of Paragraph)`, shared + dependent.
    pub section: ClassId,
    /// `Document` — `Sections` shared + dependent, `Figures` shared +
    /// independent, `Annotations` exclusive + dependent.
    pub document: ClassId,
}

impl DocumentSchema {
    /// Defines the Example 2 schema, attribute-for-attribute.
    pub fn define(db: &mut Database) -> DbResult<Self> {
        let paragraph = db.define_class(ClassBuilder::new("Paragraph"))?;
        let image = db.define_class(ClassBuilder::new("Image"))?;
        let section = db.define_class(ClassBuilder::new("Section").attr_composite(
            "Content",
            Domain::SetOf(Box::new(Domain::Class(paragraph))),
            CompositeSpec {
                exclusive: false,
                dependent: true,
            },
        ))?;
        let document = db.define_class(
            ClassBuilder::new("Document")
                .attr("Title", Domain::String)
                .attr("Authors", Domain::SetOf(Box::new(Domain::String)))
                .attr_composite(
                    "Sections",
                    Domain::SetOf(Box::new(Domain::Class(section))),
                    CompositeSpec {
                        exclusive: false,
                        dependent: true,
                    },
                )
                .attr_composite(
                    "Figures",
                    Domain::SetOf(Box::new(Domain::Class(image))),
                    CompositeSpec {
                        exclusive: false,
                        dependent: false,
                    },
                )
                .attr_composite(
                    "Annotations",
                    Domain::SetOf(Box::new(Domain::Class(paragraph))),
                    CompositeSpec {
                        exclusive: true,
                        dependent: true,
                    },
                ),
        )?;
        Ok(DocumentSchema {
            paragraph,
            image,
            section,
            document,
        })
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusParams {
    /// Number of documents.
    pub documents: usize,
    /// Sections per document.
    pub sections_per_doc: usize,
    /// Paragraphs per section.
    pub paras_per_section: usize,
    /// Probability that a section is *shared from an earlier document*
    /// instead of freshly written (the logical-part-hierarchy knob).
    pub share_fraction: f64,
    /// Images per document (independent components).
    pub figures_per_doc: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            documents: 10,
            sections_per_doc: 5,
            paras_per_section: 4,
            share_fraction: 0.3,
            figures_per_doc: 2,
            seed: 42,
        }
    }
}

/// A generated corpus.
pub struct Corpus {
    /// The schema used.
    pub schema: DocumentSchema,
    /// Document roots.
    pub documents: Vec<Oid>,
    /// All sections (shared ones appear once).
    pub sections: Vec<Oid>,
    /// How many of the document→section references reused an existing
    /// section.
    pub shared_section_refs: usize,
}

impl Corpus {
    /// Generates a corpus per `params`.
    pub fn generate(db: &mut Database, params: CorpusParams) -> DbResult<Corpus> {
        let schema = DocumentSchema::define(db)?;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut documents = Vec::with_capacity(params.documents);
        let mut sections: Vec<Oid> = Vec::new();
        let mut shared_section_refs = 0;
        for d in 0..params.documents {
            let mut doc_sections: Vec<Value> = Vec::new();
            let mut chosen: Vec<Oid> = Vec::new();
            for _ in 0..params.sections_per_doc {
                let reuse = !sections.is_empty() && rng.gen_bool(params.share_fraction);
                let sec = if reuse {
                    let pick = sections[rng.gen_range(0..sections.len())];
                    if chosen.contains(&pick) {
                        // A set attribute holds each component once.
                        Self::fresh_section(db, &schema, params.paras_per_section)?
                    } else {
                        shared_section_refs += 1;
                        pick
                    }
                } else {
                    Self::fresh_section(db, &schema, params.paras_per_section)?
                };
                if !sections.contains(&sec) {
                    sections.push(sec);
                }
                chosen.push(sec);
                doc_sections.push(Value::Ref(sec));
            }
            let figures: Vec<Value> = (0..params.figures_per_doc)
                .map(|_| db.make(schema.image, vec![], vec![]).map(Value::Ref))
                .collect::<DbResult<_>>()?;
            let annotation = db.make(schema.paragraph, vec![], vec![])?;
            let doc = db.make(
                schema.document,
                vec![
                    ("Title", Value::Str(format!("doc-{d}"))),
                    (
                        "Authors",
                        Value::Set(vec![Value::Str("kim".into()), Value::Str("bertino".into())]),
                    ),
                    ("Sections", Value::Set(doc_sections)),
                    ("Figures", Value::Set(figures)),
                    ("Annotations", Value::Set(vec![Value::Ref(annotation)])),
                ],
                vec![],
            )?;
            documents.push(doc);
        }
        Ok(Corpus {
            schema,
            documents,
            sections,
            shared_section_refs,
        })
    }

    fn fresh_section(db: &mut Database, schema: &DocumentSchema, paras: usize) -> DbResult<Oid> {
        let content: Vec<Value> = (0..paras)
            .map(|_| db.make(schema.paragraph, vec![], vec![]).map(Value::Ref))
            .collect::<DbResult<_>>()?;
        db.make(
            schema.section,
            vec![("Content", Value::Set(content))],
            vec![],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::composite::Filter;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let mut db1 = Database::new();
        let mut db2 = Database::new();
        let p = CorpusParams {
            seed: 7,
            ..CorpusParams::default()
        };
        let c1 = Corpus::generate(&mut db1, p).unwrap();
        let c2 = Corpus::generate(&mut db2, p).unwrap();
        assert_eq!(c1.shared_section_refs, c2.shared_section_refs);
        assert_eq!(c1.sections.len(), c2.sections.len());
    }

    #[test]
    fn sharing_fraction_zero_means_disjoint_documents() {
        let mut db = Database::new();
        let c = Corpus::generate(
            &mut db,
            CorpusParams {
                share_fraction: 0.0,
                documents: 4,
                ..CorpusParams::default()
            },
        )
        .unwrap();
        assert_eq!(c.shared_section_refs, 0);
        assert_eq!(c.sections.len(), 4 * 5);
    }

    #[test]
    fn sharing_creates_multi_parent_sections() {
        let mut db = Database::new();
        let c = Corpus::generate(
            &mut db,
            CorpusParams {
                share_fraction: 0.8,
                documents: 12,
                ..CorpusParams::default()
            },
        )
        .unwrap();
        assert!(c.shared_section_refs > 0);
        let multi_parent = c
            .sections
            .iter()
            .filter(|&&s| db.get(s).unwrap().ds().len() > 1)
            .count();
        assert!(
            multi_parent > 0,
            "some sections belong to several documents"
        );
    }

    #[test]
    fn deleting_one_document_keeps_shared_sections_alive() {
        let mut db = Database::new();
        let c = Corpus::generate(
            &mut db,
            CorpusParams {
                share_fraction: 0.9,
                documents: 8,
                ..CorpusParams::default()
            },
        )
        .unwrap();
        // Find a section shared by >= 2 documents.
        let shared = c
            .sections
            .iter()
            .copied()
            .find(|&s| db.get(s).unwrap().ds().len() >= 2)
            .expect("high share fraction produces shared sections");
        let parents = db.get(shared).unwrap().ds();
        db.delete(parents[0]).unwrap();
        assert!(db.exists(shared), "still held by the other document");
        db.delete(parents[1]).unwrap();
        // Either deleted (no more dependent parents) or still shared.
        if db.exists(shared) {
            assert!(!db.get(shared).unwrap().ds().is_empty());
        }
    }

    #[test]
    fn annotations_are_exclusive_figures_independent() {
        let mut db = Database::new();
        let c = Corpus::generate(
            &mut db,
            CorpusParams {
                documents: 1,
                ..CorpusParams::default()
            },
        )
        .unwrap();
        let doc = c.documents[0];
        let annotations = db.get_attr(doc, "Annotations").unwrap().refs();
        let figures = db.get_attr(doc, "Figures").unwrap().refs();
        assert!(db.get(annotations[0]).unwrap().dx() == vec![doc]);
        assert!(db.get(figures[0]).unwrap().is_() == vec![doc]);
        // Deleting the document kills annotations, not figures.
        db.delete(doc).unwrap();
        assert!(!db.exists(annotations[0]));
        assert!(db.exists(figures[0]));
    }

    #[test]
    fn components_of_document_spans_levels() {
        let mut db = Database::new();
        let c = Corpus::generate(
            &mut db,
            CorpusParams {
                documents: 1,
                sections_per_doc: 2,
                paras_per_section: 3,
                figures_per_doc: 1,
                share_fraction: 0.0,
                seed: 1,
            },
        )
        .unwrap();
        let comps = db.components_of(c.documents[0], &Filter::all()).unwrap();
        // 2 sections + 6 paragraphs + 1 figure + 1 annotation paragraph.
        assert_eq!(comps.len(), 10);
    }
}
