//! The Vehicle physical part hierarchy of §2.3 Example 1.
//!
//! "We require that a vehicle part may be used for only one vehicle at any
//! point in time; however, vehicle parts may be re-used for other
//! vehicles" — independent exclusive composite references throughout.

use corion_core::{ClassBuilder, ClassId, CompositeSpec, Database, DbResult, Domain, Oid, Value};

/// The classes of the vehicle schema.
#[derive(Debug, Clone, Copy)]
pub struct VehicleSchema {
    /// `Company` (weak reference domain for `Manufacturer`).
    pub company: ClassId,
    /// `AutoBody`.
    pub body: ClassId,
    /// `AutoDrivetrain`.
    pub drivetrain: ClassId,
    /// `AutoTires`.
    pub tires: ClassId,
    /// `Vehicle`.
    pub vehicle: ClassId,
}

impl VehicleSchema {
    /// Defines the Example 1 schema. Component classes share the vehicle
    /// segment so `:parent` clustering applies.
    pub fn define(db: &mut Database) -> DbResult<Self> {
        let company = db.define_class(ClassBuilder::new("Company"))?;
        let ind_excl = CompositeSpec {
            exclusive: true,
            dependent: false,
        };
        let vehicle_builder = ClassBuilder::new("Vehicle");
        // Define Vehicle first so components can share its segment.
        let body_tmp = db.define_class(ClassBuilder::new("AutoBody"))?;
        let drivetrain =
            db.define_class(ClassBuilder::new("AutoDrivetrain").same_segment_as(body_tmp))?;
        let tires = db.define_class(ClassBuilder::new("AutoTires").same_segment_as(body_tmp))?;
        let vehicle = db.define_class(
            vehicle_builder
                .same_segment_as(body_tmp)
                .attr("Manufacturer", Domain::Class(company))
                .attr_composite("Body", Domain::Class(body_tmp), ind_excl)
                .attr_composite("Drivetrain", Domain::Class(drivetrain), ind_excl)
                .attr_composite(
                    "Tires",
                    Domain::SetOf(Box::new(Domain::Class(tires))),
                    ind_excl,
                )
                .attr("Color", Domain::String),
        )?;
        Ok(VehicleSchema {
            company,
            body: body_tmp,
            drivetrain,
            tires,
            vehicle,
        })
    }

    /// Builds one vehicle bottom-up: parts first, then the vehicle
    /// assembling them (the capability \[KIM87b\] lacked).
    pub fn build_vehicle(
        &self,
        db: &mut Database,
        color: &str,
        tire_count: usize,
    ) -> DbResult<Oid> {
        let body = db.make(self.body, vec![], vec![])?;
        let drivetrain = db.make(self.drivetrain, vec![], vec![])?;
        let tires: Vec<Value> = (0..tire_count)
            .map(|_| db.make(self.tires, vec![], vec![]).map(Value::Ref))
            .collect::<DbResult<_>>()?;
        db.make(
            self.vehicle,
            vec![
                ("Body", Value::Ref(body)),
                ("Drivetrain", Value::Ref(drivetrain)),
                ("Tires", Value::Set(tires)),
                ("Color", Value::Str(color.into())),
            ],
            vec![],
        )
    }

    /// Dismantles a vehicle, returning its parts to the free pool: removes
    /// every composite reference (parts survive — independent) and deletes
    /// the bare vehicle.
    pub fn dismantle(&self, db: &mut Database, vehicle: Oid) -> DbResult<Vec<Oid>> {
        let parts = db.components_of(vehicle, &corion_core::composite::Filter::all())?;
        db.delete(vehicle)?;
        Ok(parts)
    }
}

/// A generated fleet.
pub struct Fleet {
    /// The schema used.
    pub schema: VehicleSchema,
    /// Vehicle roots.
    pub vehicles: Vec<Oid>,
}

impl Fleet {
    /// Generates `n` vehicles with `tires_per` tires each.
    pub fn generate(db: &mut Database, n: usize, tires_per: usize) -> DbResult<Fleet> {
        let schema = VehicleSchema::define(db)?;
        let vehicles = (0..n)
            .map(|i| schema.build_vehicle(db, if i % 2 == 0 { "red" } else { "blue" }, tires_per))
            .collect::<DbResult<_>>()?;
        Ok(Fleet { schema, vehicles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::composite::Filter;

    #[test]
    fn fleet_builds_composite_vehicles() {
        let mut db = Database::new();
        let fleet = Fleet::generate(&mut db, 3, 4).unwrap();
        assert_eq!(fleet.vehicles.len(), 3);
        for &v in &fleet.vehicles {
            let comps = db.components_of(v, &Filter::all()).unwrap();
            assert_eq!(comps.len(), 6, "body + drivetrain + 4 tires");
        }
    }

    #[test]
    fn parts_are_exclusive_to_one_vehicle() {
        let mut db = Database::new();
        let schema = VehicleSchema::define(&mut db).unwrap();
        let v1 = schema.build_vehicle(&mut db, "red", 2).unwrap();
        let v2 = schema.build_vehicle(&mut db, "blue", 2).unwrap();
        let body1 = db.get_attr(v1, "Body").unwrap().refs()[0];
        // Using v1's body for v2 violates exclusivity.
        assert!(db.set_attr(v2, "Body", Value::Ref(body1)).is_err());
    }

    #[test]
    fn dismantled_parts_are_reusable() {
        // §2.3: "since the exclusive references are independent, the
        // components can be re-used for other vehicles, if the vehicle
        // which they constitute is dismantled later."
        let mut db = Database::new();
        let schema = VehicleSchema::define(&mut db).unwrap();
        let v1 = schema.build_vehicle(&mut db, "red", 2).unwrap();
        let body = db.get_attr(v1, "Body").unwrap().refs()[0];
        let parts = schema.dismantle(&mut db, v1).unwrap();
        assert!(parts.contains(&body));
        assert!(db.exists(body), "parts survive dismantling");
        // Re-use the body in a new vehicle.
        let v2 = db
            .make(schema.vehicle, vec![("Body", Value::Ref(body))], vec![])
            .unwrap();
        assert!(db.child_of(body, v2).unwrap());
    }

    #[test]
    fn components_share_the_vehicle_segment() {
        let mut db = Database::new();
        let schema = VehicleSchema::define(&mut db).unwrap();
        assert_eq!(
            db.segment_of(schema.vehicle).unwrap(),
            db.segment_of(schema.body).unwrap()
        );
        assert_eq!(
            db.segment_of(schema.vehicle).unwrap(),
            db.segment_of(schema.tires).unwrap()
        );
        assert_ne!(
            db.segment_of(schema.vehicle).unwrap(),
            db.segment_of(schema.company).unwrap()
        );
    }
}
