//! A lightweight structured tracing facade: named spans with enter/exit
//! events delivered to a process-global, thread-safe [`Subscriber`].
//!
//! The facade is deliberately tiny — no levels, no fields, no async —
//! because its job is to mark the boundaries of the paper's operations
//! (§3 traversals, WAL commits, recovery) so a test or a profiling
//! harness can observe *which* engine phase is running. When no
//! subscriber is installed, [`span`] costs one relaxed atomic load and
//! returns an inert guard; with the `enabled` feature off it compiles
//! to nothing at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Receives span enter/exit events. Implementations must be thread-safe;
/// events from concurrent engine threads arrive unserialized.
pub trait Subscriber: Send + Sync {
    /// A span was entered. `target` is the subsystem (e.g. `"storage"`),
    /// `name` the operation (e.g. `"commit_atomic"`).
    fn enter(&self, target: &str, name: &str);
    /// The span exited after `elapsed_ns` wall-clock nanoseconds.
    fn exit(&self, target: &str, name: &str, elapsed_ns: u64);
}

struct Global {
    /// Fast-path check: true only while a subscriber is installed.
    active: AtomicBool,
    subscriber: RwLock<Option<std::sync::Arc<dyn Subscriber>>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        active: AtomicBool::new(false),
        subscriber: RwLock::new(None),
    })
}

/// Install a process-global subscriber, replacing any previous one.
pub fn set_subscriber(sub: std::sync::Arc<dyn Subscriber>) {
    let g = global();
    *g.subscriber.write().unwrap() = Some(sub);
    g.active.store(true, Ordering::Release);
}

/// Remove the global subscriber; subsequent [`span`] calls are no-ops.
pub fn clear_subscriber() {
    let g = global();
    g.active.store(false, Ordering::Release);
    *g.subscriber.write().unwrap() = None;
}

/// RAII guard for a traced operation: created by [`span`], emits the
/// exit event with the elapsed time when dropped.
pub struct Span {
    /// `None` when tracing was inactive at creation — the drop is free.
    live: Option<(&'static str, &'static str, Instant)>,
}

/// Enter a span. Emits `enter` immediately and `exit` (with elapsed
/// nanoseconds) when the returned guard drops. When no subscriber is
/// installed — or the crate is built without `enabled` — this is one
/// relaxed load and an inert guard.
#[inline]
pub fn span(target: &'static str, name: &'static str) -> Span {
    if !cfg!(feature = "enabled") || !global().active.load(Ordering::Acquire) {
        return Span { live: None };
    }
    if let Some(sub) = global().subscriber.read().unwrap().as_ref() {
        sub.enter(target, name);
    }
    Span {
        live: Some((target, name, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((target, name, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(sub) = global().subscriber.read().unwrap().as_ref() {
                sub.exit(target, name, ns);
            }
        }
    }
}

/// One recorded span event, as collected by [`CollectingSubscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Subsystem the span belongs to.
    pub target: String,
    /// Operation name.
    pub name: String,
    /// `"enter"` or `"exit"`.
    pub phase: &'static str,
}

/// A [`Subscriber`] that appends every event to an in-memory list —
/// intended for tests asserting that an operation was traced.
#[derive(Default)]
pub struct CollectingSubscriber {
    events: Mutex<Vec<SpanEvent>>,
}

impl CollectingSubscriber {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain and return all events recorded so far.
    pub fn take(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl Subscriber for CollectingSubscriber {
    fn enter(&self, target: &str, name: &str) {
        self.events.lock().unwrap().push(SpanEvent {
            target: target.to_string(),
            name: name.to_string(),
            phase: "enter",
        });
    }

    fn exit(&self, target: &str, name: &str, _elapsed_ns: u64) {
        self.events.lock().unwrap().push(SpanEvent {
            target: target.to_string(),
            name: name.to_string(),
            phase: "exit",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_reach_subscriber_and_stop_after_clear() {
        // Single test touching the global subscriber; keep it serial.
        let collector = Arc::new(CollectingSubscriber::new());
        set_subscriber(collector.clone());
        {
            let _s = span("core", "components_of");
        }
        clear_subscriber();
        {
            let _s = span("core", "after_clear");
        }
        let events = collector.take();
        if cfg!(feature = "enabled") {
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].phase, "enter");
            assert_eq!(events[1].phase, "exit");
            assert_eq!(events[0].name, "components_of");
        } else {
            assert!(events.is_empty());
        }
    }
}
