//! Serializable point-in-time metric snapshots: merge, text round-trip,
//! and Prometheus exposition rendering.

use std::collections::BTreeMap;
use std::fmt;

/// Frozen state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing (no `+Inf` entry).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries, the last being the
    /// implicit `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// Error produced by [`MetricsSnapshot::merge`] or
/// [`MetricsSnapshot::parse_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Two snapshots disagree on a histogram's bucket bounds, so their
    /// buckets cannot be added bucket-wise.
    BoundsMismatch(String),
    /// A metric name appears with different types across snapshots.
    TypeMismatch(String),
    /// A text line could not be parsed; carries the offending line.
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BoundsMismatch(name) => {
                write!(f, "histogram `{name}` has mismatched bucket bounds")
            }
            SnapshotError::TypeMismatch(name) => {
                write!(f, "metric `{name}` appears with conflicting types")
            }
            SnapshotError::Parse(line) => write!(f, "unparseable snapshot line: `{line}`"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A serializable point-in-time snapshot of a [`crate::Registry`].
///
/// Snapshots support three operations beyond field access:
/// bucket-wise [`merge`](Self::merge) (for aggregating per-thread or
/// per-run registries), a line-oriented [`to_text`](Self::to_text) /
/// [`parse_text`](Self::parse_text) round-trip, and
/// [`render_prometheus`](Self::render_prometheus) for the standard
/// exposition format.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name; 0 when absent (a never-touched counter and
    /// an absent one are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name; 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Add `other` into `self`: counters and histogram buckets/sums add,
    /// gauges take `other`'s value when present (last-writer-wins, since
    /// a gauge is a level, not an accumulation).
    ///
    /// # Errors
    /// [`SnapshotError::BoundsMismatch`] if a histogram exists in both
    /// with different bounds; [`SnapshotError::TypeMismatch`] if a name
    /// switches type between the two snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), SnapshotError> {
        for name in other.counters.keys() {
            if self.gauges.contains_key(name) || self.histograms.contains_key(name) {
                return Err(SnapshotError::TypeMismatch(name.clone()));
            }
        }
        for name in other.gauges.keys() {
            if self.counters.contains_key(name) || self.histograms.contains_key(name) {
                return Err(SnapshotError::TypeMismatch(name.clone()));
            }
        }
        for name in other.histograms.keys() {
            if self.counters.contains_key(name) || self.gauges.contains_key(name) {
                return Err(SnapshotError::TypeMismatch(name.clone()));
            }
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get(name) {
                if mine.bounds != h.bounds {
                    return Err(SnapshotError::BoundsMismatch(name.clone()));
                }
            }
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => {
                    for (b, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += o;
                    }
                    mine.sum += h.sum;
                    mine.count += h.count;
                }
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Serialize to a stable, line-oriented text format:
    ///
    /// ```text
    /// counter <name> <value>
    /// gauge <name> <value>
    /// histogram <name> <sum> <count> <bound>:<bucket> ... inf:<bucket>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("histogram {name} {} {}", h.sum, h.count));
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                out.push_str(&format!(" {bound}:{bucket}"));
            }
            if let Some(inf) = h.buckets.last() {
                out.push_str(&format!(" inf:{inf}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the format produced by [`to_text`](Self::to_text).
    ///
    /// # Errors
    /// [`SnapshotError::Parse`] with the offending line on any malformed
    /// input; blank lines are skipped.
    pub fn parse_text(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let mut snap = MetricsSnapshot::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let err = || SnapshotError::Parse(line.to_string());
            let mut parts = line.split_whitespace();
            let kind = parts.next().ok_or_else(err)?;
            let name = parts.next().ok_or_else(err)?.to_string();
            match kind {
                "counter" => {
                    let v = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                    snap.counters.insert(name, v);
                }
                "gauge" => {
                    let v = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                    snap.gauges.insert(name, v);
                }
                "histogram" => {
                    let sum = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                    let count = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                    let mut bounds = Vec::new();
                    let mut buckets = Vec::new();
                    for pair in parts {
                        let (bound, bucket) = pair.split_once(':').ok_or_else(err)?;
                        let bucket: u64 = bucket.parse().map_err(|_| err())?;
                        if bound == "inf" {
                            buckets.push(bucket);
                        } else {
                            bounds.push(bound.parse().map_err(|_| err())?);
                            buckets.push(bucket);
                        }
                    }
                    if buckets.len() != bounds.len() + 1 {
                        return Err(err());
                    }
                    snap.histograms.insert(
                        name,
                        HistogramSnapshot {
                            bounds,
                            buckets,
                            sum,
                            count,
                        },
                    );
                }
                _ => return Err(err()),
            }
        }
        Ok(snap)
    }

    /// Render in the Prometheus text exposition format: `# TYPE` comment
    /// lines, plain samples for counters and gauges, and cumulative
    /// `_bucket{le="..."}` / `_sum` / `_count` series for histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                cumulative += bucket;
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("hits_total".into(), 41);
        s.gauges.insert("generation".into(), -3);
        s.histograms.insert(
            "lat_ns".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                buckets: vec![1, 2, 3],
                sum: 700,
                count: 6,
            },
        );
        s
    }

    #[test]
    fn text_round_trip_is_identity() {
        let s = sample();
        let parsed = MetricsSnapshot::parse_text(&s.to_text()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "counter only_name",
            "gauge g notanumber",
            "histogram h 1",
            "histogram h 1 2 nocolon",
            "frob x 1",
        ] {
            assert!(
                MetricsSnapshot::parse_text(bad).is_err(),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn merge_adds_counters_and_buckets_lww_gauges() {
        let mut a = sample();
        let mut b = sample();
        b.gauges.insert("generation".into(), 9);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("hits_total"), 82);
        assert_eq!(a.gauge("generation"), 9);
        let h = a.histogram("lat_ns").unwrap();
        assert_eq!(h.buckets, vec![2, 4, 6]);
        assert_eq!(h.sum, 1400);
        assert_eq!(h.count, 12);
    }

    #[test]
    fn merge_rejects_bounds_and_type_mismatch() {
        let mut a = sample();
        let mut b = sample();
        b.histograms.get_mut("lat_ns").unwrap().bounds = vec![10, 999];
        assert!(matches!(a.merge(&b), Err(SnapshotError::BoundsMismatch(_))));
        let mut c = MetricsSnapshot::default();
        c.gauges.insert("hits_total".into(), 1);
        assert!(matches!(a.merge(&c), Err(SnapshotError::TypeMismatch(_))));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_with_inf() {
        let text = sample().render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"# TYPE lat_ns histogram"));
        assert!(lines.contains(&"lat_ns_bucket{le=\"10\"} 1"));
        assert!(lines.contains(&"lat_ns_bucket{le=\"100\"} 3"));
        assert!(lines.contains(&"lat_ns_bucket{le=\"+Inf\"} 6"));
        assert!(lines.contains(&"lat_ns_sum 700"));
        assert!(lines.contains(&"lat_ns_count 6"));
    }
}
