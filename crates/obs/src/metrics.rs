//! Metric handle types: [`Counter`], [`Gauge`], [`Histogram`], and the
//! RAII [`Timer`] guard.
//!
//! Handles are created by a [`crate::Registry`] and are cheap to clone
//! (`Arc` inside). Each recording method first checks the registry's
//! shared enabled flag with one relaxed load; when the crate is built
//! without the `enabled` feature the whole body compiles out.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bucket upper bounds (inclusive, nanoseconds) for latency histograms.
///
/// Spans 250 ns .. 1 s geometrically (~4× steps); an implicit `+Inf`
/// bucket catches everything above. Chosen so that both a cached
/// `components_of` lookup (hundreds of ns) and a full WAL recovery
/// (tens of ms) land in the resolving middle of the range.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
    1_000_000_000,
];

/// Bucket upper bounds (inclusive, bytes) for size histograms such as
/// WAL append record sizes. Implicit `+Inf` above the last bound.
pub const SIZE_BOUNDS_BYTES: &[u64] = &[
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// True when recording should actually happen: the crate was built with
/// the `enabled` feature *and* the registry's runtime switch is on.
#[inline(always)]
fn live(enabled: &AtomicBool) -> bool {
    cfg!(feature = "enabled") && enabled.load(Ordering::Relaxed)
}

/// A monotonically increasing `u64` counter.
///
/// Cloning shares the underlying value; all clones observe and mutate
/// the same metric.
#[derive(Clone)]
pub struct Counter {
    pub(crate) value: Arc<AtomicU64>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Add one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if live(&self.enabled) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value. Reads ignore the enabled switch so that a
    /// snapshot taken after disabling still sees everything recorded.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can go up and down (e.g. the current
/// hierarchy-cache generation, or bytes pending in the WAL tail).
#[derive(Clone)]
pub struct Gauge {
    pub(crate) value: Arc<AtomicI64>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if live(&self.enabled) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        if live(&self.enabled) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current gauge value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket lives at `buckets[bounds.len()]`.
    pub(crate) bounds: &'static [u64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (latencies in
/// nanoseconds, sizes in bytes).
///
/// Bounds are **inclusive upper bounds** (`value <= bound` lands in the
/// bucket), matching Prometheus `le` semantics; an implicit `+Inf`
/// bucket catches the rest. The bound slice is `'static` so that every
/// histogram sharing a name provably shares bucket layout, which is what
/// makes [`crate::MetricsSnapshot::merge`] a plain bucket-wise addition.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !live(&self.enabled) {
            return;
        }
        let inner = &self.inner;
        let idx = match inner.bounds.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => inner.bounds.len(), // +Inf bucket
        };
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Start a [`Timer`] that records elapsed nanoseconds into this
    /// histogram when dropped. When recording is disabled the timer is
    /// inert: no [`Instant::now`] call and no handle clone (so the
    /// disabled path also skips the `Arc` refcount traffic).
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            armed: if live(&self.enabled) {
                Some((self.clone(), Instant::now()))
            } else {
                None
            },
        }
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }
}

/// RAII guard returned by [`Histogram::start_timer`]: records the
/// elapsed wall-clock nanoseconds into its histogram on drop.
///
/// Owns a clone of the histogram handle, so it borrows nothing — hot
/// paths can start a timer and then call `&mut self` methods freely
/// while it is live.
pub struct Timer {
    /// Histogram handle and start instant, populated only while live; a
    /// disabled timer carries nothing.
    armed: Option<(Histogram, Instant)>,
}

impl Timer {
    /// Stop the timer early and record; equivalent to dropping it.
    #[inline]
    pub fn observe(self) {}
}

impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.armed.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    #[cfg(feature = "enabled")]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn histogram_bucket_boundaries_are_inclusive() {
        let r = Registry::new();
        let h = r.histogram("h", &[10, 100]);
        h.record(10); // on the boundary -> first bucket (le semantics)
        h.record(11); // -> second bucket
        h.record(100); // boundary -> second bucket
        h.record(101); // -> +Inf bucket
        let snap = r.snapshot();
        let hs = &snap.histograms["h"];
        assert_eq!(hs.buckets, vec![1, 2, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 10 + 11 + 100 + 101);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn disabled_registry_records_nothing_but_reads_fine() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h", LATENCY_BOUNDS_NS);
        c.inc();
        r.set_enabled(false);
        c.inc();
        h.record(5);
        {
            let _t = h.start_timer();
        }
        r.set_enabled(true);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn timer_records_elapsed_nanos() {
        let r = Registry::new();
        let h = r.histogram("t", LATENCY_BOUNDS_NS);
        {
            let _t = h.start_timer();
            std::hint::black_box(0u64);
        }
        if cfg!(feature = "enabled") {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }
}
