//! # corion-obs
//!
//! Observability for the CORION engine: a zero-dependency **metrics
//! registry** plus a lightweight **structured tracing facade**.
//!
//! The paper this repository reproduces argues that composite-object
//! placement, traversal, and locking decisions must be driven by measured
//! workload shape (Darmont & Gruenwald's clustering-technique comparison
//! makes the same point for clustering strategies). This crate is the
//! measuring instrument: every hot path in `corion-core` (§3 traversals,
//! the traversal cache), `corion-storage` (WAL append/flush/checkpoint/
//! recovery), and `corion-lock` (acquire/wait/conflict) records into a
//! [`Registry`], and [`MetricsSnapshot`] turns the registry into a
//! serializable, mergeable, Prometheus-renderable value.
//!
//! ## Design
//!
//! * **Handles, not lookups** — [`Registry::counter`] /
//!   [`Registry::gauge`] / [`Registry::histogram`] intern a metric by name
//!   once and hand back a cheaply clonable handle (`Arc` inside). Hot
//!   paths hold handles in a struct and pay one atomic RMW per event; the
//!   name → metric map is touched only at construction and snapshot time.
//! * **Runtime off-switch** — [`Registry::set_enabled`]`(false)` makes
//!   every handle's recording method return after a single relaxed load,
//!   and timers skip the `Instant::now()` call entirely.
//! * **Compile-time off-switch** — building with
//!   `--no-default-features` (the `enabled` feature off) empties every
//!   recording method body and inerts the tracing facade, so the
//!   instrumented code compiles to exactly the uninstrumented code.
//! * **Fixed-bucket histograms** — cumulative `le` buckets over a fixed
//!   bound slice ([`LATENCY_BOUNDS_NS`], [`SIZE_BOUNDS_BYTES`]), merge-able
//!   by bucket-wise addition — see [`MetricsSnapshot::merge`].
//!
//! ```
//! use corion_obs::{Registry, LATENCY_BOUNDS_NS};
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total");
//! let lat = registry.histogram("lookup_latency_ns", LATENCY_BOUNDS_NS);
//! hits.inc();
//! lat.record(1_200);
//! let snap = registry.snapshot();
//! let expected = if cfg!(feature = "enabled") { 1 } else { 0 };
//! assert_eq!(snap.counter("cache_hits_total"), expected);
//! assert!(snap.render_prometheus().contains("cache_hits_total"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Timer, LATENCY_BOUNDS_NS, SIZE_BOUNDS_BYTES};
pub use registry::Registry;
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SnapshotError};
pub use trace::{clear_subscriber, set_subscriber, span, CollectingSubscriber, Span, Subscriber};
