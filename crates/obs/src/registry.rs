//! The [`Registry`]: a named, get-or-create store of metric handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramInner};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Inner {
    /// Runtime on/off switch, shared (by `Arc` clone) into every handle
    /// this registry hands out; flipping it affects all of them at once.
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A thread-safe, get-or-create registry of named metrics.
///
/// Cloning is cheap and shares the underlying store — `Database` holds
/// one clone, hands others to the storage and lock layers, and a single
/// [`Registry::snapshot`] sees everything.
///
/// Names follow Prometheus conventions (`snake_case`, `_total` suffix on
/// counters, unit suffix like `_ns` / `_bytes` on histograms); see
/// `docs/OBSERVABILITY.md` for the full CORION metric catalog.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an empty registry with recording enabled.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled: Arc::new(AtomicBool::new(true)),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Turn recording on or off at runtime for every handle created by
    /// this registry (past and future). Reads and snapshots are always
    /// allowed; only mutation is gated.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled (and compiled in).
    pub fn is_enabled(&self) -> bool {
        cfg!(feature = "enabled") && self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Get or create the counter registered under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics.get(name) {
            Some(Metric::Counter(c)) => c.clone(),
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let c = Counter {
                    value: Arc::new(AtomicU64::new(0)),
                    enabled: Arc::clone(&self.inner.enabled),
                };
                metrics.insert(name.to_string(), Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Get or create the gauge registered under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics.get(name) {
            Some(Metric::Gauge(g)) => g.clone(),
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let g = Gauge {
                    value: Arc::new(AtomicI64::new(0)),
                    enabled: Arc::clone(&self.inner.enabled),
                };
                metrics.insert(name.to_string(), Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Get or create the histogram registered under `name` with the
    /// given inclusive upper `bounds` (strictly increasing; an implicit
    /// `+Inf` bucket is added).
    ///
    /// # Panics
    /// Panics if `name` is registered as a different type or with
    /// different bounds, or if `bounds` is empty or not strictly
    /// increasing.
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram `{name}` needs at least one bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}` bounds must be strictly increasing"
        );
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics.get(name) {
            Some(Metric::Histogram(h)) => {
                assert_eq!(
                    h.inner.bounds, bounds,
                    "metric `{name}` already registered with different bounds"
                );
                h.clone()
            }
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let h = Histogram {
                    inner: Arc::new(HistogramInner {
                        bounds,
                        buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                        sum: AtomicU64::new(0),
                        count: AtomicU64::new(0),
                    }),
                    enabled: Arc::clone(&self.inner.enabled),
                };
                metrics.insert(name.to_string(), Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Take a point-in-time snapshot of every registered metric.
    ///
    /// Individual values are read with relaxed atomics, so a snapshot
    /// taken concurrently with recording may tear *across* metrics (a
    /// hit counted but its latency not yet), never *within* one value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.inner.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.inner.bounds.to_vec(),
                            buckets: h
                                .inner
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    );
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "enabled")]
    fn get_or_create_returns_same_underlying_metric() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn bounds_mismatch_panics() {
        let r = Registry::new();
        r.histogram("h", &[1, 2]);
        r.histogram("h", &[1, 3]);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn clones_share_the_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        assert_eq!(r2.snapshot().counter("shared"), 1);
        r2.set_enabled(false);
        assert!(!r.is_enabled());
    }
}
