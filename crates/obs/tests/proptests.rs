//! Property tests for the obs crate, per ISSUE 3: histogram bucket
//! boundaries, snapshot text round-trip, and the merge law — merging two
//! snapshots equals recording the same observations interleaved into one
//! registry.
#![cfg(feature = "enabled")]

use corion_obs::{MetricsSnapshot, Registry};
use proptest::prelude::*;

/// Small static bound sets the strategies below pick from; bounds must
/// be `'static` for `Registry::histogram`.
const BOUND_SETS: &[&[u64]] = &[&[10, 100, 1000], &[1, 2, 4, 8, 16], &[500]];

proptest! {
    #[test]
    fn histogram_bucket_boundaries_partition_all_values(
        which in 0usize..3,
        values in proptest::collection::vec(0u64..5_000, 0..64),
    ) {
        let bounds = BOUND_SETS[which];
        let r = Registry::new();
        let h = r.histogram("h", bounds);
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();

        // Every observation lands in exactly one bucket.
        prop_assert_eq!(hs.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());

        // Each bucket holds exactly the values in (prev_bound, bound],
        // i.e. bounds are inclusive upper limits.
        for (i, bucket) in hs.buckets.iter().enumerate() {
            let lo = if i == 0 { None } else { Some(bounds[i - 1]) };
            let hi = bounds.get(i).copied();
            let expected = values
                .iter()
                .filter(|&&v| lo.is_none_or(|lo| v > lo) && hi.is_none_or(|hi| v <= hi))
                .count() as u64;
            prop_assert_eq!(*bucket, expected, "bucket {} of bounds {:?}", i, bounds);
        }
    }

    #[test]
    fn snapshot_text_round_trips(
        counters in proptest::collection::vec((0u8..5, 0u64..1_000_000), 0..8),
        gauge in -1_000_000i64..1_000_000,
        values in proptest::collection::vec(0u64..5_000, 0..32),
    ) {
        let r = Registry::new();
        for (slot, v) in &counters {
            r.counter(&format!("c{slot}_total")).add(*v);
        }
        r.gauge("g").set(gauge);
        let h = r.histogram("h_ns", BOUND_SETS[0]);
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let parsed = MetricsSnapshot::parse_text(&snap.to_text()).unwrap();
        prop_assert_eq!(snap, parsed);
    }

    #[test]
    fn merge_of_two_snapshots_equals_interleaved_recording(
        left in proptest::collection::vec((0u8..2, 0u64..5_000), 0..32),
        right in proptest::collection::vec((0u8..2, 0u64..5_000), 0..32),
    ) {
        // Two separate registries, each recording its half...
        let ra = Registry::new();
        let rb = Registry::new();
        // ...and one registry recording the interleaving of both halves.
        let rboth = Registry::new();
        for r in [&ra, &rb, &rboth] {
            r.counter("events_total");
            r.histogram("v_ns", BOUND_SETS[1]);
        }
        let mut iters = [left.iter(), right.iter()];
        let splits = [&ra, &rb];
        // Alternate sides so the combined registry genuinely interleaves.
        let mut side = 0;
        let mut remaining = left.len() + right.len();
        while remaining > 0 {
            if let Some(&(kind, v)) = iters[side].next() {
                for r in [splits[side], &rboth] {
                    if kind == 0 {
                        r.counter("events_total").inc();
                    } else {
                        r.histogram("v_ns", BOUND_SETS[1]).record(v);
                    }
                }
                remaining -= 1;
            }
            side = 1 - side;
        }
        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot()).unwrap();
        prop_assert_eq!(merged, rboth.snapshot());
    }
}
