//! Reference kinds and reverse composite references.
//!
//! Paper §2.1 distinguishes **five types of reference** between a pair of
//! objects:
//!
//! 1. weak reference,
//! 2. dependent exclusive composite reference,
//! 3. independent exclusive composite reference,
//! 4. dependent shared composite reference,
//! 5. independent shared composite reference.
//!
//! §2.4 implements composite references with **reverse composite
//! references** stored in each component: "a reverse composite reference
//! actually consists of a couple of flags in addition to the object
//! identifier of a parent. One flag (D) indicates whether the object is a
//! dependent component of the parent; while the other flag (X) indicates
//! whether the object is an exclusive component of the parent."

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::StorageResult;

use crate::oid::{ClassId, Oid};

/// The kind of reference an attribute carries (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// "The standard reference in object-oriented systems"; carries no
    /// IS-PART-OF semantics.
    Weak,
    /// A reference with the IS-PART-OF relationship superimposed.
    Composite {
        /// `true`: the component is part of only this parent (exclusive);
        /// `false`: it may be part of several parents (shared).
        exclusive: bool,
        /// `true`: the component's existence depends on the parent's.
        dependent: bool,
    },
}

impl RefKind {
    /// All four composite kinds plus weak, in the paper's §2.1 numbering.
    pub const ALL: [RefKind; 5] = [
        RefKind::Weak,
        RefKind::Composite {
            exclusive: true,
            dependent: true,
        },
        RefKind::Composite {
            exclusive: true,
            dependent: false,
        },
        RefKind::Composite {
            exclusive: false,
            dependent: true,
        },
        RefKind::Composite {
            exclusive: false,
            dependent: false,
        },
    ];

    /// True for any of the four composite kinds.
    pub fn is_composite(self) -> bool {
        matches!(self, RefKind::Composite { .. })
    }

    /// True for exclusive composite references.
    pub fn is_exclusive(self) -> bool {
        matches!(
            self,
            RefKind::Composite {
                exclusive: true,
                ..
            }
        )
    }

    /// True for shared composite references.
    pub fn is_shared(self) -> bool {
        matches!(
            self,
            RefKind::Composite {
                exclusive: false,
                ..
            }
        )
    }

    /// True for dependent composite references.
    pub fn is_dependent(self) -> bool {
        matches!(
            self,
            RefKind::Composite {
                dependent: true,
                ..
            }
        )
    }
}

impl std::fmt::Display for RefKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefKind::Weak => write!(f, "weak"),
            RefKind::Composite {
                exclusive,
                dependent,
            } => write!(
                f,
                "{} {} composite",
                if *dependent {
                    "dependent"
                } else {
                    "independent"
                },
                if *exclusive { "exclusive" } else { "shared" },
            ),
        }
    }
}

/// A reverse composite reference (§2.4): the parent's OID plus the D and X
/// flags. The attribute name is deliberately *not* stored, matching the
/// paper's layout; see DESIGN.md §5 for the consequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReverseRef {
    /// The parent object holding the forward composite reference.
    pub parent: Oid,
    /// D flag: the component's existence depends on `parent`.
    pub dependent: bool,
    /// X flag: the component is exclusive to `parent`.
    pub exclusive: bool,
}

impl ReverseRef {
    /// Builds a reverse reference matching a forward composite reference of
    /// the given flags.
    pub fn new(parent: Oid, dependent: bool, exclusive: bool) -> Self {
        ReverseRef {
            parent,
            dependent,
            exclusive,
        }
    }

    /// The composite [`RefKind`] this reverse reference mirrors.
    pub fn kind(&self) -> RefKind {
        RefKind::Composite {
            exclusive: self.exclusive,
            dependent: self.dependent,
        }
    }

    /// Serializes the reverse reference (OID + one flag byte).
    pub fn encode(&self, buf: &mut impl BufMut) {
        codec::put_u32(buf, self.parent.class.0);
        codec::put_u64(buf, self.parent.serial);
        let flags = u8::from(self.dependent) | (u8::from(self.exclusive) << 1);
        codec::put_u8(buf, flags);
    }

    /// Deserializes a reverse reference.
    pub fn decode(r: &mut Reader<'_>) -> StorageResult<ReverseRef> {
        let class = ClassId(r.u32("reverse ref class")?);
        let serial = r.u64("reverse ref serial")?;
        let flags = r.u8("reverse ref flags")?;
        Ok(ReverseRef {
            parent: Oid::new(class, serial),
            dependent: flags & 1 != 0,
            exclusive: flags & 2 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_reference_types() {
        assert_eq!(RefKind::ALL.len(), 5);
        assert!(!RefKind::Weak.is_composite());
        let dep_excl = RefKind::Composite {
            exclusive: true,
            dependent: true,
        };
        assert!(dep_excl.is_composite() && dep_excl.is_exclusive() && dep_excl.is_dependent());
        let ind_shared = RefKind::Composite {
            exclusive: false,
            dependent: false,
        };
        assert!(ind_shared.is_shared() && !ind_shared.is_dependent());
    }

    #[test]
    fn display_names_match_paper_terminology() {
        assert_eq!(RefKind::Weak.to_string(), "weak");
        assert_eq!(
            RefKind::Composite {
                exclusive: true,
                dependent: true
            }
            .to_string(),
            "dependent exclusive composite"
        );
        assert_eq!(
            RefKind::Composite {
                exclusive: false,
                dependent: false
            }
            .to_string(),
            "independent shared composite"
        );
    }

    #[test]
    fn reverse_ref_roundtrips_all_flag_combinations() {
        let parent = Oid::new(ClassId(9), 1234);
        for dependent in [false, true] {
            for exclusive in [false, true] {
                let rr = ReverseRef::new(parent, dependent, exclusive);
                let mut buf = Vec::new();
                rr.encode(&mut buf);
                let mut r = Reader::new(&buf);
                assert_eq!(ReverseRef::decode(&mut r).unwrap(), rr);
            }
        }
    }

    #[test]
    fn reverse_ref_kind_mirrors_flags() {
        let rr = ReverseRef::new(Oid::new(ClassId(1), 1), true, false);
        assert_eq!(
            rr.kind(),
            RefKind::Composite {
                exclusive: false,
                dependent: true
            }
        );
    }
}
