//! Whole-database dump and restore.
//!
//! The simulated disk lives in memory; durability across processes comes
//! from [`Database::dump`] / [`Database::restore`]: a self-contained byte
//! image of the catalog, the operation logs, and every object. Objects are
//! written segment by segment in physical scan order, and restored with a
//! chain of `near` hints, so the clustering the `:parent` clauses built up
//! (§2.3) survives the round trip.
//!
//! The format is versioned with a magic header and sealed with a trailing
//! FNV-1a checksum over the whole body, so a truncated or bit-flipped image
//! is rejected instead of half-restored; everything uses the same
//! hand-rolled codec as the page layer, so a dump is readable without any
//! external crate. [`Database::save_to_file`] writes through a temporary
//! file and renames it into place, so a crash mid-save leaves the previous
//! dump intact. Crash recovery of the *in-process* store (WAL replay +
//! in-memory map rebuild) is [`Database::recover`] in `db`.

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::{fnv1a64, SegmentId, StorageError};

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::evolution::oplog::{FlagChange, LogEntry, OperationLog};
use crate::object::Object;
use crate::oid::ClassId;
use crate::schema::catalog::Catalog;

const MAGIC: &[u8; 8] = b"CORION02";

impl Database {
    /// Serializes the whole database (schema, operation logs, objects) into
    /// a self-contained byte image. Fails inside an undo scope (the image
    /// must be a committed state).
    pub fn dump(&mut self) -> DbResult<Vec<u8>> {
        if self.in_undo_scope() {
            return Err(DbError::SchemaChangeRejected {
                reason: "cannot dump inside an open undo scope".into(),
            });
        }
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        self.catalog.encode(&mut buf);
        codec::put_u64(&mut buf, self.next_serial);
        // Operation logs.
        let mut log_classes: Vec<ClassId> = self.oplogs.keys().copied().collect();
        log_classes.sort();
        codec::put_varint(&mut buf, log_classes.len() as u64);
        for class in log_classes {
            codec::put_u32(&mut buf, class.0);
            let log = &self.oplogs[&class];
            codec::put_varint(&mut buf, log.len() as u64);
            for e in log.pending_since(0) {
                codec::put_u64(&mut buf, e.cc);
                codec::put_u8(
                    &mut buf,
                    match e.change {
                        FlagChange::DropReverse => 0,
                        FlagChange::ClearX => 1,
                        FlagChange::ClearD => 2,
                        FlagChange::SetD => 3,
                    },
                );
                codec::put_u32(&mut buf, e.source_class.0);
            }
        }
        // Objects, per segment in physical scan order (clustering-faithful).
        let mut segments: Vec<SegmentId> = self
            .catalog
            .all_classes()
            .iter()
            .filter_map(|&c| self.catalog.class(c).ok().map(|c| c.segment))
            .collect();
        segments.sort();
        segments.dedup();
        codec::put_varint(&mut buf, segments.len() as u64);
        for seg in segments {
            codec::put_u32(&mut buf, seg.0);
            let records = self.store.scan(seg)?;
            // Only records that are live objects (the object table is the
            // authority; scan may see stale records only if there were
            // none — defensive filter all the same).
            let live: Vec<Vec<u8>> = records
                .into_iter()
                .filter_map(|(phys, bytes)| {
                    let obj = Object::decode(&bytes).ok()?;
                    (self.object_table.get(&obj.oid) == Some(&phys)).then_some(bytes)
                })
                .collect();
            codec::put_varint(&mut buf, live.len() as u64);
            for bytes in live {
                codec::put_bytes(&mut buf, &bytes);
            }
        }
        // Seal the image: a trailing checksum over everything above.
        let sum = fnv1a64(&buf);
        codec::put_u64(&mut buf, sum);
        Ok(buf)
    }

    /// Reconstructs a database from a [`Database::dump`] image, using the
    /// given configuration for the new store.
    pub fn restore(image: &[u8], config: crate::db::DbConfig) -> DbResult<Database> {
        if image.len() < MAGIC.len() + 8 {
            return Err(DbError::Storage(StorageError::Corrupt {
                context: "dump image too short",
            }));
        }
        let (body, trailer) = image.split_at(image.len() - 8);
        let expected = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv1a64(body) != expected {
            return Err(DbError::Storage(StorageError::Corrupt {
                context: "dump checksum",
            }));
        }
        let mut r = Reader::new(body);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.u8("magic")?;
        }
        if &magic != MAGIC {
            return Err(DbError::Storage(StorageError::Corrupt {
                context: "dump magic",
            }));
        }
        let catalog = Catalog::decode(&mut r)?;
        let next_serial = r.u64("next serial")?;
        let n_logs = r.varint("oplog count")? as usize;
        let mut oplogs = std::collections::HashMap::new();
        for _ in 0..n_logs {
            let class = ClassId(r.u32("oplog class")?);
            let n = r.varint("oplog entries")? as usize;
            let mut log = OperationLog::new();
            for _ in 0..n {
                let cc = r.u64("oplog cc")?;
                let change = match r.u8("oplog change")? {
                    0 => FlagChange::DropReverse,
                    1 => FlagChange::ClearX,
                    2 => FlagChange::ClearD,
                    3 => FlagChange::SetD,
                    _ => {
                        return Err(DbError::Storage(StorageError::Corrupt {
                            context: "oplog change",
                        }))
                    }
                };
                let source_class = ClassId(r.u32("oplog source")?);
                log.push(LogEntry {
                    cc,
                    change,
                    source_class,
                });
            }
            oplogs.insert(class, log);
        }

        let mut db = Database::with_config(config);
        db.catalog = catalog;
        db.oplogs = oplogs;
        db.next_serial = next_serial;
        // Recreate segments 0..=max referenced by the catalog.
        let max_seg = db
            .catalog
            .all_classes()
            .iter()
            .filter_map(|&c| db.catalog.class(c).ok().map(|c| c.segment.0))
            .max()
            .unwrap_or(0);
        for _ in 0..=max_seg {
            db.store.create_segment()?;
        }
        for class in db.catalog.all_classes() {
            db.extensions.entry(class).or_default();
        }
        // Objects: re-insert in dump order, chaining near-hints to keep the
        // original physical neighbourhoods together.
        let n_segs = r.varint("segment count")? as usize;
        for _ in 0..n_segs {
            let seg = SegmentId(r.u32("segment id")?);
            let n_objs = r.varint("object count")? as usize;
            let mut prev = None;
            for _ in 0..n_objs {
                let bytes = r.bytes("object record")?;
                let obj = Object::decode(bytes)?;
                let phys = db.store.insert(seg, bytes, prev)?;
                prev = Some(phys);
                db.object_table.insert(obj.oid, phys);
                db.extensions
                    .entry(obj.oid.class)
                    .or_default()
                    .insert(obj.oid);
            }
        }
        Ok(db)
    }

    /// Dumps to a file, atomically: the image is written to a sibling
    /// temporary file, fsynced, and renamed into place, so a crash mid-save
    /// never clobbers an existing dump with a partial one — the rename only
    /// happens once every byte is durable, and a failed rename removes the
    /// temporary instead of leaving an orphan beside the dump.
    pub fn save_to_file(&mut self, path: impl AsRef<std::path::Path>) -> DbResult<()> {
        use std::io::Write;
        let image = self.dump()?;
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let io_err = |e: std::io::Error| DbError::SchemaChangeRejected {
            reason: format!("failed to write dump: {e}"),
        };
        let write_synced = |tmp: &std::path::Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(tmp)?;
            f.write_all(&image)?;
            // Durability point: without this, the rename can land before
            // the data and a crash leaves a valid name on garbage bytes.
            f.sync_all()
        };
        if let Err(e) = write_synced(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(e));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(e));
        }
        Ok(())
    }

    /// Restores from a file.
    pub fn load_from_file(
        path: impl AsRef<std::path::Path>,
        config: crate::db::DbConfig,
    ) -> DbResult<Database> {
        let image = std::fs::read(path).map_err(|e| DbError::SchemaChangeRejected {
            reason: format!("failed to read dump: {e}"),
        })?;
        Database::restore(&image, config)
    }
}

#[cfg(test)]
mod tests {
    use crate::db::{Database, DbConfig};
    use crate::evolution::{AttrTypeChange, Maintenance};
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;

    fn populated() -> Database {
        let mut db = Database::new();
        let part = db
            .define_class(ClassBuilder::new("Part").attr("n", Domain::Integer))
            .unwrap();
        let asm = db
            .define_class(
                ClassBuilder::new("Asm")
                    .same_segment_as(part)
                    .attr("label", Domain::String)
                    .attr_composite(
                        "parts",
                        Domain::SetOf(Box::new(Domain::Class(part))),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    ),
            )
            .unwrap();
        for i in 0..20 {
            let p1 = db.make(part, vec![("n", Value::Int(i))], vec![]).unwrap();
            let p2 = db.make(part, vec![("n", Value::Int(-i))], vec![]).unwrap();
            db.make(
                asm,
                vec![
                    ("label", Value::Str(format!("a{i}"))),
                    ("parts", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)])),
                ],
                vec![],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn dump_restore_round_trips_objects_and_schema() {
        let mut db = populated();
        let report_before = db.verify_integrity().unwrap();
        let image = db.dump().unwrap();
        let mut back = Database::restore(&image, DbConfig::default()).unwrap();
        let report_after = back.verify_integrity().unwrap();
        assert_eq!(report_before, report_after);
        // Schema survived.
        let asm = back.class_by_name("Asm").unwrap();
        assert!(back.exclusive_compositep(asm, Some("parts")).unwrap());
        // Objects and values survived.
        let part = back.class_by_name("Part").unwrap();
        assert_eq!(back.instances_of(part, false).len(), 40);
        let a0 = back
            .instances_of(asm, false)
            .into_iter()
            .find(|&o| back.get_attr(o, "label").unwrap() == Value::Str("a0".into()))
            .unwrap();
        let comps = back
            .components_of(a0, &crate::composite::Filter::all())
            .unwrap();
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn restored_database_continues_allocating_fresh_oids() {
        let mut db = populated();
        let image = db.dump().unwrap();
        let mut back = Database::restore(&image, DbConfig::default()).unwrap();
        let part = back.class_by_name("Part").unwrap();
        let fresh = back.make(part, vec![], vec![]).unwrap();
        assert!(!db.exists(fresh) || db.exists(fresh), "no panic");
        assert!(back.instances_of(part, false).contains(&fresh));
        // The fresh OID collides with nothing restored.
        assert_eq!(back.instances_of(part, false).len(), 41);
    }

    #[test]
    fn pending_deferred_changes_survive_the_round_trip() {
        let mut db = populated();
        let asm = db.class_by_name("Asm").unwrap();
        db.change_attribute_type(
            asm,
            "parts",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Deferred,
        )
        .unwrap();
        // Dump immediately: instances still carry stale flags + pending log.
        let image = db.dump().unwrap();
        let mut back = Database::restore(&image, DbConfig::default()).unwrap();
        let part = back.class_by_name("Part").unwrap();
        let some_part = back.instances_of(part, false)[0];
        let obj = back.get(some_part).unwrap();
        assert!(
            !obj.reverse_refs[0].exclusive,
            "deferred change applied on first access after restore"
        );
        back.verify_integrity().unwrap();
    }

    #[test]
    fn clustering_survives_restore() {
        let mut db = populated();
        db.clear_cache().unwrap();
        db.reset_io_stats();
        let asm = db.class_by_name("Asm").unwrap();
        let a = db.instances_of(asm, false)[5];
        let _ = db
            .components_of(a, &crate::composite::Filter::all())
            .unwrap();
        let reads_before = db.disk_stats().reads;

        let image = db.dump().unwrap();
        let back = Database::restore(&image, DbConfig::default()).unwrap();
        back.clear_cache().unwrap();
        back.reset_io_stats();
        let _ = back
            .components_of(a, &crate::composite::Filter::all())
            .unwrap();
        let reads_after = back.disk_stats().reads;
        assert!(
            reads_after <= reads_before + 1,
            "restored layout stays clustered: {reads_after} vs {reads_before}"
        );
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut db = populated();
        let mut image = db.dump().unwrap();
        assert!(
            Database::restore(&image[..4], DbConfig::default()).is_err(),
            "truncated"
        );
        image[0] = b'X';
        assert!(
            Database::restore(&image, DbConfig::default()).is_err(),
            "bad magic"
        );
    }

    #[test]
    fn file_round_trip() {
        let mut db = populated();
        let dir = std::env::temp_dir().join(format!("corion_dump_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.corion");
        db.save_to_file(&path).unwrap();
        let mut back = Database::load_from_file(&path, DbConfig::default()).unwrap();
        back.verify_integrity().unwrap();
        assert_eq!(back.object_count(), db.object_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_rename_cleans_up_the_tmp_file() {
        // Fault injection via the filesystem: renaming a file over a
        // non-empty directory fails, exercising the rename-error path.
        let mut db = populated();
        let dir = std::env::temp_dir().join(format!("corion_rename_fault_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("db.corion")).unwrap();
        std::fs::write(dir.join("db.corion").join("occupant"), b"x").unwrap();
        let target = dir.join("db.corion");
        assert!(db.save_to_file(&target).is_err());
        let mut tmp = target.clone().into_os_string();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "orphaned .tmp left behind after a failed rename"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_tmp_write_leaves_existing_dump_intact() {
        // Fault injection: the temporary path is occupied by a directory,
        // so creating it fails before a single byte of the old dump moves.
        let mut db = populated();
        let dir = std::env::temp_dir().join(format!("corion_write_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("db.corion");
        db.save_to_file(&target).unwrap();
        let original = std::fs::read(&target).unwrap();

        let mut tmp = target.clone().into_os_string();
        tmp.push(".tmp");
        std::fs::create_dir_all(std::path::Path::new(&tmp).join("blocker")).unwrap();
        assert!(db.save_to_file(&target).is_err());
        assert_eq!(
            std::fs::read(&target).unwrap(),
            original,
            "failed save must not disturb the existing dump"
        );
        // And the previous dump still restores.
        Database::load_from_file(&target, DbConfig::default())
            .unwrap()
            .verify_integrity()
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_inside_undo_scope_is_rejected() {
        let mut db = populated();
        db.begin_undo().unwrap();
        assert!(db.dump().is_err());
        db.commit_undo().unwrap();
        db.dump().unwrap();
    }
}
