//! The database engine: catalog + object storage + the composite-object
//! semantics entry points.
//!
//! The public API mirrors the ORION messages of the paper:
//!
//! | paper (§2.3, §3) | here |
//! |---|---|
//! | `(make-class 'C …)` | [`Database::define_class`] |
//! | `(make C :parent (…) :A v …)` | [`Database::make`] |
//! | `(components-of o …)` | [`Database::components_of`] |
//! | `(parents-of o …)` / `(ancestors-of o …)` | [`Database::parents_of`] / [`Database::ancestors_of`] |
//! | predicates of §3.2 | [`Database::compositep`] and friends |
//!
//! Schema-evolution messages live in [`crate::evolution`]; the Make-Component
//! algorithm and Deletion Rule in [`crate::composite`].

use std::collections::{BTreeSet, HashMap};

use corion_storage::{ObjectStore, PhysId, SegmentId, StoreConfig};

use crate::error::{DbError, DbResult};
use crate::evolution::oplog::OperationLog;
use crate::object::Object;
use crate::oid::{ClassId, Oid};
use crate::schema::attr::Domain;
use crate::schema::catalog::Catalog;
use crate::schema::class::{Class, ClassBuilder};
use crate::schema::lattice;
use crate::value::Value;

/// What happens to a dependent component when its *last* dependent parent
/// reference is removed (not deleted — removal of the reference itself).
///
/// The paper specifies deletion semantics only for `del(O')` (§2.2); for
/// reference *removal* it is explicit about the motivating example — "for a
/// paragraph to exist, there must be at least one section containing it"
/// (§2.3 Example 2) — which the default policy implements. See DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrphanPolicy {
    /// Removing the last dependent composite reference deletes the orphan
    /// (cascading per the Deletion Rule).
    #[default]
    DeleteDependentOrphans,
    /// Orphans survive; only explicit `delete` removes objects.
    KeepOrphans,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbConfig {
    /// Orphan handling on reference removal.
    pub orphan_policy: OrphanPolicy,
    /// Storage tuning.
    pub store: StoreConfig,
}

/// The CORION database engine.
///
/// The read path — [`Database::get`], [`Database::get_attr`], and every §3
/// traversal/predicate — takes `&self` and is internally synchronised, so
/// any number of threads may read one engine concurrently (`Database:
/// Sync`); see [`Database::components_of_many`]. Mutations take `&mut self`
/// and therefore never race a reader.
pub struct Database {
    pub(crate) catalog: Catalog,
    pub(crate) store: ObjectStore,
    pub(crate) object_table: HashMap<Oid, PhysId>,
    pub(crate) extensions: HashMap<ClassId, BTreeSet<Oid>>,
    pub(crate) oplogs: HashMap<ClassId, OperationLog>,
    pub(crate) next_serial: u64,
    pub(crate) config: DbConfig,
    pub(crate) undo: Option<crate::undo::UndoLog>,
    pub(crate) txn: Option<crate::txn::TxnState>,
    pub(crate) overlay: Option<crate::overlay::Overlay>,
    pub(crate) traversal_cache: crate::composite::cache::TraversalCache,
    pub(crate) registry: corion_obs::Registry,
    pub(crate) metrics: crate::metrics::CoreMetrics,
}

/// The shared-read contract: the whole engine must stay usable from many
/// threads at once through `&Database`.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Database>();
};

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an engine with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// Creates an engine with explicit configuration.
    ///
    /// Every layer shares one metrics [`Registry`](corion_obs::Registry):
    /// the storage substrate, the lock-free traversal cache, and the engine
    /// itself all intern their counters here, so
    /// [`Database::metrics_snapshot`] sees the whole stack at once.
    pub fn with_config(config: DbConfig) -> Self {
        let registry = corion_obs::Registry::new();
        Database {
            catalog: Catalog::new(),
            store: ObjectStore::with_registry(config.store, &registry),
            object_table: HashMap::new(),
            extensions: HashMap::new(),
            oplogs: HashMap::new(),
            next_serial: 0,
            config,
            undo: None,
            txn: None,
            overlay: None,
            traversal_cache: crate::composite::cache::TraversalCache::new(&registry),
            metrics: crate::metrics::CoreMetrics::new(&registry),
            registry,
        }
    }

    // ------------------------------------------------------------------
    // Atomic batches
    // ------------------------------------------------------------------

    /// Runs `f` inside one storage-level atomic batch: every page the
    /// operation touches is logged to the WAL and either all of them become
    /// durable or none do. Nested calls join the enclosing batch, so a
    /// cascade (`delete`) is one batch no matter how many objects it visits.
    ///
    /// Error handling is split by kind:
    ///
    /// * a [`DbError::Storage`] error means the substrate itself failed
    ///   (I/O fault, injected crash point) — the batch is **aborted**, the
    ///   pages roll back to the pre-batch state, and the in-memory maps may
    ///   now disagree with storage: the caller must run
    ///   [`Database::recover`] before further mutations;
    /// * any other error is a semantic rejection that the entry point has
    ///   already compensated for (e.g. a failed `make` deletes its
    ///   half-created instance) — those compensation writes are **committed**
    ///   so storage and the in-memory maps stay in step.
    pub(crate) fn atomic<R>(&mut self, f: impl FnOnce(&mut Self) -> DbResult<R>) -> DbResult<R> {
        if self.overlay.is_some() {
            // Overlay writes never reach the page store, so there is
            // nothing to journal yet; the whole transaction becomes one
            // batch at `overlay_apply` time.
            return f(self);
        }
        if self.store.in_atomic_batch() {
            let result = f(self);
            if let Some(txn) = self.txn.as_mut() {
                // Joined the open transaction: count the logical operation,
                // and poison the transaction on a substrate failure — the
                // batch can no longer commit as a unit, only abort.
                match &result {
                    Ok(_) => txn.ops += 1,
                    Err(DbError::Storage(_) | DbError::ReadOnly) => txn.failed = true,
                    Err(_) => {}
                }
            }
            return result;
        }
        let _span = corion_obs::span("core", "atomic");
        let _timer = self.metrics.atomic_latency.start_timer();
        self.store.begin_atomic()?;
        match f(self) {
            Ok(out) => {
                self.store.commit_atomic()?;
                self.metrics.atomic_commits.inc();
                Ok(out)
            }
            Err(e) if matches!(e, DbError::Storage(_) | DbError::ReadOnly) => {
                let _ = self.store.abort_atomic();
                self.metrics.atomic_aborts.inc();
                self.traversal_cache.bump();
                Err(e)
            }
            Err(e) => {
                self.store.commit_atomic()?;
                self.metrics.atomic_commits.inc();
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Schema
    // ------------------------------------------------------------------

    /// Defines a class — the `make-class` message (§2.3).
    ///
    /// Instances are placed in a fresh storage segment unless the builder
    /// requested co-location (`same_segment_as`), which is what enables
    /// parent clustering between the two classes.
    pub fn define_class(&mut self, builder: ClassBuilder) -> DbResult<ClassId> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let segment = match builder.share_segment_with {
            Some(other) => self.catalog.class(other)?.segment,
            None => self.store.create_segment()?,
        };
        let id = self.catalog.define(builder, segment)?;
        self.extensions.insert(id, BTreeSet::new());
        Ok(id)
    }

    /// Looks up a class by id.
    pub fn class(&self, id: ClassId) -> DbResult<&Class> {
        self.catalog.class(id)
    }

    /// Looks up a class id by name.
    pub fn class_by_name(&self, name: &str) -> DbResult<ClassId> {
        self.catalog.by_name(name)
    }

    /// The schema catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// True if `sub` IS-A `sup` (reflexive).
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        lattice::is_subclass_of(&self.catalog, sub, sup)
    }

    // ------------------------------------------------------------------
    // Object access
    // ------------------------------------------------------------------

    /// True if `oid` resolves to a live object.
    pub fn exists(&self, oid: Oid) -> bool {
        if let Some(ov) = &self.overlay {
            if let Some(e) = ov.entries.get(&oid) {
                return e.image.is_some();
            }
        }
        self.object_table.contains_key(&oid)
    }

    /// Loads an object, applying any pending deferred schema-evolution
    /// changes first (§4.3: "when an instance of C is accessed, the CC of
    /// the instance is checked against the CC in the operation log").
    ///
    /// Takes `&self`: deferred changes are applied to the returned copy
    /// only, so a pure read never writes. Persistence is lazy — the next
    /// `save` of the object stores the caught-up image, and reapplying the
    /// pending log entries on every read until then is idempotent (the
    /// operation log is never pruned, and each flag change is a fixpoint).
    pub fn get(&self, oid: Oid) -> DbResult<Object> {
        if let Some(ov) = &self.overlay {
            if let Some(e) = ov.entries.get(&oid) {
                let mut obj = e.image.clone().ok_or(DbError::NoSuchObject(oid))?;
                self.apply_pending_changes(&mut obj)?;
                return Ok(obj);
            }
        }
        let phys = *self
            .object_table
            .get(&oid)
            .ok_or(DbError::NoSuchObject(oid))?;
        let bytes = self.store.read(phys)?;
        let mut obj = Object::decode(&bytes)?;
        self.apply_pending_changes(&mut obj)?;
        Ok(obj)
    }

    /// Applies pending deferred flag changes; returns `true` if the object
    /// was modified. Implemented in `evolution::deferred`.
    pub(crate) fn apply_pending_changes(&self, obj: &mut Object) -> DbResult<bool> {
        crate::evolution::deferred::apply_pending(self, obj)
    }

    /// Declares that the part hierarchy may have changed. Outside a
    /// transaction every write invalidates the traversal cache
    /// immediately; inside one the bumps are deferred to a single bump at
    /// commit/abort (the cache is suppressed meanwhile, so no stale entry
    /// can be served).
    pub(crate) fn note_hierarchy_change(&self) {
        if self.txn.is_none() && self.overlay.is_none() {
            self.traversal_cache.bump();
        }
    }

    /// Persists an object at its current address (relocating if it grew).
    /// With a write overlay installed the image lands in the overlay and
    /// the base store is untouched.
    pub(crate) fn save(&mut self, obj: &Object) -> DbResult<()> {
        if let Some(ov) = &mut self.overlay {
            let live = match ov.entries.get(&obj.oid) {
                Some(e) => e.image.is_some(),
                None => self.object_table.contains_key(&obj.oid),
            };
            if !live {
                return Err(DbError::NoSuchObject(obj.oid));
            }
            ov.record_save(obj);
            return Ok(());
        }
        self.note_hierarchy_change();
        self.txn_note_touch(obj.oid);
        let phys = *self
            .object_table
            .get(&obj.oid)
            .ok_or(DbError::NoSuchObject(obj.oid))?;
        if self.undo.is_some() {
            let before = Object::decode(&self.store.read(phys)?)?;
            self.undo_note_touch(obj.oid, Some(before));
        }
        let mut buf = Vec::new();
        obj.encode(&mut buf);
        let new_phys = self.store.update(phys, &buf)?;
        if new_phys != phys {
            self.object_table.insert(obj.oid, new_phys);
        }
        Ok(())
    }

    /// Inserts a brand-new object, clustered near `near` when possible.
    /// With a write overlay installed the object lands in the overlay
    /// (the clustering hint is captured and honoured at commit).
    pub(crate) fn insert_object(&mut self, obj: &Object, near: Option<Oid>) -> DbResult<()> {
        if let Some(ov) = &mut self.overlay {
            self.catalog.class(obj.oid.class)?;
            ov.record_insert(obj, near);
            return Ok(());
        }
        self.note_hierarchy_change();
        self.txn_note_touch(obj.oid);
        let segment = self.catalog.class(obj.oid.class)?.segment;
        let near_phys = near.and_then(|o| self.object_table.get(&o).copied());
        let mut buf = Vec::new();
        obj.encode(&mut buf);
        let phys = self.store.insert(segment, &buf, near_phys)?;
        self.object_table.insert(obj.oid, phys);
        self.extensions
            .entry(obj.oid.class)
            .or_default()
            .insert(obj.oid);
        self.undo_note_touch(obj.oid, None);
        Ok(())
    }

    /// Removes an object from storage and the object table (no semantics —
    /// the Deletion Rule lives in [`crate::composite::delete`]). With a
    /// write overlay installed this records a private tombstone.
    pub(crate) fn erase(&mut self, oid: Oid) -> DbResult<()> {
        if let Some(ov) = &mut self.overlay {
            let in_base = self.object_table.contains_key(&oid);
            let live = match ov.entries.get(&oid) {
                Some(e) => e.image.is_some(),
                None => in_base,
            };
            if !live {
                return Err(DbError::NoSuchObject(oid));
            }
            ov.record_erase(oid, in_base);
            return Ok(());
        }
        self.note_hierarchy_change();
        self.txn_note_touch(oid);
        let phys = self
            .object_table
            .remove(&oid)
            .ok_or(DbError::NoSuchObject(oid))?;
        if self.undo.is_some() {
            let before = Object::decode(&self.store.read(phys)?)?;
            self.undo_note_touch(oid, Some(before));
        }
        self.store.delete(phys)?;
        if let Some(ext) = self.extensions.get_mut(&oid.class) {
            ext.remove(&oid);
        }
        Ok(())
    }

    /// Direct instances of `class`; with `deep`, instances of subclasses too.
    pub fn instances_of(&self, class: ClassId, deep: bool) -> Vec<Oid> {
        let mut out: Vec<Oid> = self
            .extensions
            .get(&class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if deep {
            for sub in lattice::descendants(&self.catalog, class) {
                if let Some(ext) = self.extensions.get(&sub) {
                    out.extend(ext.iter().copied());
                }
            }
        }
        if let Some(ov) = &self.overlay {
            let in_scope = |c: ClassId| {
                c == class || (deep && lattice::is_subclass_of(&self.catalog, c, class))
            };
            for (oid, e) in &ov.entries {
                if !in_scope(oid.class) {
                    continue;
                }
                match (&e.image, e.created) {
                    (Some(_), true) => out.push(*oid),
                    (None, false) => out.retain(|o| o != oid),
                    _ => {}
                }
            }
            out.sort();
            out.dedup();
        }
        out
    }

    /// Total number of live objects (overlay-adjusted while a write
    /// overlay is installed).
    pub fn object_count(&self) -> usize {
        let mut n = self.object_table.len();
        if let Some(ov) = &self.overlay {
            for e in ov.entries.values() {
                match (&e.image, e.created) {
                    (Some(_), true) => n += 1,
                    (None, false) => n -= 1,
                    _ => {}
                }
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Instance creation — the `make` message (§2.3)
    // ------------------------------------------------------------------

    /// Creates an instance.
    ///
    /// * `values` assigns attributes by name; unassigned attributes take
    ///   their `:init` default.
    /// * `parents` is the `:parent` clause: `(ParentObject ParentAttributeName)`
    ///   pairs. If the named parent attribute is a composite attribute the
    ///   new instance becomes part of that parent; when more than one parent
    ///   pair names composite attributes, "these attributes must be shared
    ///   composite attributes" (Topology Rule 3 enforcement, §2.3).
    /// * The new object is physically clustered with the *first* parent,
    ///   "if the classes of the two objects are stored in the same physical
    ///   segment".
    ///
    /// The whole creation — instance insert plus every parent/child wiring
    /// write — is one atomic batch.
    pub fn make(
        &mut self,
        class: ClassId,
        values: Vec<(&str, Value)>,
        parents: Vec<(Oid, &str)>,
    ) -> DbResult<Oid> {
        self.atomic(|db| db.make_inner(class, values, parents))
    }

    fn make_inner(
        &mut self,
        class: ClassId,
        values: Vec<(&str, Value)>,
        parents: Vec<(Oid, &str)>,
    ) -> DbResult<Oid> {
        let class_def = self.catalog.class(class)?.clone();
        // Build the attribute vector: defaults, then overrides.
        let mut attrs: Vec<Value> = class_def.attrs.iter().map(|a| a.init.clone()).collect();
        for (name, value) in values {
            let idx = class_def
                .attr_index(name)
                .ok_or_else(|| DbError::NoSuchAttribute {
                    class,
                    attr: name.into(),
                })?;
            self.check_domain(&class_def.attrs[idx], &value)?;
            attrs[idx] = value;
        }

        // Validate the :parent clause before creating anything.
        let mut composite_parents: Vec<(Oid, String)> = Vec::new();
        let mut weak_parents: Vec<(Oid, String)> = Vec::new();
        for (pobj, pattr) in &parents {
            let pclass = self.catalog.class(pobj.class)?;
            let def = pclass.attr(pattr).ok_or_else(|| DbError::NoSuchAttribute {
                class: pobj.class,
                attr: (*pattr).into(),
            })?;
            if let Some(dc) = def.domain.referenced_class() {
                if !self.is_subclass_of(class, dc) {
                    return Err(DbError::DomainMismatch {
                        attr: (*pattr).into(),
                        expected: def.domain.describe(),
                        got: format!("instance of {class}"),
                    });
                }
            }
            if !self.exists(*pobj) {
                return Err(DbError::NoSuchObject(*pobj));
            }
            if def.composite.is_some() {
                composite_parents.push((*pobj, (*pattr).into()));
            } else if def.is_reference() {
                weak_parents.push((*pobj, (*pattr).into()));
            } else {
                return Err(DbError::NotComposite {
                    class: pobj.class,
                    attr: (*pattr).into(),
                });
            }
        }
        if composite_parents.len() > 1 {
            // §2.3: simultaneous multi-parent creation requires shared
            // composite attributes (else Topology Rule 3 would be violated).
            for (pobj, pattr) in &composite_parents {
                let def = self
                    .catalog
                    .class(pobj.class)?
                    .attr(pattr)
                    .expect("checked above");
                let spec = def.composite.expect("composite parent");
                if spec.exclusive {
                    return Err(DbError::TopologyViolation {
                        rule: 3,
                        object: *pobj,
                        detail: format!(
                            "multi-parent creation through exclusive attribute {pattr:?}"
                        ),
                    });
                }
            }
        }

        let oid = Oid::new(class, self.next_serial);
        self.next_serial += 1;
        let obj = Object::new(oid, attrs, class_def.change_count);
        let cluster_near = parents.first().map(|(p, _)| *p);
        self.insert_object(&obj, cluster_near)?;

        // Wire up composite references *from* the new object's own composite
        // attributes (the new object is a parent of those targets).
        let result: DbResult<()> = (|| {
            for (idx, def) in class_def.attrs.iter().enumerate() {
                if let Some(spec) = def.composite {
                    let obj = self.get(oid)?;
                    for child in obj.attrs[idx].refs() {
                        self.attach_child(child, oid, spec)?;
                    }
                }
            }
            // Wire up the :parent clause.
            for (pobj, pattr) in &composite_parents {
                self.add_to_parent_attr(oid, *pobj, pattr)?;
            }
            for (pobj, pattr) in &weak_parents {
                self.add_to_parent_attr(oid, *pobj, pattr)?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            // Roll the half-created instance back so a failed make is a no-op.
            let _ = crate::composite::delete::delete_raw(self, oid);
            return Err(e);
        }
        Ok(oid)
    }

    /// Adds `child` to `parent`'s attribute `attr` (forward reference), with
    /// composite bookkeeping when the attribute is composite. Idempotent:
    /// adding a child the attribute already references is a no-op. A scalar
    /// attribute's previous component is displaced (detached with orphan
    /// handling), exactly as if `set_attr` had replaced it.
    pub(crate) fn add_to_parent_attr(
        &mut self,
        child: Oid,
        parent: Oid,
        attr: &str,
    ) -> DbResult<()> {
        let pclass = self.catalog.class(parent.class)?;
        let idx = pclass
            .attr_index(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: parent.class,
                attr: attr.into(),
            })?;
        let def = pclass.attrs[idx].clone();
        if self.get(parent)?.attrs[idx].references(child) {
            return Ok(());
        }
        if let Some(spec) = def.composite {
            self.attach_child(child, parent, spec)?;
        }
        let mut pobj = self.get(parent)?;
        let displaced: Vec<Oid> = if def.domain.is_set() {
            Vec::new()
        } else {
            pobj.attrs[idx].refs()
        };
        pobj.attrs[idx].add_ref(child, def.domain.is_set());
        self.save(&pobj)?;
        if let Some(spec) = def.composite {
            for d in displaced {
                self.detach_child(d, parent, spec)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attribute access
    // ------------------------------------------------------------------

    /// Reads one attribute by name.
    pub fn get_attr(&self, oid: Oid, attr: &str) -> DbResult<Value> {
        let idx = self
            .catalog
            .class(oid.class)?
            .attr_index(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: oid.class,
                attr: attr.into(),
            })?;
        Ok(self.get(oid)?.attrs[idx].clone())
    }

    /// Writes one attribute by name, maintaining composite semantics:
    /// references added to a composite attribute go through the
    /// Make-Component Rule; references removed are detached (with orphan
    /// handling per [`OrphanPolicy`]). The write plus all composite
    /// bookkeeping (attach, detach, orphan cascade) is one atomic batch.
    pub fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        self.atomic(|db| db.set_attr_inner(oid, attr, value))
    }

    fn set_attr_inner(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        let class = self.catalog.class(oid.class)?;
        let idx = class
            .attr_index(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: oid.class,
                attr: attr.into(),
            })?;
        let def = class.attrs[idx].clone();
        self.check_domain(&def, &value)?;
        let old = self.get(oid)?.attrs[idx].clone();
        if let Some(spec) = def.composite {
            let old_refs: BTreeSet<Oid> = old.refs().into_iter().collect();
            let new_refs: BTreeSet<Oid> = value.refs().into_iter().collect();
            for added in new_refs.difference(&old_refs) {
                self.attach_child(*added, oid, spec)?;
            }
            // Write the new value before detaching, so orphan cascades see
            // the parent's forward reference already gone.
            let mut obj = self.get(oid)?;
            obj.attrs[idx] = value;
            self.save(&obj)?;
            for removed in old_refs.difference(&new_refs) {
                self.detach_child(*removed, oid, spec)?;
            }
            Ok(())
        } else {
            let mut obj = self.get(oid)?;
            obj.attrs[idx] = value;
            self.save(&obj)
        }
    }

    /// Writes one attribute **without composite bookkeeping**: the value is
    /// domain-checked but references in it are treated as weak.
    ///
    /// This is the extension point for layers that manage their own
    /// reference semantics — specifically `corion-versions`, where dynamic
    /// bindings to *generic instances* (paper §5.1) follow the CV rules
    /// (§5.2) rather than the Make-Component Rule, and the reverse
    /// information lives in the generic instance with a ref-count (§5.3).
    /// Application code should use [`Database::set_attr`].
    pub fn set_attr_weak(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        self.atomic(|db| {
            let class = db.catalog.class(oid.class)?;
            let idx = class
                .attr_index(attr)
                .ok_or_else(|| DbError::NoSuchAttribute {
                    class: oid.class,
                    attr: attr.into(),
                })?;
            let def = class.attrs[idx].clone();
            db.check_domain(&def, &value)?;
            let mut obj = db.get(oid)?;
            obj.attrs[idx] = value;
            db.save(&obj)
        })
    }

    /// Checks `value` against an attribute's domain: shape, and class
    /// membership of every referenced object.
    pub(crate) fn check_domain(
        &self,
        def: &crate::schema::attr::AttributeDef,
        value: &Value,
    ) -> DbResult<()> {
        if !def.domain.admits_shape(value) {
            return Err(DbError::DomainMismatch {
                attr: def.name.clone(),
                expected: def.domain.describe(),
                got: format!("{value}"),
            });
        }
        if let Some(dc) = def.domain.referenced_class() {
            for r in value.refs() {
                if !self.exists(r) {
                    return Err(DbError::NoSuchObject(r));
                }
                if !self.is_subclass_of(r.class, dc) {
                    return Err(DbError::DomainMismatch {
                        attr: def.name.clone(),
                        expected: def.domain.describe(),
                        got: format!("{r} (instance of {})", r.class),
                    });
                }
            }
        } else if matches!(def.domain, Domain::Any) {
            for r in value.refs() {
                if !self.exists(r) {
                    return Err(DbError::NoSuchObject(r));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Storage statistics (for benches and examples)
    // ------------------------------------------------------------------

    /// Buffer-pool counters.
    pub fn buffer_stats(&self) -> corion_storage::BufferStats {
        self.store.buffer_stats()
    }

    /// Physical I/O counters.
    pub fn disk_stats(&self) -> corion_storage::DiskStats {
        self.store.disk_stats()
    }

    /// Point-in-time snapshot of every metric the engine records — WAL,
    /// commit, recovery, traversal-cache, lock, and per-operation latency
    /// counters, keyed by the names catalogued in `docs/OBSERVABILITY.md`.
    ///
    /// The snapshot is a plain data structure: it serialises with
    /// [`MetricsSnapshot::to_text`](corion_obs::MetricsSnapshot::to_text),
    /// parses back with `parse_text`, and merges across processes with
    /// `merge`. Counters are monotonic — compute deltas by snapshotting
    /// before and after a workload.
    pub fn metrics_snapshot(&self) -> corion_obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders the current metrics in the Prometheus text exposition
    /// format (what `corion stats --prometheus` prints).
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// The metrics registry every layer of this engine records into.
    /// Exposed so embedders can intern their own metrics next to the
    /// engine's or flip recording off at runtime
    /// ([`Registry::set_enabled`](corion_obs::Registry::set_enabled)).
    pub fn metrics_registry(&self) -> &corion_obs::Registry {
        &self.registry
    }

    /// Traversal-cache counters (hits, misses, invalidations, generation).
    #[deprecated(
        since = "0.1.0",
        note = "read the `corion_traversal_cache_*` counters from `Database::metrics_snapshot` instead"
    )]
    pub fn traversal_cache_stats(&self) -> crate::composite::cache::TraversalCacheStats {
        self.traversal_cache.stats()
    }

    /// The current hierarchy generation — bumped by every object write and
    /// every DDL entry point; the traversal cache is valid for exactly one
    /// generation.
    pub fn hierarchy_generation(&self) -> u64 {
        self.traversal_cache.generation()
    }

    /// Resets storage and traversal-cache counters (not the generation).
    pub fn reset_io_stats(&self) {
        self.store.reset_stats();
        self.traversal_cache.reset_stats();
    }

    /// Flushes and empties the page cache (cold-cache experiments).
    pub fn clear_cache(&self) -> DbResult<()> {
        Ok(self.store.clear_cache()?)
    }

    /// The storage segment a class's instances live in.
    pub fn segment_of(&self, class: ClassId) -> DbResult<SegmentId> {
        Ok(self.catalog.class(class)?.segment)
    }

    // ------------------------------------------------------------------
    // Durability & crash recovery
    // ------------------------------------------------------------------
    //
    // The crash model is the storage layer's (DESIGN.md §10): a crash loses
    // buffer-pool frames and unflushed WAL bytes but keeps disk pages and
    // flushed log bytes. The catalog and operation logs are engine memory —
    // DDL is outside the crash scope, as in ORION where schema evolution was
    // non-transactional; cross-process durability of the schema comes from
    // `dump`/`save_to_file` (see `persist`).

    /// Simulates a crash of the storage substrate: buffer-pool frames and
    /// unflushed WAL bytes are lost; disk pages and flushed WAL bytes
    /// survive. The store refuses further mutations until
    /// [`Database::recover`] runs.
    pub fn simulate_crash(&mut self) {
        self.store.simulate_crash();
        self.traversal_cache.bump();
    }

    /// Recovers after a crash (simulated or injected): replays the
    /// committed WAL tail into the page store, discards any torn or
    /// uncommitted suffix, then rebuilds the engine's in-memory maps —
    /// object table, class extensions, serial counter — by scanning every
    /// recovered segment. Any open undo scope is discarded (its log may
    /// reference rolled-back state).
    ///
    /// Idempotent: recovering an already-consistent engine is a no-op
    /// beyond the rescan.
    pub fn recover(&mut self) -> DbResult<corion_storage::RecoveryReport> {
        let report = self.store.recover()?;
        self.undo = None;
        // A transaction open at the crash never committed; the rebuild
        // below restores the pre-transaction truth from storage.
        self.txn = None;
        self.traversal_cache.set_suppressed(false);
        self.rebuild_derived_state()?;
        Ok(report)
    }

    /// Rebuilds every in-memory map derived from storage — object table,
    /// class extensions, serial counter — by scanning all segments, then
    /// bumps the hierarchy generation so no pre-rebuild traversal can be
    /// served from cache. Shared by [`Database::recover`] and
    /// [`Database::scrub`], both of which may change what storage holds.
    fn rebuild_derived_state(&mut self) -> DbResult<()> {
        self.object_table.clear();
        for ext in self.extensions.values_mut() {
            ext.clear();
        }
        for class in self.catalog.all_classes() {
            self.extensions.entry(class).or_default();
        }
        let mut max_serial = self.next_serial;
        for seg in self.store.segment_ids() {
            for (phys, bytes) in self.store.scan(seg)? {
                let obj = Object::decode(&bytes)?;
                max_serial = max_serial.max(obj.oid.serial + 1);
                self.object_table.insert(obj.oid, phys);
                self.extensions
                    .entry(obj.oid.class)
                    .or_default()
                    .insert(obj.oid);
            }
        }
        self.next_serial = max_serial;
        self.traversal_cache.bump();
        Ok(())
    }

    /// Current health of the storage substrate: `Healthy`, `Degraded`
    /// (read-only until [`Database::recover`]), or `Poisoned` (crashed
    /// mid-commit; reads are refused too).
    pub fn health(&self) -> corion_storage::HealthState {
        self.store.health()
    }

    /// Online scrub: verifies the checksum of every page in every segment
    /// and salvages damaged pages — from the committed WAL tail when an
    /// after-image exists, by resetting to an empty page otherwise. Records
    /// lost to a page reset disappear from the object table; run
    /// [`Database::repair`] afterwards to restore referential integrity
    /// around them. Requires a healthy store and no open batch.
    pub fn scrub(&mut self) -> DbResult<corion_storage::ScrubReport> {
        let report = self.store.scrub()?;
        self.rebuild_derived_state()?;
        Ok(report)
    }

    /// Checkpoints the WAL: the log is compacted to a snapshot of the
    /// current segment directory, bounding replay work. Refused while a
    /// transaction is open (the open batch's images are not yet
    /// committed truth).
    pub fn checkpoint(&mut self) -> DbResult<()> {
        Ok(self.store.checkpoint()?)
    }

    /// Forces any deferred group-commit window to durability (see
    /// [`corion_storage::CommitPolicy::Group`]). A no-op under the
    /// immediate policy; refused while a transaction is open.
    pub fn sync(&mut self) -> DbResult<()> {
        Ok(self.store.sync()?)
    }

    /// Write-ahead-log counters (durable/pending bytes, records, flushes).
    pub fn wal_stats(&self) -> corion_storage::WalStats {
        self.store.wal_stats()
    }

    /// Arms a named crash point (see [`corion_storage::CRASH_POINTS`]): the
    /// `countdown`-th time execution reaches it, the store fails as if the
    /// process died there.
    pub fn arm_crash_point(&self, point: &'static str, countdown: u64) {
        self.store.arm_crash_point(point, countdown);
    }

    /// Arms a torn-write crash at `point`: the crash leaves only the first
    /// `keep_bytes` of the WAL flush durable.
    pub fn arm_torn_crash(&self, point: &'static str, countdown: u64, keep_bytes: usize) {
        self.store.arm_torn_crash(point, countdown, keep_bytes);
    }

    /// Disarms every crash point.
    pub fn heal_crash_points(&self) {
        self.store.heal_crash_points();
    }

    /// Remaining countdown of an armed crash point (`None` once fired or
    /// never armed).
    pub fn crash_point_remaining(&self, point: &'static str) -> Option<u64> {
        self.store.crash_point_remaining(point)
    }

    /// XORs `mask` into the durable WAL byte at `offset` (bit-rot
    /// injection for checksum tests).
    pub fn corrupt_wal_byte(&mut self, offset: usize, mask: u8) {
        self.store.corrupt_wal_byte(offset, mask);
    }

    /// Arms a *transient* fault at a named crash point: after
    /// `countdown - 1` clean hits, the next `failures` hits fail retryably
    /// and then the point heals itself. Faults healing within the store's
    /// retry budget are absorbed with no caller-visible error (only the
    /// `corion_storage_retry_*` counters move).
    pub fn arm_transient_crash(&self, point: &'static str, countdown: u64, failures: u64) {
        self.store.arm_transient_crash(point, countdown, failures);
    }

    /// XORs `mask` into one byte of a page's on-disk image *without*
    /// updating the page's checksum sidecar — simulated bit rot, for
    /// [`Database::scrub`] tests.
    pub fn corrupt_page_byte(&mut self, page: u64, offset: usize, mask: u8) -> DbResult<()> {
        self.store.corrupt_page_byte(page, offset, mask)?;
        self.traversal_cache.bump();
        Ok(())
    }

    /// Global page numbers of a segment, in adoption order (so a test can
    /// pick pages to corrupt).
    pub fn pages_of(&self, segment: SegmentId) -> DbResult<Vec<u64>> {
        Ok(self.store.pages_of(segment)?)
    }

    // ------------------------------------------------------------------
    // Raw surgery (integrity/repair test hook)
    // ------------------------------------------------------------------

    /// Overwrites an object's stored image **without any composite
    /// bookkeeping**: no Make-Component checks, no reverse-reference
    /// maintenance, no undo record. This deliberately breaks the engine's
    /// invariants — it exists so integrity tests can construct corrupted
    /// states and so [`Database::repair`] can rewrite objects wholesale.
    /// The object must already exist.
    pub fn raw_overwrite_object(&mut self, obj: &Object) -> DbResult<()> {
        self.atomic(|db| {
            db.note_hierarchy_change();
            db.txn_note_touch(obj.oid);
            let phys = *db
                .object_table
                .get(&obj.oid)
                .ok_or(DbError::NoSuchObject(obj.oid))?;
            let mut buf = Vec::new();
            obj.encode(&mut buf);
            let new_phys = db.store.update(phys, &buf)?;
            if new_phys != phys {
                db.object_table.insert(obj.oid, new_phys);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::CompositeSpec;

    fn simple_db() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let part = db
            .define_class(ClassBuilder::new("Part").attr("name", Domain::String))
            .unwrap();
        let asm = db
            .define_class(
                ClassBuilder::new("Assembly")
                    .attr("label", Domain::String)
                    .attr_composite(
                        "parts",
                        Domain::SetOf(Box::new(Domain::Class(part))),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    ),
            )
            .unwrap();
        (db, part, asm)
    }

    #[test]
    fn make_applies_defaults_and_overrides() {
        let mut db = Database::new();
        let c = db
            .define_class(
                ClassBuilder::new("C")
                    .attr("a", Domain::Integer)
                    .attr("b", Domain::String),
            )
            .unwrap();
        let o = db
            .make(c, vec![("b", Value::Str("x".into()))], vec![])
            .unwrap();
        assert_eq!(db.get_attr(o, "a").unwrap(), Value::Null);
        assert_eq!(db.get_attr(o, "b").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn make_rejects_unknown_attribute_and_bad_domain() {
        let (mut db, part, _asm) = simple_db();
        assert!(db
            .make(part, vec![("nope", Value::Int(1))], vec![])
            .is_err());
        assert!(db
            .make(part, vec![("name", Value::Int(1))], vec![])
            .is_err());
    }

    #[test]
    fn composite_value_at_make_wires_reverse_refs() {
        let (mut db, part, asm) = simple_db();
        let p1 = db.make(part, vec![], vec![]).unwrap();
        let p2 = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)]))],
                vec![],
            )
            .unwrap();
        let p1_obj = db.get(p1).unwrap();
        assert_eq!(p1_obj.dx(), vec![a]);
        assert_eq!(db.get(p2).unwrap().dx(), vec![a]);
    }

    #[test]
    fn parent_clause_makes_new_instance_a_component() {
        let (mut db, part, asm) = simple_db();
        let a = db.make(asm, vec![], vec![]).unwrap();
        let p = db.make(part, vec![], vec![(a, "parts")]).unwrap();
        assert!(db.get_attr(a, "parts").unwrap().references(p));
        assert_eq!(db.get(p).unwrap().dx(), vec![a]);
    }

    #[test]
    fn multi_parent_creation_requires_shared_attributes() {
        let (mut db, part, asm) = simple_db();
        let a1 = db.make(asm, vec![], vec![]).unwrap();
        let a2 = db.make(asm, vec![], vec![]).unwrap();
        let err = db
            .make(part, vec![], vec![(a1, "parts"), (a2, "parts")])
            .unwrap_err();
        assert!(matches!(err, DbError::TopologyViolation { rule: 3, .. }));
        // And the failed make must not leave a half-created instance behind.
        assert_eq!(db.instances_of(part, false).len(), 0);
    }

    #[test]
    fn multi_parent_creation_through_shared_attributes_succeeds() {
        let mut db = Database::new();
        let sec = db.define_class(ClassBuilder::new("Section")).unwrap();
        let doc = db
            .define_class(ClassBuilder::new("Document").attr_composite(
                "sections",
                Domain::SetOf(Box::new(Domain::Class(sec))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        let d1 = db.make(doc, vec![], vec![]).unwrap();
        let d2 = db.make(doc, vec![], vec![]).unwrap();
        let s = db
            .make(sec, vec![], vec![(d1, "sections"), (d2, "sections")])
            .unwrap();
        let sobj = db.get(s).unwrap();
        let mut ds = sobj.ds();
        ds.sort();
        assert_eq!(ds, vec![d1, d2]);
    }

    #[test]
    fn set_attr_detaches_removed_components() {
        let (mut db, part, asm) = simple_db();
        let p1 = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p1)]))],
                vec![],
            )
            .unwrap();
        // Replace the set with an empty one: p1 is a dependent orphan and is
        // deleted under the default policy.
        db.set_attr(a, "parts", Value::Set(vec![])).unwrap();
        assert!(!db.exists(p1));
    }

    #[test]
    fn keep_orphans_policy_preserves_detached_components() {
        let mut db = Database::with_config(DbConfig {
            orphan_policy: OrphanPolicy::KeepOrphans,
            ..DbConfig::default()
        });
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Assembly").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let p1 = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p1)]))],
                vec![],
            )
            .unwrap();
        db.set_attr(a, "parts", Value::Set(vec![])).unwrap();
        assert!(db.exists(p1));
        assert!(db.get(p1).unwrap().reverse_refs.is_empty());
    }

    #[test]
    fn instances_of_with_subclasses() {
        let mut db = Database::new();
        let a = db.define_class(ClassBuilder::new("A")).unwrap();
        let b = db
            .define_class(ClassBuilder::new("B").superclass(a))
            .unwrap();
        let _oa = db.make(a, vec![], vec![]).unwrap();
        let _ob = db.make(b, vec![], vec![]).unwrap();
        assert_eq!(db.instances_of(a, false).len(), 1);
        assert_eq!(db.instances_of(a, true).len(), 2);
    }

    #[test]
    fn clustering_places_child_near_first_parent() {
        let mut db = Database::new();
        let asm = db.define_class(ClassBuilder::new("Assembly")).unwrap();
        let part = db
            .define_class(ClassBuilder::new("Part").same_segment_as(asm))
            .unwrap();
        assert_eq!(db.segment_of(asm).unwrap(), db.segment_of(part).unwrap());
        let _ = part;
    }

    #[test]
    fn get_nonexistent_object_fails() {
        let mut db = Database::new();
        let c = db.define_class(ClassBuilder::new("C")).unwrap();
        let ghost = Oid::new(c, 999);
        assert!(matches!(db.get(ghost), Err(DbError::NoSuchObject(_))));
        assert!(!db.exists(ghost));
    }

    #[test]
    fn weak_reference_needs_live_target() {
        let mut db = Database::new();
        let t = db.define_class(ClassBuilder::new("T")).unwrap();
        let c = db
            .define_class(ClassBuilder::new("C").attr("friend", Domain::Class(t)))
            .unwrap();
        let ghost = Oid::new(t, 12345);
        assert!(db
            .make(c, vec![("friend", Value::Ref(ghost))], vec![])
            .is_err());
        let live = db.make(t, vec![], vec![]).unwrap();
        let o = db
            .make(c, vec![("friend", Value::Ref(live))], vec![])
            .unwrap();
        // Weak references carry no IS-PART-OF semantics: no reverse ref.
        assert!(db.get(live).unwrap().reverse_refs.is_empty());
        assert_eq!(db.get_attr(o, "friend").unwrap(), Value::Ref(live));
    }

    #[test]
    fn ref_domain_enforces_class_membership() {
        let mut db = Database::new();
        let t = db.define_class(ClassBuilder::new("T")).unwrap();
        let u = db.define_class(ClassBuilder::new("U")).unwrap();
        let c = db
            .define_class(ClassBuilder::new("C").attr("friend", Domain::Class(t)))
            .unwrap();
        let wrong = db.make(u, vec![], vec![]).unwrap();
        assert!(matches!(
            db.make(c, vec![("friend", Value::Ref(wrong))], vec![]),
            Err(DbError::DomainMismatch { .. })
        ));
    }
}
