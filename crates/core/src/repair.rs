//! Online repair: restores referential integrity after corruption.
//!
//! [`Database::verify_integrity`] *detects* violations of the composite
//! invariants; this module *fixes* them. Corruption reaches the engine in
//! two ways — bit rot that [`Database::scrub`] answers by resetting pages
//! (losing the objects on them), and raw surgery / software faults that
//! leave references out of sync. [`Database::repair`] walks every live
//! object and re-establishes, in order:
//!
//! 1. **no dangling composite references** — forward composite references
//!    to missing objects are dropped;
//! 2. **Topology Rules 1–3** (§2.2) — where the surviving forward graph
//!    still over-references a component (two exclusive parents, exclusive
//!    next to shared), the earliest exclusive edge wins and the rest are
//!    dropped, deterministically;
//! 3. **bidirectional consistency** (§2.4) — every object's stored reverse
//!    references are rewritten to exactly match the cleaned forward graph,
//!    with the referencing attribute's current D/X flags;
//! 4. **the Deletion Rule** (§2.2) — a component that *was* dependent but
//!    lost its every dependent parent is an orphan: under
//!    [`OrphanPolicy::DeleteDependentOrphans`](crate::OrphanPolicy) it is
//!    cascade-deleted ("for a paragraph to exist, there must be at least
//!    one section containing it", §2.3); under `KeepOrphans` it survives
//!    as a root.
//!
//! The whole repair is one atomic batch: a crash mid-repair rolls back to
//! the (still corrupt, still diagnosable) pre-repair state. Repair never
//! deletes an *independent* component — an object whose stored reverse
//! references were all independent or absent is preserved.

use std::collections::{BTreeMap, HashMap};

use crate::db::{Database, OrphanPolicy};
use crate::error::{DbError, DbResult};
use crate::oid::Oid;
use crate::refs::ReverseRef;

/// Census of what [`Database::repair`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Live objects examined.
    pub objects_visited: usize,
    /// Forward composite references dropped because their target no longer
    /// exists.
    pub dangling_edges_dropped: usize,
    /// Forward composite references dropped to restore Topology Rules 1–3
    /// (excess exclusive edges, shared edges conflicting with an exclusive
    /// one).
    pub conflicting_edges_dropped: usize,
    /// Objects whose stored reverse references were rewritten to match the
    /// cleaned forward graph.
    pub reverse_refs_fixed: usize,
    /// Orphaned dependent components cascade-deleted per the Deletion Rule
    /// (zero under [`OrphanPolicy::KeepOrphans`](crate::OrphanPolicy)).
    pub orphans_deleted: usize,
}

impl RepairReport {
    /// True when repair found nothing to change.
    pub fn is_clean(&self) -> bool {
        self.dangling_edges_dropped == 0
            && self.conflicting_edges_dropped == 0
            && self.reverse_refs_fixed == 0
            && self.orphans_deleted == 0
    }
}

/// One forward composite edge, as discovered in a parent's attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    parent: Oid,
    attr_idx: usize,
    dependent: bool,
    exclusive: bool,
}

impl Database {
    /// Repairs every integrity violation [`Database::verify_integrity`]
    /// detects, in one atomic batch. Returns a census of the changes; a
    /// clean database comes back with [`RepairReport::is_clean`] true.
    ///
    /// Fails inside an undo scope (repair writes bypass the undo log) and
    /// propagates storage failures like any other mutation.
    pub fn repair(&mut self) -> DbResult<RepairReport> {
        if self.in_undo_scope() {
            return Err(DbError::SchemaChangeRejected {
                reason: "cannot repair inside an open undo scope".into(),
            });
        }
        let _span = corion_obs::span("core", "repair");
        let report = self.atomic(|db| db.repair_inner())?;
        self.metrics.repair_runs.inc();
        self.metrics
            .repair_edges_dropped
            .add((report.dangling_edges_dropped + report.conflicting_edges_dropped) as u64);
        self.metrics
            .repair_reverse_refs_fixed
            .add(report.reverse_refs_fixed as u64);
        self.metrics
            .repair_orphans_deleted
            .add(report.orphans_deleted as u64);
        Ok(report)
    }

    fn repair_inner(&mut self) -> DbResult<RepairReport> {
        let mut report = RepairReport::default();

        // Deterministic visit order: sorted OIDs across every class.
        let mut all: Vec<Oid> = self.object_table.keys().copied().collect();
        all.sort();
        report.objects_visited = all.len();

        // Phase 1: drop dangling forward composite references.
        for &oid in &all {
            let class = self.catalog.class(oid.class)?.clone();
            let mut obj = self.get(oid)?;
            let mut changed = false;
            for (idx, def) in class.attrs.iter().enumerate() {
                if def.composite.is_none() {
                    continue; // weak references may dangle, ORION-style
                }
                for target in obj.attrs[idx].refs() {
                    if !self.exists(target) {
                        report.dangling_edges_dropped += obj.attrs[idx].remove_ref(target);
                        changed = true;
                    }
                }
            }
            if changed {
                self.raw_overwrite_object(&obj)?;
            }
        }

        // Collect the surviving forward graph: target -> referencing edges.
        let mut forward: HashMap<Oid, Vec<Edge>> = HashMap::new();
        for &oid in &all {
            let class = self.catalog.class(oid.class)?.clone();
            let obj = self.get(oid)?;
            for (idx, def) in class.attrs.iter().enumerate() {
                let Some(spec) = def.composite else { continue };
                for target in obj.attrs[idx].refs() {
                    forward.entry(target).or_default().push(Edge {
                        parent: oid,
                        attr_idx: idx,
                        dependent: spec.dependent,
                        exclusive: spec.exclusive,
                    });
                }
            }
        }

        // Phase 2: normalise Topology Rules 1–3 per target. With any
        // exclusive edge present the rules admit exactly one composite
        // reference in total; the earliest exclusive edge (by parent OID,
        // then attribute) wins. All-shared targets are always legal.
        let mut expected: BTreeMap<Oid, Vec<ReverseRef>> = BTreeMap::new();
        for (&target, edges) in &mut forward {
            edges.sort();
            let keep: Vec<Edge> = if edges.iter().any(|e| e.exclusive) {
                let winner = *edges.iter().find(|e| e.exclusive).expect("checked above");
                for &loser in edges.iter().filter(|&&e| e != winner) {
                    let mut parent = self.get(loser.parent)?;
                    report.conflicting_edges_dropped +=
                        parent.attrs[loser.attr_idx].remove_ref(target);
                    self.raw_overwrite_object(&parent)?;
                }
                vec![winner]
            } else {
                edges.clone()
            };
            expected.insert(
                target,
                keep.iter()
                    .map(|e| ReverseRef::new(e.parent, e.dependent, e.exclusive))
                    .collect(),
            );
        }

        // Phase 3: rewrite reverse references to match, remembering which
        // objects lost their dependent-component status on the way.
        let mut orphan_candidates: Vec<Oid> = Vec::new();
        for &oid in &all {
            let mut obj = self.get(oid)?;
            let mut stored: Vec<ReverseRef> = obj.reverse_refs.clone();
            stored.sort();
            let mut want = expected.remove(&oid).unwrap_or_default();
            want.sort();
            if stored != want {
                let was_dependent = stored.iter().any(|r| r.dependent);
                let still_dependent = want.iter().any(|r| r.dependent);
                if was_dependent && !still_dependent {
                    orphan_candidates.push(oid);
                }
                obj.reverse_refs = want;
                self.raw_overwrite_object(&obj)?;
                report.reverse_refs_fixed += 1;
            }
        }

        // Phase 4: the Deletion Rule for orphaned dependents. The graph is
        // consistent now, so the ordinary cascade machinery applies.
        if self.config.orphan_policy == OrphanPolicy::DeleteDependentOrphans {
            for oid in orphan_candidates {
                if self.exists(oid) {
                    report.orphans_deleted += self.delete(oid)?.len();
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;

    /// Part/Assembly with a dependent-shared set attribute.
    fn shared_db() -> (Database, crate::oid::ClassId, crate::oid::ClassId) {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Asm").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        (db, part, asm)
    }

    #[test]
    fn clean_database_repairs_to_a_clean_report() {
        let (mut db, part, asm) = shared_db();
        let p = db.make(part, vec![], vec![]).unwrap();
        let _a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        let report = db.repair().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.objects_visited, 2);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn missing_reverse_ref_is_recreated_with_correct_flags() {
        let (mut db, part, asm) = shared_db();
        let p = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        // Surgery: strip the reverse reference.
        let mut obj = db.get(p).unwrap();
        obj.reverse_refs.clear();
        db.raw_overwrite_object(&obj).unwrap();
        assert!(db.verify_integrity().is_err());

        let report = db.repair().unwrap();
        assert_eq!(report.reverse_refs_fixed, 1);
        db.verify_integrity().unwrap();
        let refs = db.get(p).unwrap().reverse_refs;
        assert_eq!(refs.len(), 1);
        assert_eq!(
            (refs[0].parent, refs[0].dependent, refs[0].exclusive),
            (a, true, false)
        );
    }

    #[test]
    fn dangling_forward_edge_is_dropped() {
        let (mut db, part, asm) = shared_db();
        let p1 = db.make(part, vec![], vec![]).unwrap();
        let p2 = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)]))],
                vec![],
            )
            .unwrap();
        // Surgery: erase p2 wholesale (no Deletion Rule, no detach).
        db.erase(p2).unwrap();
        assert!(db.verify_integrity().is_err());
        let report = db.repair().unwrap();
        assert_eq!(report.dangling_edges_dropped, 1);
        db.verify_integrity().unwrap();
        let a_obj = db.get(a).unwrap();
        assert_eq!(a_obj.attrs[0].refs(), vec![p1]);
    }

    #[test]
    fn two_exclusive_parents_keep_only_the_first() {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Asm").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: false,
                },
            ))
            .unwrap();
        let p = db.make(part, vec![], vec![]).unwrap();
        let a1 = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        let a2 = db.make(asm, vec![], vec![]).unwrap();
        // Surgery: force a second exclusive forward edge from a2.
        let mut a2_obj = db.get(a2).unwrap();
        a2_obj.attrs[0] = Value::Set(vec![Value::Ref(p)]);
        db.raw_overwrite_object(&a2_obj).unwrap();
        assert!(db.verify_integrity().is_err());

        let report = db.repair().unwrap();
        assert_eq!(report.conflicting_edges_dropped, 1);
        db.verify_integrity().unwrap();
        // The earliest exclusive edge (a1 < a2) survives.
        assert!(db.get_attr(a1, "parts").unwrap().references(p));
        assert!(!db.get_attr(a2, "parts").unwrap().references(p));
    }

    #[test]
    fn orphaned_dependent_component_is_cascade_deleted() {
        let (mut db, part, asm) = shared_db();
        let p = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        // Surgery: erase the only dependent parent wholesale.
        db.erase(a).unwrap();
        assert!(db.verify_integrity().is_err());
        let report = db.repair().unwrap();
        assert_eq!(report.orphans_deleted, 1);
        assert!(!db.exists(p), "dependent orphan must not survive repair");
        db.verify_integrity().unwrap();
    }

    #[test]
    fn keep_orphans_policy_preserves_orphaned_dependents() {
        let mut db = Database::with_config(DbConfig {
            orphan_policy: OrphanPolicy::KeepOrphans,
            ..DbConfig::default()
        });
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Asm").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        let p = db.make(part, vec![], vec![]).unwrap();
        let a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        db.erase(a).unwrap();
        let report = db.repair().unwrap();
        assert_eq!(report.orphans_deleted, 0);
        assert!(db.exists(p));
        db.verify_integrity().unwrap();
    }

    #[test]
    fn repair_metrics_count_fixes() {
        let (mut db, part, asm) = shared_db();
        let p = db.make(part, vec![], vec![]).unwrap();
        let _a = db
            .make(
                asm,
                vec![("parts", Value::Set(vec![Value::Ref(p)]))],
                vec![],
            )
            .unwrap();
        let mut obj = db.get(p).unwrap();
        obj.reverse_refs.clear();
        db.raw_overwrite_object(&obj).unwrap();
        db.repair().unwrap();
        if cfg!(feature = "obs") {
            let snap = db.metrics_snapshot();
            assert_eq!(snap.counter("corion_repair_runs_total"), 1);
            assert_eq!(snap.counter("corion_repair_reverse_refs_fixed_total"), 1);
        }
    }
}
