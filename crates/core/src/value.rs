//! Attribute values.
//!
//! "An object has a number of attributes; the value of an attribute is
//! itself an object" (paper §1). Primitive classes (integer, string, …) are
//! represented inline; references to non-primitive objects are [`Oid`]s.
//! `(set-of X)` domains (paper §2.3, e.g. `(set-of Section)`) are [`Value::Set`].

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::{StorageError, StorageResult};

use crate::oid::{ClassId, Oid};

/// The value of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// ORION's `nil`: no value / removed reference.
    Null,
    /// Instance of the primitive class `integer`.
    Int(i64),
    /// Instance of the primitive class `float`.
    Float(f64),
    /// Instance of the primitive class `boolean`.
    Bool(bool),
    /// Instance of the primitive class `string`.
    Str(String),
    /// Reference to a non-primitive object (a UID, §2.1).
    Ref(Oid),
    /// A `(set-of …)` value. Element order is not meaningful; duplicates of
    /// `Ref`s are rejected at the schema layer.
    Set(Vec<Value>),
}

impl Value {
    /// Every object reference contained in this value (directly or inside a
    /// set). For a composite attribute these are the component objects.
    pub fn refs(&self) -> Vec<Oid> {
        match self {
            Value::Ref(o) => vec![*o],
            Value::Set(items) => items.iter().flat_map(Value::refs).collect(),
            _ => Vec::new(),
        }
    }

    /// True if the value contains a reference to `target`.
    pub fn references(&self, target: Oid) -> bool {
        match self {
            Value::Ref(o) => *o == target,
            Value::Set(items) => items.iter().any(|v| v.references(target)),
            _ => false,
        }
    }

    /// Removes every reference to `target`, replacing a direct `Ref` with
    /// `Null` and deleting matching elements from sets. Returns how many
    /// references were removed.
    pub fn remove_ref(&mut self, target: Oid) -> usize {
        match self {
            Value::Ref(o) if *o == target => {
                *self = Value::Null;
                1
            }
            Value::Set(items) => {
                let before = items.len();
                items.retain(|v| !v.references(target));
                before - items.len()
            }
            _ => 0,
        }
    }

    /// Adds `target` to a set value; turns `Null` into a one-element set
    /// when `make_set`, or into a direct `Ref` otherwise. Returns `false`
    /// (and leaves the value unchanged) if `target` is already present.
    pub fn add_ref(&mut self, target: Oid, make_set: bool) -> bool {
        match self {
            Value::Set(items) => {
                if items.iter().any(|v| v.references(target)) {
                    return false;
                }
                items.push(Value::Ref(target));
                true
            }
            Value::Null => {
                *self = if make_set {
                    Value::Set(vec![Value::Ref(target)])
                } else {
                    Value::Ref(target)
                };
                true
            }
            Value::Ref(o) if *o == target => false,
            _ => {
                *self = Value::Ref(target);
                true
            }
        }
    }

    /// Serializes the value.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::Null => codec::put_u8(buf, 0),
            Value::Int(v) => {
                codec::put_u8(buf, 1);
                codec::put_i64(buf, *v);
            }
            Value::Float(v) => {
                codec::put_u8(buf, 2);
                codec::put_f64(buf, *v);
            }
            Value::Bool(v) => {
                codec::put_u8(buf, 3);
                codec::put_u8(buf, u8::from(*v));
            }
            Value::Str(v) => {
                codec::put_u8(buf, 4);
                codec::put_string(buf, v);
            }
            Value::Ref(o) => {
                codec::put_u8(buf, 5);
                codec::put_u32(buf, o.class.0);
                codec::put_u64(buf, o.serial);
            }
            Value::Set(items) => {
                codec::put_u8(buf, 6);
                codec::put_varint(buf, items.len() as u64);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    /// Deserializes a value.
    pub fn decode(r: &mut Reader<'_>) -> StorageResult<Value> {
        let tag = r.u8("value tag")?;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Int(r.i64("int value")?),
            2 => Value::Float(r.f64("float value")?),
            3 => Value::Bool(r.u8("bool value")? != 0),
            4 => Value::Str(r.string("string value")?),
            5 => {
                let class = ClassId(r.u32("ref class")?);
                let serial = r.u64("ref serial")?;
                Value::Ref(Oid::new(class, serial))
            }
            6 => {
                let n = r.varint("set length")? as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(r)?);
                }
                Value::Set(items)
            }
            _ => {
                return Err(StorageError::Corrupt {
                    context: "value tag",
                })
            }
        })
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "nil"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{}", if *v { "t" } else { "nil" }),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Ref(o) => write!(f, "{o}"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let out = Value::decode(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn encode_decode_all_variants() {
        let oid = Oid::new(ClassId(4), 99);
        for v in [
            Value::Null,
            Value::Int(-5),
            Value::Float(2.75),
            Value::Bool(true),
            Value::Str("chapter".into()),
            Value::Ref(oid),
            Value::Set(vec![
                Value::Ref(oid),
                Value::Int(1),
                Value::Set(vec![Value::Null]),
            ]),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn refs_are_collected_recursively() {
        let a = Oid::new(ClassId(1), 1);
        let b = Oid::new(ClassId(1), 2);
        let v = Value::Set(vec![
            Value::Ref(a),
            Value::Set(vec![Value::Ref(b)]),
            Value::Int(0),
        ]);
        assert_eq!(v.refs(), vec![a, b]);
        assert!(v.references(a));
        assert!(!v.references(Oid::new(ClassId(1), 3)));
    }

    #[test]
    fn remove_ref_nullifies_and_prunes() {
        let a = Oid::new(ClassId(1), 1);
        let b = Oid::new(ClassId(1), 2);
        let mut direct = Value::Ref(a);
        assert_eq!(direct.remove_ref(a), 1);
        assert_eq!(direct, Value::Null);

        let mut set = Value::Set(vec![Value::Ref(a), Value::Ref(b)]);
        assert_eq!(set.remove_ref(a), 1);
        assert_eq!(set, Value::Set(vec![Value::Ref(b)]));
        assert_eq!(set.remove_ref(a), 0);
    }

    #[test]
    fn add_ref_deduplicates() {
        let a = Oid::new(ClassId(1), 1);
        let mut v = Value::Null;
        assert!(v.add_ref(a, true));
        assert!(!v.add_ref(a, true), "duplicate insert is a no-op");
        assert_eq!(v, Value::Set(vec![Value::Ref(a)]));

        let mut single = Value::Null;
        assert!(single.add_ref(a, false));
        assert_eq!(single, Value::Ref(a));
        assert!(!single.add_ref(a, false));
    }

    #[test]
    fn display_is_lisp_flavoured() {
        let a = Oid::new(ClassId(2), 7);
        assert_eq!(Value::Null.to_string(), "nil");
        assert_eq!(
            Value::Set(vec![Value::Ref(a), Value::Int(3)]).to_string(),
            "{c2.i7 3}"
        );
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let buf = [200u8];
        let mut r = Reader::new(&buf);
        assert!(Value::decode(&mut r).is_err());
    }
}
