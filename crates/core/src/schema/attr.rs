//! Attribute definitions and domains.
//!
//! Paper §2.3 extends the ORION attribute specification with three keywords:
//!
//! ```text
//! (AttributeName [:domain DomainSpec]
//!                [:composite TrueOrNil]
//!                [:exclusive TrueOrNil]
//!                [:dependent TrueOrNil] ...)
//! ```
//!
//! "The default value for both the exclusive and dependent keywords is True
//! (to be compatible with the semantics of composite objects currently
//! supported in ORION)" — see [`CompositeSpec::default`].

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::{StorageError, StorageResult};

use crate::error::{DbError, DbResult};
use crate::oid::ClassId;
use crate::value::Value;

/// The domain (type) of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Primitive class `integer`.
    Integer,
    /// Primitive class `float`.
    Float,
    /// Primitive class `boolean`.
    Boolean,
    /// Primitive class `string`.
    String,
    /// Instances of a non-primitive class (or any of its subclasses).
    Class(ClassId),
    /// `(set-of …)` of the element domain.
    SetOf(Box<Domain>),
    /// Untyped (ORION allowed attributes without a domain).
    Any,
}

impl Domain {
    /// The referenced class, if the domain is `Class(c)` or `SetOf(Class(c))`.
    /// Composite attributes must have such a domain.
    pub fn referenced_class(&self) -> Option<ClassId> {
        match self {
            Domain::Class(c) => Some(*c),
            Domain::SetOf(inner) => inner.referenced_class(),
            _ => None,
        }
    }

    /// True for `(set-of …)` domains.
    pub fn is_set(&self) -> bool {
        matches!(self, Domain::SetOf(_))
    }

    /// Human-readable form used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Domain::Integer => "integer".into(),
            Domain::Float => "float".into(),
            Domain::Boolean => "boolean".into(),
            Domain::String => "string".into(),
            Domain::Class(c) => format!("instance of {c}"),
            Domain::SetOf(inner) => format!("(set-of {})", inner.describe()),
            Domain::Any => "any".into(),
        }
    }

    /// Serializes the domain (used by database dump/restore).
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Domain::Integer => codec::put_u8(buf, 0),
            Domain::Float => codec::put_u8(buf, 1),
            Domain::Boolean => codec::put_u8(buf, 2),
            Domain::String => codec::put_u8(buf, 3),
            Domain::Class(c) => {
                codec::put_u8(buf, 4);
                codec::put_u32(buf, c.0);
            }
            Domain::SetOf(inner) => {
                codec::put_u8(buf, 5);
                inner.encode(buf);
            }
            Domain::Any => codec::put_u8(buf, 6),
        }
    }

    /// Deserializes a domain.
    pub fn decode(r: &mut Reader<'_>) -> StorageResult<Domain> {
        Ok(match r.u8("domain tag")? {
            0 => Domain::Integer,
            1 => Domain::Float,
            2 => Domain::Boolean,
            3 => Domain::String,
            4 => Domain::Class(ClassId(r.u32("domain class")?)),
            5 => Domain::SetOf(Box::new(Domain::decode(r)?)),
            6 => Domain::Any,
            _ => {
                return Err(StorageError::Corrupt {
                    context: "domain tag",
                })
            }
        })
    }

    /// Checks a value against the domain. Class-membership (is the referenced
    /// object's class a subclass of the domain class?) is checked by the
    /// database, which knows the lattice; here we check shape only.
    pub fn admits_shape(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (Domain::Any, _) => true,
            (Domain::Integer, Value::Int(_)) => true,
            (Domain::Float, Value::Float(_) | Value::Int(_)) => true,
            (Domain::Boolean, Value::Bool(_)) => true,
            (Domain::String, Value::Str(_)) => true,
            (Domain::Class(_), Value::Ref(_)) => true,
            (Domain::SetOf(inner), Value::Set(items)) => {
                items.iter().all(|v| inner.admits_shape(v))
            }
            _ => false,
        }
    }
}

/// The composite keywords of a composite attribute (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompositeSpec {
    /// `:exclusive` — the component may be part of only this parent.
    pub exclusive: bool,
    /// `:dependent` — the component's existence depends on the parent.
    pub dependent: bool,
}

impl Default for CompositeSpec {
    /// Paper §2.3: both keywords default to True, matching \[KIM87b\]'s
    /// dependent-exclusive-only model.
    fn default() -> Self {
        CompositeSpec {
            exclusive: true,
            dependent: true,
        }
    }
}

/// One attribute of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute name, unique within the class (including inherited names).
    pub name: String,
    /// The attribute's domain.
    pub domain: Domain,
    /// `Some` when the attribute is a composite attribute; `None` for weak
    /// references and non-reference attributes.
    pub composite: Option<CompositeSpec>,
    /// `:init` — initial value for new instances.
    pub init: Value,
    /// The class that introduced this attribute (`None` = defined locally on
    /// the owning class). Used by schema evolution when IS-A edges change.
    pub inherited_from: Option<ClassId>,
}

impl AttributeDef {
    /// A plain (weak or non-reference) attribute.
    pub fn plain(name: impl Into<String>, domain: Domain) -> Self {
        AttributeDef {
            name: name.into(),
            domain,
            composite: None,
            init: Value::Null,
            inherited_from: None,
        }
    }

    /// A composite attribute with the given spec.
    pub fn composite(name: impl Into<String>, domain: Domain, spec: CompositeSpec) -> Self {
        AttributeDef {
            name: name.into(),
            domain,
            composite: Some(spec),
            init: Value::Null,
            inherited_from: None,
        }
    }

    /// Validates internal consistency: composite attributes must reference a
    /// class (directly or through `set-of`).
    pub fn validate(&self) -> DbResult<()> {
        if self.composite.is_some() && self.domain.referenced_class().is_none() {
            return Err(DbError::SchemaChangeRejected {
                reason: format!(
                    "composite attribute {:?} must have a class (or set-of class) domain, got {}",
                    self.name,
                    self.domain.describe()
                ),
            });
        }
        Ok(())
    }

    /// Serializes the definition (used by database dump/restore).
    pub fn encode(&self, buf: &mut impl BufMut) {
        codec::put_string(buf, &self.name);
        self.domain.encode(buf);
        match self.composite {
            None => codec::put_u8(buf, 0),
            Some(spec) => {
                codec::put_u8(
                    buf,
                    1 | (u8::from(spec.exclusive) << 1) | (u8::from(spec.dependent) << 2),
                );
            }
        }
        self.init.encode(buf);
        match self.inherited_from {
            None => codec::put_u8(buf, 0),
            Some(c) => {
                codec::put_u8(buf, 1);
                codec::put_u32(buf, c.0);
            }
        }
    }

    /// Deserializes a definition.
    pub fn decode(r: &mut Reader<'_>) -> StorageResult<AttributeDef> {
        let name = r.string("attr name")?;
        let domain = Domain::decode(r)?;
        let cflags = r.u8("attr composite flags")?;
        let composite = if cflags & 1 != 0 {
            Some(CompositeSpec {
                exclusive: cflags & 2 != 0,
                dependent: cflags & 4 != 0,
            })
        } else {
            None
        };
        let init = Value::decode(r)?;
        let inherited_from = if r.u8("attr inherited flag")? != 0 {
            Some(ClassId(r.u32("attr inherited class")?))
        } else {
            None
        };
        Ok(AttributeDef {
            name,
            domain,
            composite,
            init,
            inherited_from,
        })
    }

    /// True if the attribute can hold object references at all.
    pub fn is_reference(&self) -> bool {
        self.domain.referenced_class().is_some() || matches!(self.domain, Domain::Any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    #[test]
    fn default_spec_matches_kim87b() {
        let spec = CompositeSpec::default();
        assert!(spec.exclusive && spec.dependent);
    }

    #[test]
    fn referenced_class_sees_through_set_of() {
        let d = Domain::SetOf(Box::new(Domain::Class(ClassId(7))));
        assert_eq!(d.referenced_class(), Some(ClassId(7)));
        assert!(d.is_set());
        assert_eq!(Domain::Integer.referenced_class(), None);
    }

    #[test]
    fn admits_shape_checks_structure() {
        let d = Domain::SetOf(Box::new(Domain::Class(ClassId(1))));
        let o = Oid::new(ClassId(1), 1);
        assert!(d.admits_shape(&Value::Set(vec![Value::Ref(o)])));
        assert!(d.admits_shape(&Value::Null));
        assert!(!d.admits_shape(&Value::Ref(o)), "bare ref is not a set");
        assert!(!d.admits_shape(&Value::Set(vec![Value::Int(1)])));
        assert!(
            Domain::Float.admits_shape(&Value::Int(3)),
            "int widens to float"
        );
    }

    #[test]
    fn composite_attribute_requires_class_domain() {
        let bad = AttributeDef::composite("Body", Domain::Integer, CompositeSpec::default());
        assert!(bad.validate().is_err());
        let good =
            AttributeDef::composite("Body", Domain::Class(ClassId(0)), CompositeSpec::default());
        assert!(good.validate().is_ok());
    }

    #[test]
    fn plain_attribute_is_not_composite() {
        let a = AttributeDef::plain("Color", Domain::String);
        assert!(a.composite.is_none());
        assert!(!a.is_reference());
        let w = AttributeDef::plain("Owner", Domain::Class(ClassId(2)));
        assert!(w.is_reference(), "weak reference attribute");
    }

    #[test]
    fn describe_is_readable() {
        let d = Domain::SetOf(Box::new(Domain::Class(ClassId(3))));
        assert_eq!(d.describe(), "(set-of instance of c3)");
    }
}
