//! Class model: attributes, classes, the IS-A lattice, and the catalog.
//!
//! The composite-object semantics of the paper are defined over ORION's
//! class model \[BANE87a\]: classes with typed attributes, multiple
//! inheritance over a class lattice, and `(set-of …)` domains. Composite
//! attribute specifications (`:composite`, `:exclusive`, `:dependent`,
//! §2.3) live on [`attr::AttributeDef`].

pub mod attr;
pub mod catalog;
pub mod class;
pub mod lattice;

pub use attr::{AttributeDef, CompositeSpec, Domain};
pub use catalog::Catalog;
pub use class::{Class, ClassBuilder};
