//! Classes and the class builder.
//!
//! A class owns *local* attribute definitions; the catalog flattens local +
//! inherited definitions into the **effective attribute list** that instance
//! layouts follow. Name conflicts among superclasses resolve in superclass
//! order (first wins), the ORION rule from \[BANE87a\].

use corion_storage::SegmentId;

use crate::oid::ClassId;
use crate::schema::attr::{AttributeDef, CompositeSpec, Domain};
use crate::value::Value;

/// A class in the catalog.
#[derive(Debug, Clone)]
pub struct Class {
    /// The class's id.
    pub id: ClassId,
    /// The class's unique name.
    pub name: String,
    /// Direct superclasses, in declaration order (order matters for
    /// attribute-conflict resolution).
    pub superclasses: Vec<ClassId>,
    /// Direct subclasses (maintained by the lattice).
    pub subclasses: Vec<ClassId>,
    /// Locally defined attributes.
    pub local_attrs: Vec<AttributeDef>,
    /// Effective attributes: inherited then local, flattened by the catalog.
    pub attrs: Vec<AttributeDef>,
    /// Whether instances are versionable (paper §5.1).
    pub versionable: bool,
    /// The storage segment instances are placed in. Classes sharing a
    /// segment can be co-clustered (§2.3).
    pub segment: SegmentId,
    /// Change count for deferred schema evolution (§4.3): incremented each
    /// time the type of an attribute *whose domain is this class* changes.
    pub change_count: u64,
}

impl Class {
    /// Position of the effective attribute `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The effective attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&AttributeDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// True if the class has at least one composite attribute —
    /// the zero-argument form of the `compositep` predicate (§3.2).
    pub fn compositep(&self) -> bool {
        self.attrs.iter().any(|a| a.composite.is_some())
    }

    /// Names of every composite attribute.
    pub fn composite_attrs(&self) -> impl Iterator<Item = &AttributeDef> {
        self.attrs.iter().filter(|a| a.composite.is_some())
    }
}

/// Builder for [`crate::Database::define_class`], mirroring the `make-class`
/// message of §2.3.
#[derive(Debug, Clone)]
pub struct ClassBuilder {
    pub(crate) name: String,
    pub(crate) superclasses: Vec<ClassId>,
    pub(crate) attrs: Vec<AttributeDef>,
    pub(crate) versionable: bool,
    pub(crate) share_segment_with: Option<ClassId>,
}

impl ClassBuilder {
    /// Starts a class definition: `(make-class 'Name ...)`.
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            name: name.into(),
            superclasses: Vec::new(),
            attrs: Vec::new(),
            versionable: false,
            share_segment_with: None,
        }
    }

    /// Adds a direct superclass (`:superclasses`).
    pub fn superclass(mut self, c: ClassId) -> Self {
        self.superclasses.push(c);
        self
    }

    /// Adds a plain attribute (`:domain` only).
    pub fn attr(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.attrs.push(AttributeDef::plain(name, domain));
        self
    }

    /// Adds a composite attribute (`:composite true` with `:exclusive` /
    /// `:dependent`).
    pub fn attr_composite(
        mut self,
        name: impl Into<String>,
        domain: Domain,
        spec: CompositeSpec,
    ) -> Self {
        self.attrs.push(AttributeDef::composite(name, domain, spec));
        self
    }

    /// Adds a fully specified attribute.
    pub fn attr_def(mut self, def: AttributeDef) -> Self {
        self.attrs.push(def);
        self
    }

    /// Sets an `:init` value on the most recently added attribute.
    ///
    /// # Panics
    /// Panics if no attribute has been added yet.
    pub fn init(mut self, value: Value) -> Self {
        self.attrs
            .last_mut()
            .expect("init requires a preceding attr")
            .init = value;
        self
    }

    /// Marks instances versionable (§5.1).
    pub fn versionable(mut self) -> Self {
        self.versionable = true;
        self
    }

    /// Places instances in the same storage segment as `other`, enabling
    /// parent clustering between the two classes (§2.3).
    pub fn same_segment_as(mut self, other: ClassId) -> Self {
        self.share_segment_with = Some(other);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_class() -> Class {
        Class {
            id: ClassId(0),
            name: "Vehicle".into(),
            superclasses: vec![],
            subclasses: vec![],
            local_attrs: vec![],
            attrs: vec![
                AttributeDef::plain("Manufacturer", Domain::String),
                AttributeDef::composite(
                    "Body",
                    Domain::Class(ClassId(1)),
                    CompositeSpec {
                        exclusive: true,
                        dependent: false,
                    },
                ),
            ],
            versionable: false,
            segment: SegmentId(0),
            change_count: 0,
        }
    }

    #[test]
    fn attr_lookup_by_name() {
        let c = sample_class();
        assert_eq!(c.attr_index("Body"), Some(1));
        assert!(c.attr("Manufacturer").is_some());
        assert!(c.attr("Missing").is_none());
    }

    #[test]
    fn compositep_zero_arg_form() {
        let c = sample_class();
        assert!(c.compositep());
        assert_eq!(c.composite_attrs().count(), 1);
    }

    #[test]
    fn builder_accumulates_in_order() {
        let b = ClassBuilder::new("Document")
            .attr("Title", Domain::String)
            .init(Value::Str("untitled".into()))
            .attr_composite(
                "Sections",
                Domain::SetOf(Box::new(Domain::Class(ClassId(5)))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            )
            .versionable();
        assert_eq!(b.attrs.len(), 2);
        assert_eq!(b.attrs[0].init, Value::Str("untitled".into()));
        assert!(b.versionable);
        assert_eq!(
            b.attrs[1].composite,
            Some(CompositeSpec {
                exclusive: false,
                dependent: true
            })
        );
    }

    #[test]
    #[should_panic(expected = "preceding attr")]
    fn init_without_attr_panics() {
        let _ = ClassBuilder::new("X").init(Value::Int(1));
    }
}
