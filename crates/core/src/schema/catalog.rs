//! The class catalog: class storage, name lookup, effective-attribute
//! flattening, and IS-A edge maintenance.
//!
//! Attribute inheritance follows the ORION rule \[BANE87a\]: the effective
//! attribute list of a class is the union of inherited and local attributes;
//! when two superclasses both provide an attribute of the same name, the
//! earlier superclass in the `:superclasses` list wins, unless the user has
//! issued the "change inheritance of an attribute" schema change (§4.1 (2)),
//! recorded here as a *preferred provider*.

use std::collections::HashMap;

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::{SegmentId, StorageError, StorageResult};

use crate::error::{DbError, DbResult};
use crate::oid::ClassId;
use crate::schema::attr::AttributeDef;
use crate::schema::class::{Class, ClassBuilder};
use crate::schema::lattice;

/// The schema catalog.
pub struct Catalog {
    classes: Vec<Option<Class>>,
    by_name: HashMap<String, ClassId>,
    /// `(class, attr-name) -> superclass that should provide it` — set by the
    /// "change inheritance" schema change.
    preferred_provider: HashMap<(ClassId, String), ClassId>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog {
            classes: Vec::new(),
            by_name: HashMap::new(),
            preferred_provider: HashMap::new(),
        }
    }

    /// Defines a new class from a builder; `segment` is where its instances
    /// will be stored (the database picks or shares segments).
    pub fn define(&mut self, builder: ClassBuilder, segment: SegmentId) -> DbResult<ClassId> {
        if self.by_name.contains_key(&builder.name) {
            return Err(DbError::DuplicateClass(builder.name));
        }
        let id = ClassId(self.classes.len() as u32);
        for attr in &builder.attrs {
            attr.validate()?;
        }
        for sup in &builder.superclasses {
            self.class(*sup)?;
        }
        // Local duplicate names.
        for (i, a) in builder.attrs.iter().enumerate() {
            if builder.attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(DbError::DuplicateAttribute {
                    class: id,
                    attr: a.name.clone(),
                });
            }
        }
        let class = Class {
            id,
            name: builder.name.clone(),
            superclasses: builder.superclasses.clone(),
            subclasses: Vec::new(),
            local_attrs: builder.attrs,
            attrs: Vec::new(),
            versionable: builder.versionable,
            segment,
            change_count: 0,
        };
        self.by_name.insert(builder.name, id);
        self.classes.push(Some(class));
        for sup in builder.superclasses {
            self.class_mut(sup)?.subclasses.push(id);
        }
        self.reflatten_from(id);
        Ok(id)
    }

    /// Looks a class up by id.
    pub fn class(&self, id: ClassId) -> DbResult<&Class> {
        self.classes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(DbError::NoSuchClass(id))
    }

    /// Mutable class lookup.
    pub fn class_mut(&mut self, id: ClassId) -> DbResult<&mut Class> {
        self.classes
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(DbError::NoSuchClass(id))
    }

    /// Looks a class up by name.
    pub fn by_name(&self, name: &str) -> DbResult<ClassId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchClassName(name.into()))
    }

    /// Every live class id.
    pub fn all_classes(&self) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter_map(|c| c.as_ref().map(|c| c.id))
            .collect()
    }

    /// Classes whose effective attribute list contains a composite attribute
    /// with domain (referencing) `domain_class` — the referencing side of
    /// schema-evolution operations.
    pub fn referencing_composites(&self, domain_class: ClassId) -> Vec<(ClassId, String)> {
        let mut out = Vec::new();
        for class in self.classes.iter().flatten() {
            for a in &class.attrs {
                if a.composite.is_some() && a.domain.referenced_class() == Some(domain_class) {
                    out.push((class.id, a.name.clone()));
                }
            }
        }
        out
    }

    /// Adds a superclass edge, rejecting IS-A cycles, and reflattens.
    pub fn add_superclass(&mut self, class: ClassId, superclass: ClassId) -> DbResult<()> {
        self.class(superclass)?;
        if lattice::is_subclass_of(self, superclass, class) {
            return Err(DbError::LatticeCycle { class, superclass });
        }
        let c = self.class_mut(class)?;
        if !c.superclasses.contains(&superclass) {
            c.superclasses.push(superclass);
            self.class_mut(superclass)?.subclasses.push(class);
        }
        self.reflatten_from(class);
        Ok(())
    }

    /// Removes a superclass edge (§4.1 (3)) and reflattens. Attributes the
    /// class loses are reported so the database can cascade per the Deletion
    /// Rule.
    pub fn remove_superclass(
        &mut self,
        class: ClassId,
        superclass: ClassId,
    ) -> DbResult<Vec<AttributeDef>> {
        let before = self.class(class)?.attrs.clone();
        let c = self.class_mut(class)?;
        if !c.superclasses.contains(&superclass) {
            return Err(DbError::SchemaChangeRejected {
                reason: format!("{superclass} is not a direct superclass of {class}"),
            });
        }
        c.superclasses.retain(|&s| s != superclass);
        self.class_mut(superclass)?
            .subclasses
            .retain(|&s| s != class);
        self.reflatten_from(class);
        let after = self.class(class)?.attrs.clone();
        Ok(before
            .into_iter()
            .filter(|a| !after.iter().any(|b| b.name == a.name))
            .collect())
    }

    /// Removes a class from the catalog (§4.1 (4)): its subclasses become
    /// immediate subclasses of its superclasses. Returns the dropped class.
    pub fn drop_class(&mut self, class: ClassId) -> DbResult<Class> {
        let dropped = self.class(class)?.clone();
        for &sup in &dropped.superclasses {
            self.class_mut(sup)?.subclasses.retain(|&s| s != class);
        }
        for &sub in &dropped.subclasses {
            let subclass = self.class_mut(sub)?;
            subclass.superclasses.retain(|&s| s != class);
            for &sup in &dropped.superclasses {
                if !subclass.superclasses.contains(&sup) {
                    subclass.superclasses.push(sup);
                }
            }
        }
        for &sup in &dropped.superclasses {
            for &sub in &dropped.subclasses {
                let s = self.class_mut(sup)?;
                if !s.subclasses.contains(&sub) {
                    s.subclasses.push(sub);
                }
            }
        }
        self.by_name.remove(&dropped.name);
        self.classes[class.0 as usize] = None;
        for &sub in &dropped.subclasses {
            self.reflatten_from(sub);
        }
        Ok(dropped)
    }

    /// Records that `class` should inherit attribute `attr` from `provider`
    /// (§4.1 (2): "change the inheritance (parent) of an attribute").
    pub fn set_preferred_provider(
        &mut self,
        class: ClassId,
        attr: &str,
        provider: ClassId,
    ) -> DbResult<()> {
        if !lattice::is_subclass_of(self, class, provider) || class == provider {
            return Err(DbError::SchemaChangeRejected {
                reason: format!("{provider} is not a proper superclass of {class}"),
            });
        }
        if self.class(provider)?.attr(attr).is_none() {
            return Err(DbError::NoSuchAttribute {
                class: provider,
                attr: attr.into(),
            });
        }
        self.preferred_provider
            .insert((class, attr.to_string()), provider);
        self.reflatten_from(class);
        Ok(())
    }

    /// Serializes the catalog (used by database dump/restore).
    pub fn encode(&self, buf: &mut impl BufMut) {
        codec::put_varint(buf, self.classes.len() as u64);
        for slot in &self.classes {
            match slot {
                None => codec::put_u8(buf, 0),
                Some(c) => {
                    codec::put_u8(buf, 1);
                    codec::put_u32(buf, c.id.0);
                    codec::put_string(buf, &c.name);
                    codec::put_varint(buf, c.superclasses.len() as u64);
                    for s in &c.superclasses {
                        codec::put_u32(buf, s.0);
                    }
                    codec::put_varint(buf, c.subclasses.len() as u64);
                    for s in &c.subclasses {
                        codec::put_u32(buf, s.0);
                    }
                    codec::put_varint(buf, c.local_attrs.len() as u64);
                    for a in &c.local_attrs {
                        a.encode(buf);
                    }
                    codec::put_u8(buf, u8::from(c.versionable));
                    codec::put_u32(buf, c.segment.0);
                    codec::put_u64(buf, c.change_count);
                }
            }
        }
        let mut prefs: Vec<(&(ClassId, String), &ClassId)> =
            self.preferred_provider.iter().collect();
        prefs.sort();
        codec::put_varint(buf, prefs.len() as u64);
        for ((class, attr), provider) in prefs {
            codec::put_u32(buf, class.0);
            codec::put_string(buf, attr);
            codec::put_u32(buf, provider.0);
        }
    }

    /// Deserializes a catalog and recomputes effective attribute lists.
    pub fn decode(r: &mut Reader<'_>) -> StorageResult<Catalog> {
        let n = r.varint("catalog class count")? as usize;
        let mut classes: Vec<Option<Class>> = Vec::with_capacity(n.min(65_536));
        let mut by_name = HashMap::new();
        for _ in 0..n {
            if r.u8("catalog slot tag")? == 0 {
                classes.push(None);
                continue;
            }
            let id = ClassId(r.u32("class id")?);
            let name = r.string("class name")?;
            let n_sup = r.varint("superclass count")? as usize;
            let mut superclasses = Vec::with_capacity(n_sup.min(1024));
            for _ in 0..n_sup {
                superclasses.push(ClassId(r.u32("superclass id")?));
            }
            let n_sub = r.varint("subclass count")? as usize;
            let mut subclasses = Vec::with_capacity(n_sub.min(1024));
            for _ in 0..n_sub {
                subclasses.push(ClassId(r.u32("subclass id")?));
            }
            let n_attrs = r.varint("local attr count")? as usize;
            let mut local_attrs = Vec::with_capacity(n_attrs.min(1024));
            for _ in 0..n_attrs {
                local_attrs.push(crate::schema::attr::AttributeDef::decode(r)?);
            }
            let versionable = r.u8("versionable flag")? != 0;
            let segment = SegmentId(r.u32("class segment")?);
            let change_count = r.u64("class change count")?;
            by_name.insert(name.clone(), id);
            classes.push(Some(Class {
                id,
                name,
                superclasses,
                subclasses,
                local_attrs,
                attrs: Vec::new(),
                versionable,
                segment,
                change_count,
            }));
        }
        let n_prefs = r.varint("preferred provider count")? as usize;
        let mut preferred_provider = HashMap::new();
        for _ in 0..n_prefs {
            let class = ClassId(r.u32("pref class")?);
            let attr = r.string("pref attr")?;
            let provider = ClassId(r.u32("pref provider")?);
            preferred_provider.insert((class, attr), provider);
        }
        let mut cat = Catalog {
            classes,
            by_name,
            preferred_provider,
        };
        // Recompute effective attribute lists top-down.
        let roots: Vec<ClassId> = cat
            .classes
            .iter()
            .flatten()
            .filter(|c| c.superclasses.is_empty())
            .map(|c| c.id)
            .collect();
        for root in roots {
            cat.reflatten_from(root);
        }
        // Sanity: every live class now has effective attrs populated.
        let ok = cat
            .classes
            .iter()
            .flatten()
            .all(|c| c.attrs.len() >= c.local_attrs.len());
        if !ok {
            return Err(StorageError::Corrupt {
                context: "catalog lattice",
            });
        }
        Ok(cat)
    }

    /// Recomputes effective attributes for `class` and all its descendants.
    pub fn reflatten_from(&mut self, class: ClassId) {
        for c in lattice::self_and_descendants_topo(self, class) {
            let flattened = self.flatten(c);
            if let Ok(cl) = self.class_mut(c) {
                cl.attrs = flattened;
            }
        }
    }

    fn flatten(&self, class: ClassId) -> Vec<AttributeDef> {
        let Ok(c) = self.class(class) else {
            return Vec::new();
        };
        let mut out: Vec<AttributeDef> = Vec::new();
        for &sup in &c.superclasses {
            let Ok(s) = self.class(sup) else { continue };
            for a in &s.attrs {
                if let Some(existing) = out.iter_mut().find(|b| b.name == a.name) {
                    // Conflict between superclasses: first wins unless a
                    // preferred provider says otherwise.
                    if let Some(&pref) = self.preferred_provider.get(&(class, a.name.clone())) {
                        if pref == sup || a.inherited_from == Some(pref) {
                            *existing = AttributeDef {
                                inherited_from: Some(a.inherited_from.unwrap_or(sup)),
                                ..a.clone()
                            };
                        }
                    }
                } else {
                    out.push(AttributeDef {
                        inherited_from: Some(a.inherited_from.unwrap_or(sup)),
                        ..a.clone()
                    });
                }
            }
        }
        for a in &c.local_attrs {
            if let Some(existing) = out.iter_mut().find(|b| b.name == a.name) {
                // Local definition overrides the inherited one, in place.
                *existing = a.clone();
            } else {
                out.push(a.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::{CompositeSpec, Domain};

    fn seg() -> SegmentId {
        SegmentId(0)
    }

    #[test]
    fn define_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        assert_eq!(cat.by_name("A").unwrap(), a);
        assert_eq!(cat.class(a).unwrap().attrs.len(), 1);
        assert!(cat.by_name("B").is_err());
        assert!(matches!(
            cat.define(ClassBuilder::new("A"), seg()),
            Err(DbError::DuplicateClass(_))
        ));
    }

    #[test]
    fn attributes_are_inherited_in_order() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(
                ClassBuilder::new("B")
                    .superclass(a)
                    .attr("y", Domain::String),
                seg(),
            )
            .unwrap();
        let bc = cat.class(b).unwrap();
        assert_eq!(bc.attrs.len(), 2);
        assert_eq!(bc.attrs[0].name, "x");
        assert_eq!(bc.attrs[0].inherited_from, Some(a));
        assert_eq!(bc.attrs[1].name, "y");
        assert_eq!(bc.attrs[1].inherited_from, None);
    }

    #[test]
    fn conflict_resolution_first_superclass_wins() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(ClassBuilder::new("B").attr("x", Domain::String), seg())
            .unwrap();
        let c = cat
            .define(ClassBuilder::new("C").superclass(a).superclass(b), seg())
            .unwrap();
        let cc = cat.class(c).unwrap();
        assert_eq!(cc.attrs.len(), 1);
        assert_eq!(cc.attrs[0].domain, Domain::Integer, "A's x wins");
        assert_eq!(cc.attrs[0].inherited_from, Some(a));
    }

    #[test]
    fn preferred_provider_changes_inheritance() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(ClassBuilder::new("B").attr("x", Domain::String), seg())
            .unwrap();
        let c = cat
            .define(ClassBuilder::new("C").superclass(a).superclass(b), seg())
            .unwrap();
        cat.set_preferred_provider(c, "x", b).unwrap();
        assert_eq!(
            cat.class(c).unwrap().attrs[0].domain,
            Domain::String,
            "B's x now wins"
        );
        assert!(
            cat.set_preferred_provider(c, "x", c).is_err(),
            "provider must be proper super"
        );
    }

    #[test]
    fn local_attribute_overrides_inherited() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(
                ClassBuilder::new("B")
                    .superclass(a)
                    .attr("x", Domain::Float),
                seg(),
            )
            .unwrap();
        let bc = cat.class(b).unwrap();
        assert_eq!(bc.attrs.len(), 1);
        assert_eq!(bc.attrs[0].domain, Domain::Float);
    }

    #[test]
    fn add_superclass_rejects_cycles() {
        let mut cat = Catalog::new();
        let a = cat.define(ClassBuilder::new("A"), seg()).unwrap();
        let b = cat
            .define(ClassBuilder::new("B").superclass(a), seg())
            .unwrap();
        assert!(matches!(
            cat.add_superclass(a, b),
            Err(DbError::LatticeCycle { .. })
        ));
        assert!(matches!(
            cat.add_superclass(a, a),
            Err(DbError::LatticeCycle { .. })
        ));
    }

    #[test]
    fn remove_superclass_reports_lost_attributes() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(
                ClassBuilder::new("B")
                    .superclass(a)
                    .attr("y", Domain::String),
                seg(),
            )
            .unwrap();
        let lost = cat.remove_superclass(b, a).unwrap();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].name, "x");
        assert_eq!(cat.class(b).unwrap().attrs.len(), 1);
        assert!(
            cat.remove_superclass(b, a).is_err(),
            "edge no longer present"
        );
    }

    #[test]
    fn drop_class_reattaches_subclasses() {
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A").attr("x", Domain::Integer), seg())
            .unwrap();
        let b = cat
            .define(ClassBuilder::new("B").superclass(a), seg())
            .unwrap();
        let c = cat
            .define(ClassBuilder::new("C").superclass(b), seg())
            .unwrap();
        cat.drop_class(b).unwrap();
        assert!(cat.class(b).is_err());
        assert!(cat.by_name("B").is_err());
        let cc = cat.class(c).unwrap();
        assert_eq!(cc.superclasses, vec![a]);
        assert_eq!(cc.attrs.len(), 1, "still inherits x via A");
        assert!(cat.class(a).unwrap().subclasses.contains(&c));
    }

    #[test]
    fn referencing_composites_finds_referencing_attrs() {
        let mut cat = Catalog::new();
        let part = cat.define(ClassBuilder::new("Part"), seg()).unwrap();
        let asm = cat
            .define(
                ClassBuilder::new("Assembly").attr_composite(
                    "parts",
                    Domain::SetOf(Box::new(Domain::Class(part))),
                    CompositeSpec::default(),
                ),
                seg(),
            )
            .unwrap();
        let refs = cat.referencing_composites(part);
        assert_eq!(refs, vec![(asm, "parts".to_string())]);
        assert!(cat.referencing_composites(asm).is_empty());
    }

    #[test]
    fn composite_attribute_with_bad_domain_rejected_at_define() {
        let mut cat = Catalog::new();
        let res = cat.define(
            ClassBuilder::new("Bad").attr_composite("x", Domain::Integer, CompositeSpec::default()),
            seg(),
        );
        assert!(res.is_err());
    }
}
