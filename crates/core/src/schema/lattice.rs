//! IS-A lattice traversals.
//!
//! ORION organises classes in a rooted DAG (multiple inheritance). Schema
//! changes of §4 manipulate this lattice: adding/removing superclass edges,
//! dropping classes (whose "subclasses become immediate subclasses of the
//! superclasses"). These helpers are pure graph traversals over the catalog.

use std::collections::HashSet;

use crate::oid::ClassId;
use crate::schema::catalog::Catalog;

/// True if `sub` equals `sup` or is a (transitive) subclass of it.
pub fn is_subclass_of(catalog: &Catalog, sub: ClassId, sup: ClassId) -> bool {
    if sub == sup {
        return true;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![sub];
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        if let Ok(class) = catalog.class(c) {
            for &s in &class.superclasses {
                if s == sup {
                    return true;
                }
                stack.push(s);
            }
        }
    }
    false
}

/// All (transitive) superclasses of `class`, excluding `class` itself.
pub fn ancestors(catalog: &Catalog, class: ClassId) -> Vec<ClassId> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let mut stack: Vec<ClassId> = catalog
        .class(class)
        .map(|c| c.superclasses.clone())
        .unwrap_or_default();
    while let Some(c) = stack.pop() {
        if seen.insert(c) {
            out.push(c);
            if let Ok(cl) = catalog.class(c) {
                stack.extend(cl.superclasses.iter().copied());
            }
        }
    }
    out
}

/// All (transitive) subclasses of `class`, excluding `class` itself.
pub fn descendants(catalog: &Catalog, class: ClassId) -> Vec<ClassId> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let mut stack: Vec<ClassId> = catalog
        .class(class)
        .map(|c| c.subclasses.clone())
        .unwrap_or_default();
    while let Some(c) = stack.pop() {
        if seen.insert(c) {
            out.push(c);
            if let Ok(cl) = catalog.class(c) {
                stack.extend(cl.subclasses.iter().copied());
            }
        }
    }
    out
}

/// `class` followed by its descendants in a parents-before-children order,
/// suitable for recomputing effective attributes top-down.
pub fn self_and_descendants_topo(catalog: &Catalog, class: ClassId) -> Vec<ClassId> {
    let mut affected: HashSet<ClassId> = descendants(catalog, class).into_iter().collect();
    affected.insert(class);
    // Kahn's algorithm restricted to the affected set.
    let mut in_deg: std::collections::HashMap<ClassId, usize> = affected
        .iter()
        .map(|&c| {
            let deg = catalog
                .class(c)
                .map(|cl| {
                    cl.superclasses
                        .iter()
                        .filter(|s| affected.contains(s))
                        .count()
                })
                .unwrap_or(0);
            (c, deg)
        })
        .collect();
    let mut ready: Vec<ClassId> = in_deg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&c, _)| c)
        .collect();
    ready.sort(); // determinism
    let mut out = Vec::with_capacity(affected.len());
    while let Some(c) = ready.pop() {
        out.push(c);
        if let Ok(cl) = catalog.class(c) {
            let mut newly = Vec::new();
            for &sub in &cl.subclasses {
                if let Some(d) = in_deg.get_mut(&sub) {
                    *d -= 1;
                    if *d == 0 {
                        newly.push(sub);
                    }
                }
            }
            newly.sort();
            ready.extend(newly);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::class::ClassBuilder;

    fn diamond() -> (Catalog, ClassId, ClassId, ClassId, ClassId) {
        // a <- b, a <- c, (b,c) <- d
        let mut cat = Catalog::new();
        let a = cat
            .define(ClassBuilder::new("A"), corion_storage::SegmentId(0))
            .unwrap();
        let b = cat
            .define(
                ClassBuilder::new("B").superclass(a),
                corion_storage::SegmentId(0),
            )
            .unwrap();
        let c = cat
            .define(
                ClassBuilder::new("C").superclass(a),
                corion_storage::SegmentId(0),
            )
            .unwrap();
        let d = cat
            .define(
                ClassBuilder::new("D").superclass(b).superclass(c),
                corion_storage::SegmentId(0),
            )
            .unwrap();
        (cat, a, b, c, d)
    }

    #[test]
    fn subclass_checks_follow_the_diamond() {
        let (cat, a, b, c, d) = diamond();
        assert!(is_subclass_of(&cat, d, a));
        assert!(is_subclass_of(&cat, d, b));
        assert!(is_subclass_of(&cat, d, c));
        assert!(is_subclass_of(&cat, b, a));
        assert!(!is_subclass_of(&cat, a, d));
        assert!(is_subclass_of(&cat, a, a), "reflexive");
        assert!(!is_subclass_of(&cat, b, c));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (cat, a, b, c, d) = diamond();
        let anc: std::collections::HashSet<_> = ancestors(&cat, d).into_iter().collect();
        assert_eq!(anc, [a, b, c].into_iter().collect());
        let desc: std::collections::HashSet<_> = descendants(&cat, a).into_iter().collect();
        assert_eq!(desc, [b, c, d].into_iter().collect());
        assert!(descendants(&cat, d).is_empty());
    }

    #[test]
    fn topo_order_puts_parents_first() {
        let (cat, a, b, c, d) = diamond();
        let order = self_and_descendants_topo(&cat, a);
        let pos = |x: ClassId| {
            order
                .iter()
                .position(|&c| c == x)
                .expect("class present in topo order")
        };
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
        assert_eq!(order.len(), 4);
    }
}
