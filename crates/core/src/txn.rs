//! Public transactions — N logical mutations, one durability point.
//!
//! Every public mutation of the engine autocommits: `make`, `set_attr`,
//! `make_component`, `delete` each run one storage-level atomic batch and
//! pay one WAL flush (`crates/storage`: the durability point). The paper's
//! workloads, though, are dominated by *multi-object* logical operations —
//! a bottom-up hierarchy build via `make` with `:parent` clustering (§2.3)
//! touches hundreds of objects — and per-object flushing makes durability
//! the bottleneck.
//!
//! A transaction amortises that cost. Between [`Database::begin_transaction`]
//! and [`Database::commit_transaction`] every mutation joins one open
//! storage batch: pages are logged once (deduplicated by the batch),
//! one commit marker is appended, one flush happens, and the traversal
//! cache's hierarchy generation is bumped once instead of per write.
//! [`Database::abort_transaction`] rolls everything back: the storage
//! layer rewinds its log and frames (no-steal policy — dirty pages never
//! reach disk before commit), and the engine restores its derived maps
//! (object table, class extensions, serial counter) from per-transaction
//! before-entries.
//!
//! Scope mirrors ORION's transaction management \[GARZ88\]: object state
//! only. DDL is rejected inside a transaction (the catalog is engine
//! memory, outside the WAL's crash scope), transactions do not nest, and
//! a transaction excludes the object-level [`undo`](crate::undo) scope —
//! the two are alternative rollback mechanisms.
//!
//! [`Database::begin_transaction`]: Database::begin_transaction
//! [`Database::commit_transaction`]: Database::commit_transaction
//! [`Database::abort_transaction`]: Database::abort_transaction

use std::collections::{HashMap, HashSet};

use corion_storage::{HealthState, PhysId};

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::object::Object;
use crate::oid::{ClassId, Oid};
use crate::refs::ReverseRef;
use crate::schema::attr::CompositeSpec;
use crate::value::Value;

/// Book-keeping for one open transaction.
pub(crate) struct TxnState {
    /// Object-table entry of every object touched, at its *first* touch
    /// (`None` = did not exist). Abort re-installs these; the storage
    /// rollback makes the recorded `PhysId`s valid again.
    table_before: HashMap<Oid, Option<PhysId>>,
    /// Serial counter at begin, restored on abort so rolled-back
    /// creations don't burn OIDs.
    next_serial: u64,
    /// Logical operations absorbed so far (for `corion_txn_ops_total`).
    pub(crate) ops: u64,
    /// Set when a joined operation hit a substrate failure: the batch can
    /// no longer commit as a unit, only abort.
    pub(crate) failed: bool,
}

/// A parent reference in a [`MakeSpec`]: either an object that already
/// exists, or an earlier spec of the same [`Database::make_many`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentRef {
    /// An object that existed before the `make_many` call.
    Existing(Oid),
    /// The object created by spec `i` (zero-based) of the same call.
    /// Forward references are rejected — list parents before children,
    /// which is also the order that lets clustering place each child
    /// near its parent.
    Created(usize),
}

/// One instance to create in a [`Database::make_many`] bulk ingest —
/// the same shape as a [`Database::make`] call, with parents that may
/// point at other specs of the batch.
#[derive(Debug, Clone)]
pub struct MakeSpec {
    /// Class to instantiate.
    pub class: ClassId,
    /// Attribute assignments by name (unassigned attributes take their
    /// `:init` default).
    pub values: Vec<(String, Value)>,
    /// The `:parent` clause. The new object is clustered near the first
    /// parent (§2.3).
    pub parents: Vec<(ParentRef, String)>,
}

impl MakeSpec {
    /// A spec with no values and no parents.
    pub fn new(class: ClassId) -> Self {
        MakeSpec {
            class,
            values: Vec::new(),
            parents: Vec::new(),
        }
    }

    /// Adds an attribute assignment.
    pub fn value(mut self, name: &str, value: Value) -> Self {
        self.values.push((name.into(), value));
        self
    }

    /// Adds a `:parent` pair.
    pub fn parent(mut self, parent: ParentRef, attr: &str) -> Self {
        self.parents.push((parent, attr.into()));
        self
    }
}

/// One pre-validated spec of a batched bulk ingest: resolved attribute
/// values, plus deduplicated `:parent` pairs as (target, attribute index
/// in the parent's class, composite spec — `None` for a weak reference).
struct PlannedMake {
    class: ClassId,
    change_count: u64,
    attrs: Vec<Value>,
    parents: Vec<(ParentRef, usize, Option<CompositeSpec>)>,
}

impl Database {
    /// Opens a transaction. Until [`commit_transaction`] (or
    /// [`abort_transaction`]) every mutation joins one storage batch:
    /// one WAL commit marker, one flush, one traversal-cache generation
    /// bump for the whole group.
    ///
    /// Transactions do not nest, exclude the [`begin_undo`] scope, and
    /// reject DDL ([`define_class`] and the schema-evolution entry
    /// points) — the catalog is engine memory the WAL cannot roll back.
    ///
    /// [`commit_transaction`]: Database::commit_transaction
    /// [`abort_transaction`]: Database::abort_transaction
    /// [`begin_undo`]: Database::begin_undo
    /// [`define_class`]: Database::define_class
    pub fn begin_transaction(&mut self) -> DbResult<()> {
        if self.txn.is_some() {
            return Err(DbError::TransactionState {
                reason: "a transaction is already open (transactions do not nest)".into(),
            });
        }
        if self.undo.is_some() {
            return Err(DbError::TransactionState {
                reason: "a transaction cannot open inside an undo scope".into(),
            });
        }
        if self.overlay.is_some() {
            return Err(DbError::TransactionState {
                reason: "a transaction cannot open while a concurrent write overlay is installed"
                    .into(),
            });
        }
        self.store.begin_atomic()?;
        // Defer cache invalidation to one bump at commit/abort; the cache
        // stands aside meanwhile so mid-transaction traversals are neither
        // served pre-transaction entries nor cached prematurely.
        self.traversal_cache.set_suppressed(true);
        self.txn = Some(TxnState {
            table_before: HashMap::new(),
            next_serial: self.next_serial,
            ops: 0,
            failed: false,
        });
        self.metrics.txn_begins.inc();
        Ok(())
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Commits the open transaction: one WAL flush makes every grouped
    /// mutation durable at once.
    ///
    /// If any operation inside the transaction hit a substrate failure
    /// the commit is refused and the transaction rolls back instead
    /// (partial durability is exactly what a transaction promises not to
    /// deliver). On a commit-time storage failure the engine's maps are
    /// restored when the store rolled back cleanly; a degraded/poisoned
    /// store needs [`Database::recover`], which rebuilds them wholesale.
    pub fn commit_transaction(&mut self) -> DbResult<()> {
        let txn = self.txn.take().ok_or_else(|| DbError::TransactionState {
            reason: "no transaction is open".into(),
        })?;
        if txn.failed {
            self.txn = Some(txn);
            self.abort_transaction()?;
            return Err(DbError::TransactionState {
                reason: "the transaction hit a storage fault and was rolled back".into(),
            });
        }
        let result = self.store.commit_atomic();
        self.traversal_cache.set_suppressed(false);
        self.traversal_cache.bump();
        match result {
            Ok(()) => {
                self.metrics.txn_commits.inc();
                self.metrics.txn_ops.add(txn.ops);
                Ok(())
            }
            Err(e) => {
                if self.store.health() == HealthState::Healthy {
                    // The store aborted the batch cleanly (e.g. a transient
                    // flush fault that exhausted its retry budget): restore
                    // the pre-transaction derived maps to match.
                    self.restore_txn_maps(txn);
                }
                self.metrics.txn_aborts.inc();
                Err(e.into())
            }
        }
    }

    /// Rolls the open transaction back: the storage batch aborts (its
    /// pages never reached disk under the no-steal policy), and the
    /// engine's derived maps return to their pre-transaction state.
    pub fn abort_transaction(&mut self) -> DbResult<()> {
        let txn = self.txn.take().ok_or_else(|| DbError::TransactionState {
            reason: "no transaction is open".into(),
        })?;
        let result = self.store.abort_atomic();
        if self.store.health() == HealthState::Healthy {
            self.restore_txn_maps(txn);
        }
        self.traversal_cache.set_suppressed(false);
        self.traversal_cache.bump();
        self.metrics.txn_aborts.inc();
        result?;
        Ok(())
    }

    /// Runs `f` inside one transaction: commits on `Ok`, aborts on `Err`.
    ///
    /// ```
    /// use corion_core::{ClassBuilder, Database, Domain, Value};
    ///
    /// let mut db = Database::new();
    /// let part = db
    ///     .define_class(ClassBuilder::new("Part").attr("n", Domain::Integer))
    ///     .unwrap();
    /// let oids = db
    ///     .transaction(|db| {
    ///         (0..10)
    ///             .map(|i| db.make(part, vec![("n", Value::Int(i))], vec![]))
    ///             .collect::<Result<Vec<_>, _>>()
    ///     })
    ///     .unwrap();
    /// assert_eq!(oids.len(), 10);
    /// ```
    pub fn transaction<R>(&mut self, f: impl FnOnce(&mut Self) -> DbResult<R>) -> DbResult<R> {
        self.begin_transaction()?;
        match f(self) {
            Ok(out) => {
                self.commit_transaction()?;
                Ok(out)
            }
            Err(e) => {
                let _ = self.abort_transaction();
                Err(e)
            }
        }
    }

    /// Restores the derived maps touched by a rolled-back transaction.
    /// Only valid after the storage batch aborted cleanly: the recorded
    /// `PhysId`s point at pre-transaction pages.
    fn restore_txn_maps(&mut self, txn: TxnState) {
        for (oid, before) in txn.table_before {
            match before {
                Some(phys) => {
                    self.object_table.insert(oid, phys);
                    self.extensions.entry(oid.class).or_default().insert(oid);
                }
                None => {
                    self.object_table.remove(&oid);
                    if let Some(ext) = self.extensions.get_mut(&oid.class) {
                        ext.remove(&oid);
                    }
                }
            }
        }
        self.next_serial = txn.next_serial;
    }

    /// Records the object-table entry of `oid` before its first mutation
    /// in the open transaction (no-op outside one). Must run *before* the
    /// mutation changes the table.
    pub(crate) fn txn_note_touch(&mut self, oid: Oid) {
        let Database {
            txn, object_table, ..
        } = self;
        if let Some(txn) = txn.as_mut() {
            txn.table_before
                .entry(oid)
                .or_insert_with(|| object_table.get(&oid).copied());
        }
    }

    /// Bulk ingest: creates every spec'd instance inside one transaction —
    /// one WAL flush for the whole hierarchy — with clustering-aware
    /// placement (each instance is placed near its first parent, the
    /// `:parent` clustering directive of §2.3). Specs may reference
    /// earlier specs of the same call via [`ParentRef::Created`], so a
    /// composite hierarchy builds top-down in one shot. Returns the
    /// created OIDs in spec order; any failure rolls the whole batch back.
    ///
    /// Joins an already-open transaction rather than opening its own (the
    /// enclosing commit/abort then governs durability).
    ///
    /// The common bulk shape — set-valued parent attributes, composite
    /// attributes that start empty — takes a batched path: each child's
    /// reverse references are encoded into its initial image (one write
    /// per child instead of an insert-then-rewrite), and each parent's
    /// forward references are accumulated in memory and written exactly
    /// once, instead of one read-modify-write cycle per child. Shapes
    /// needing the full `make` protocol (scalar parent attributes with
    /// displacement, composite attributes pre-seeded with references)
    /// fall back to per-spec `make` calls, still inside one transaction.
    pub fn make_many(&mut self, specs: &[MakeSpec]) -> DbResult<Vec<Oid>> {
        if self.in_transaction() {
            let result = self.make_many_inner(specs);
            if let (Err(DbError::Storage(_) | DbError::ReadOnly), Some(txn)) =
                (&result, self.txn.as_mut())
            {
                // Match `atomic`'s join bookkeeping: a substrate failure
                // poisons the enclosing transaction.
                txn.failed = true;
            }
            result
        } else {
            self.transaction(|db| db.make_many_inner(specs))
        }
    }

    fn make_many_inner(&mut self, specs: &[MakeSpec]) -> DbResult<Vec<Oid>> {
        match self.plan_bulk_ingest(specs) {
            Some(plans) => self.run_bulk_ingest(plans),
            None => self.make_many_general(specs),
        }
    }

    /// Validates `specs` for the batched ingest path. `None` means "use
    /// the general path" — either the shape needs the full `make`
    /// protocol, or a spec has an error the general path will report with
    /// its usual diagnostics. The fast path therefore only ever runs on
    /// fully pre-validated input and cannot fail mid-batch for logical
    /// reasons, which keeps a joined outer transaction consistent.
    fn plan_bulk_ingest(&self, specs: &[MakeSpec]) -> Option<Vec<PlannedMake>> {
        let mut plans = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let class_def = self.catalog.class(spec.class).ok()?;
            let mut attrs: Vec<Value> = class_def.attrs.iter().map(|a| a.init.clone()).collect();
            for (name, value) in &spec.values {
                let idx = class_def.attr_index(name)?;
                self.check_domain(&class_def.attrs[idx], value).ok()?;
                attrs[idx] = value.clone();
            }
            // A composite attribute that starts with references needs the
            // attach protocol (cycle checks, reverse refs on the targets).
            for (idx, def) in class_def.attrs.iter().enumerate() {
                if def.composite.is_some() && !attrs[idx].refs().is_empty() {
                    return None;
                }
            }
            let mut parents: Vec<(ParentRef, usize, Option<CompositeSpec>)> = Vec::new();
            for (pref, pattr) in &spec.parents {
                let pclass_id = match *pref {
                    ParentRef::Existing(oid) => {
                        if !self.exists(oid) {
                            return None;
                        }
                        oid.class
                    }
                    ParentRef::Created(j) => {
                        if j >= i {
                            return None; // forward reference: general path reports it
                        }
                        specs[j].class
                    }
                };
                let pclass = self.catalog.class(pclass_id).ok()?;
                let idx = pclass.attr_index(pattr)?;
                let def = &pclass.attrs[idx];
                if let Some(dc) = def.domain.referenced_class() {
                    if !self.is_subclass_of(spec.class, dc) {
                        return None;
                    }
                }
                // Scalar parent attributes displace their previous
                // component; non-reference attributes are an error. Both
                // go through the general path.
                if !def.domain.is_set() || !(def.composite.is_some() || def.is_reference()) {
                    return None;
                }
                if parents.iter().any(|&(p, a, _)| p == *pref && a == idx) {
                    continue; // duplicate pair: `make` treats the repeat as a no-op
                }
                parents.push((*pref, idx, def.composite));
            }
            let composite = parents.iter().filter(|(_, _, c)| c.is_some()).count();
            if composite > 1
                && parents
                    .iter()
                    .any(|(_, _, c)| c.is_some_and(|s| s.exclusive))
            {
                return None; // Topology Rule 3 violation: general path reports it
            }
            plans.push(PlannedMake {
                class: spec.class,
                change_count: class_def.change_count,
                attrs,
                parents,
            });
        }
        Some(plans)
    }

    /// Executes a pre-validated bulk plan. Children are inserted once with
    /// their reverse references already encoded; parent forward references
    /// accumulate in a write buffer and each touched parent is saved
    /// exactly once after the whole batch placed.
    fn run_bulk_ingest(&mut self, plans: Vec<PlannedMake>) -> DbResult<Vec<Oid>> {
        fn resolve(p: ParentRef, created: &[Oid]) -> Oid {
            match p {
                ParentRef::Existing(oid) => oid,
                ParentRef::Created(j) => created[j],
            }
        }
        let n = plans.len() as u64;
        let mut created: Vec<Oid> = Vec::with_capacity(plans.len());
        // Every object of the batch plus every pre-existing parent touched,
        // so later specs can keep extending a parent without re-reading it.
        let mut buffer: HashMap<Oid, Object> = HashMap::new();
        let mut dirty: Vec<Oid> = Vec::new();
        let mut dirty_set: HashSet<Oid> = HashSet::new();
        for plan in plans {
            let oid = Oid::new(plan.class, self.next_serial);
            self.next_serial += 1;
            let mut obj = Object::new(oid, plan.attrs, plan.change_count);
            for &(pref, _, cspec) in &plan.parents {
                if let Some(spec) = cspec {
                    let poid = resolve(pref, &created);
                    obj.reverse_refs
                        .push(ReverseRef::new(poid, spec.dependent, spec.exclusive));
                }
            }
            debug_assert!(
                crate::composite::ParentSets::of(&obj).check(oid).is_ok(),
                "plan_bulk_ingest admitted a topology violation"
            );
            let near = plan.parents.first().map(|&(p, _, _)| resolve(p, &created));
            self.insert_object(&obj, near)?;
            for &(pref, idx, _) in &plan.parents {
                let poid = resolve(pref, &created);
                let pobj = match buffer.entry(poid) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => e.insert(self.get(poid)?),
                };
                pobj.attrs[idx].add_ref(oid, true);
                if dirty_set.insert(poid) {
                    dirty.push(poid);
                }
            }
            buffer.insert(oid, obj);
            created.push(oid);
        }
        for poid in dirty {
            let pobj = buffer.remove(&poid).expect("dirtied parents are buffered");
            self.save(&pobj)?;
        }
        if let Some(txn) = self.txn.as_mut() {
            txn.ops += n;
        }
        Ok(created)
    }

    fn make_many_general(&mut self, specs: &[MakeSpec]) -> DbResult<Vec<Oid>> {
        let mut created: Vec<Oid> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let mut parents: Vec<(Oid, &str)> = Vec::with_capacity(spec.parents.len());
            for (parent, attr) in &spec.parents {
                let oid = match parent {
                    ParentRef::Existing(oid) => *oid,
                    ParentRef::Created(j) => {
                        *created.get(*j).ok_or_else(|| DbError::TransactionState {
                            reason: format!(
                                "make_many spec #{i} references spec #{j}, which is not \
                                 created yet (forward references are not allowed)"
                            ),
                        })?
                    }
                };
                parents.push((oid, attr.as_str()));
            }
            let values: Vec<(&str, Value)> = spec
                .values
                .iter()
                .map(|(name, value)| (name.as_str(), value.clone()))
                .collect();
            created.push(self.make(spec.class, values, parents)?);
        }
        Ok(created)
    }
}
