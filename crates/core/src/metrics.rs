//! Metric handles for the engine layer, interned once per [`crate::Database`].
//!
//! The storage substrate counts its own events ([`corion_storage::StoreMetrics`]);
//! this struct covers the paper-visible operations implemented by
//! `corion-core`: the §3.1 traversals, the §3.2 predicate messages, and
//! the autocommit boundary every mutation runs inside. See
//! `docs/OBSERVABILITY.md` for the full catalog.

use corion_obs::{Registry, LATENCY_BOUNDS_NS};

/// Handles to every engine-layer metric. One instance per
/// [`crate::Database`]; cloning a handle is cheap and all clones share
/// the registry's values.
pub struct CoreMetrics {
    /// `corion_components_of_latency_ns`: time per `components-of`
    /// traversal (§3.1), cached or uncached, single or batched.
    pub components_of_latency: corion_obs::Histogram,
    /// `corion_parents_of_latency_ns`: time per `parents-of` traversal
    /// (§3.1).
    pub parents_of_latency: corion_obs::Histogram,
    /// `corion_ancestors_of_latency_ns`: time per `ancestors-of` /
    /// `roots-of` traversal (§3.1).
    pub ancestors_of_latency: corion_obs::Histogram,
    /// `corion_predicate_latency_ns`: time per §3.2 predicate message
    /// (`compositep`, `component-of`, and friends).
    pub predicate_latency: corion_obs::Histogram,
    /// `corion_atomic_latency_ns`: wall time of each outermost
    /// [`crate::Database`] autocommit batch, body included.
    pub atomic_latency: corion_obs::Histogram,
    /// `corion_atomic_commits_total`: outermost autocommit batches that
    /// committed (semantic errors still commit prior writes).
    pub atomic_commits: corion_obs::Counter,
    /// `corion_atomic_aborts_total`: outermost autocommit batches rolled
    /// back because the body hit a storage error.
    pub atomic_aborts: corion_obs::Counter,
    /// `corion_txn_begins_total`: transactions opened
    /// ([`Database::begin_transaction`] or the [`Database::transaction`]
    /// closure).
    ///
    /// [`Database::begin_transaction`]: crate::Database::begin_transaction
    /// [`Database::transaction`]: crate::Database::transaction
    pub txn_begins: corion_obs::Counter,
    /// `corion_txn_commits_total`: transactions committed (one WAL flush
    /// each, however many operations they grouped).
    pub txn_commits: corion_obs::Counter,
    /// `corion_txn_aborts_total`: transactions rolled back — explicit
    /// aborts, closure errors, and commit-time storage failures.
    pub txn_aborts: corion_obs::Counter,
    /// `corion_txn_ops_total`: logical mutations absorbed into
    /// transactions (each would have been its own autocommit batch).
    pub txn_ops: corion_obs::Counter,
    /// `corion_repair_runs_total`: completed [`Database::repair`] passes.
    ///
    /// [`Database::repair`]: crate::Database::repair
    pub repair_runs: corion_obs::Counter,
    /// `corion_repair_edges_dropped_total`: forward composite references
    /// dropped by repair (dangling targets plus Topology Rule conflicts).
    pub repair_edges_dropped: corion_obs::Counter,
    /// `corion_repair_reverse_refs_fixed_total`: objects whose reverse
    /// references repair rewrote to match the forward graph.
    pub repair_reverse_refs_fixed: corion_obs::Counter,
    /// `corion_repair_orphans_deleted_total`: orphaned dependent components
    /// cascade-deleted by repair per the Deletion Rule.
    pub repair_orphans_deleted: corion_obs::Counter,
}

impl CoreMetrics {
    /// Intern every engine metric in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CoreMetrics {
            components_of_latency: registry
                .histogram("corion_components_of_latency_ns", LATENCY_BOUNDS_NS),
            parents_of_latency: registry
                .histogram("corion_parents_of_latency_ns", LATENCY_BOUNDS_NS),
            ancestors_of_latency: registry
                .histogram("corion_ancestors_of_latency_ns", LATENCY_BOUNDS_NS),
            predicate_latency: registry.histogram("corion_predicate_latency_ns", LATENCY_BOUNDS_NS),
            atomic_latency: registry.histogram("corion_atomic_latency_ns", LATENCY_BOUNDS_NS),
            atomic_commits: registry.counter("corion_atomic_commits_total"),
            atomic_aborts: registry.counter("corion_atomic_aborts_total"),
            txn_begins: registry.counter("corion_txn_begins_total"),
            txn_commits: registry.counter("corion_txn_commits_total"),
            txn_aborts: registry.counter("corion_txn_aborts_total"),
            txn_ops: registry.counter("corion_txn_ops_total"),
            repair_runs: registry.counter("corion_repair_runs_total"),
            repair_edges_dropped: registry.counter("corion_repair_edges_dropped_total"),
            repair_reverse_refs_fixed: registry.counter("corion_repair_reverse_refs_fixed_total"),
            repair_orphans_deleted: registry.counter("corion_repair_orphans_deleted_total"),
        }
    }
}
