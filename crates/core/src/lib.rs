//! # corion-core
//!
//! The primary contribution of *Composite Objects Revisited* (Kim, Bertino,
//! Garza, SIGMOD 1989), implemented as a from-scratch object-oriented
//! database engine:
//!
//! * the **five reference types** of §2.1 — weak, dependent-exclusive,
//!   independent-exclusive, dependent-shared, independent-shared
//!   ([`refs`]);
//! * the **formal semantics** of §2.2 — parent sets `IX/DX/IS/DS`,
//!   Topology Rules 1–4, the Make-Component Rule, and the recursive
//!   Deletion Rule ([`composite`]);
//! * the **class model** the rules are defined over — a multiple-inheritance
//!   class lattice with typed attributes and composite attribute
//!   specifications ([`schema`]);
//! * the **implementation technique** of §2.4 — reverse composite
//!   references (parent OID plus D and X flags) stored inside each
//!   component object ([`object`]);
//! * the **operations** of §3 — `components-of`, `parents-of`,
//!   `ancestors-of` and the predicate messages ([`composite::ops`]);
//! * **schema evolution** of §4 — the revised drop semantics, the
//!   state-independent changes I1–I4 (immediate *and* deferred via
//!   operation logs and change counts), and the state-dependent changes
//!   D1–D3 ([`evolution`]);
//! * **physical clustering** via the `:parent` clause of `make`
//!   (§2.3), backed by the `corion-storage` substrate.
//!
//! Objects are identified by copyable [`Oid`]s and live in page storage —
//! never behind Rust references — so arbitrary cyclic/shared object graphs
//! pose no ownership problems (DESIGN.md §2).
//!
//! ```
//! use corion_core::{Database, ClassBuilder, Domain, Value, CompositeSpec};
//!
//! let mut db = Database::new();
//! let body = db.define_class(ClassBuilder::new("AutoBody")).unwrap();
//! let vehicle = db
//!     .define_class(ClassBuilder::new("Vehicle").attr_composite(
//!         "Body",
//!         Domain::Class(body),
//!         CompositeSpec { exclusive: true, dependent: false },
//!     ))
//!     .unwrap();
//! let b = db.make(body, vec![], vec![]).unwrap();
//! let v = db.make(vehicle, vec![("Body", Value::Ref(b))], vec![]).unwrap();
//! assert!(db.child_of(b, v).unwrap());
//! ```

#![warn(missing_docs)]

pub mod composite;
pub mod db;
pub mod error;
pub mod evolution;
pub mod integrity;
pub mod metrics;
pub mod object;
pub mod oid;
pub mod overlay;
pub mod persist;
pub mod query;
pub mod refs;
pub mod repair;
pub mod schema;
pub mod txn;
pub mod undo;
pub mod value;

pub use composite::cache::TraversalCacheStats;
pub use composite::Filter;
pub use corion_obs::{MetricsSnapshot, Registry};
pub use corion_storage::{HealthState, ScrubReport};
pub use db::{Database, DbConfig, OrphanPolicy};
pub use error::{DbError, DbResult};
pub use integrity::IntegrityReport;
pub use metrics::CoreMetrics;
pub use object::Object;
pub use oid::{ClassId, Oid};
pub use overlay::Overlay;
pub use refs::{RefKind, ReverseRef};
pub use repair::RepairReport;
pub use schema::attr::{AttributeDef, CompositeSpec, Domain};
pub use schema::class::{Class, ClassBuilder};
pub use txn::{MakeSpec, ParentRef};
pub use value::Value;
