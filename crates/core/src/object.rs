//! Objects: attribute values plus reverse composite references.
//!
//! Paper §2.4: "we have decided to keep the reverse pointers in each
//! component object, rather than in a separate data structure. This approach
//! allows us to avoid a level of indirection in accessing the parents of a
//! given component, and simplifies deletion and migration of objects;
//! however, it causes the object size to increase." The size increase is
//! measurable here: [`Object::encoded_size`] is what lands on a page, and
//! the `reverse_refs` bench (DESIGN.md B5) reports it.

use bytes::BufMut;
use corion_storage::codec::{self, Reader};
use corion_storage::StorageResult;

use crate::oid::{ClassId, Oid};
use crate::refs::ReverseRef;
use crate::value::Value;

/// A stored object.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// The object's identifier.
    pub oid: Oid,
    /// Attribute values, positionally aligned with the class's effective
    /// attribute list at the object's current layout.
    pub attrs: Vec<Value>,
    /// Reverse composite references (§2.4): one per composite reference to
    /// this object.
    pub reverse_refs: Vec<ReverseRef>,
    /// Change count for deferred schema evolution (§4.3): the value of the
    /// class's CC that this instance has been brought up to date with.
    pub cc: u64,
}

impl Object {
    /// Creates an object with the given attribute values.
    pub fn new(oid: Oid, attrs: Vec<Value>, cc: u64) -> Self {
        Object {
            oid,
            attrs,
            reverse_refs: Vec::new(),
            cc,
        }
    }

    /// The parents reachable through reverse composite references, i.e. the
    /// union IX(O) ∪ DX(O) ∪ IS(O) ∪ DS(O) of §2.2.
    pub fn composite_parents(&self) -> Vec<Oid> {
        self.reverse_refs.iter().map(|r| r.parent).collect()
    }

    /// IX(O): parents holding an independent exclusive composite reference.
    pub fn ix(&self) -> Vec<Oid> {
        self.reverse_refs
            .iter()
            .filter(|r| r.exclusive && !r.dependent)
            .map(|r| r.parent)
            .collect()
    }

    /// DX(O): parents holding a dependent exclusive composite reference.
    pub fn dx(&self) -> Vec<Oid> {
        self.reverse_refs
            .iter()
            .filter(|r| r.exclusive && r.dependent)
            .map(|r| r.parent)
            .collect()
    }

    /// IS(O): parents holding an independent shared composite reference.
    pub fn is_(&self) -> Vec<Oid> {
        self.reverse_refs
            .iter()
            .filter(|r| !r.exclusive && !r.dependent)
            .map(|r| r.parent)
            .collect()
    }

    /// DS(O): parents holding a dependent shared composite reference.
    pub fn ds(&self) -> Vec<Oid> {
        self.reverse_refs
            .iter()
            .filter(|r| !r.exclusive && r.dependent)
            .map(|r| r.parent)
            .collect()
    }

    /// True if any reverse reference has the X flag set.
    pub fn has_exclusive_reverse_ref(&self) -> bool {
        self.reverse_refs.iter().any(|r| r.exclusive)
    }

    /// Removes one reverse reference to `parent` with the given flags.
    /// Returns `true` if one was found and removed.
    pub fn remove_reverse_ref(&mut self, parent: Oid, dependent: bool, exclusive: bool) -> bool {
        if let Some(i) = self.reverse_refs.iter().position(|r| {
            r.parent == parent && r.dependent == dependent && r.exclusive == exclusive
        }) {
            self.reverse_refs.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Removes every reverse reference to `parent` regardless of flags,
    /// returning how many were removed (used when `parent` is deleted).
    pub fn remove_reverse_refs_to(&mut self, parent: Oid) -> usize {
        let before = self.reverse_refs.len();
        self.reverse_refs.retain(|r| r.parent != parent);
        before - self.reverse_refs.len()
    }

    /// Serialized size in bytes — what the object occupies on a page.
    pub fn encoded_size(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Serializes the object (everything but the OID, which is the key).
    pub fn encode(&self, buf: &mut impl BufMut) {
        codec::put_u32(buf, self.oid.class.0);
        codec::put_u64(buf, self.oid.serial);
        codec::put_u64(buf, self.cc);
        codec::put_varint(buf, self.attrs.len() as u64);
        for v in &self.attrs {
            v.encode(buf);
        }
        codec::put_varint(buf, self.reverse_refs.len() as u64);
        for r in &self.reverse_refs {
            r.encode(buf);
        }
    }

    /// Deserializes an object.
    pub fn decode(bytes: &[u8]) -> StorageResult<Object> {
        let mut r = Reader::new(bytes);
        let class = ClassId(r.u32("object class")?);
        let serial = r.u64("object serial")?;
        let cc = r.u64("object cc")?;
        let n_attrs = r.varint("attr count")? as usize;
        let mut attrs = Vec::with_capacity(n_attrs.min(1024));
        for _ in 0..n_attrs {
            attrs.push(Value::decode(&mut r)?);
        }
        let n_refs = r.varint("reverse ref count")? as usize;
        let mut reverse_refs = Vec::with_capacity(n_refs.min(1024));
        for _ in 0..n_refs {
            reverse_refs.push(ReverseRef::decode(&mut r)?);
        }
        Ok(Object {
            oid: Oid::new(class, serial),
            attrs,
            reverse_refs,
            cc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(c: u32, s: u64) -> Oid {
        Oid::new(ClassId(c), s)
    }

    fn sample() -> Object {
        let mut o = Object::new(oid(1, 10), vec![Value::Int(5), Value::Ref(oid(2, 3))], 7);
        o.reverse_refs.push(ReverseRef::new(oid(3, 1), true, true));
        o.reverse_refs
            .push(ReverseRef::new(oid(3, 2), false, false));
        o
    }

    #[test]
    fn encode_decode_roundtrip() {
        let o = sample();
        let mut buf = Vec::new();
        o.encode(&mut buf);
        assert_eq!(Object::decode(&buf).unwrap(), o);
        assert_eq!(o.encoded_size(), buf.len());
    }

    #[test]
    fn parent_sets_partition_by_flags() {
        let mut o = Object::new(oid(1, 1), vec![], 0);
        o.reverse_refs.push(ReverseRef::new(oid(9, 1), true, true)); // DX
        o.reverse_refs.push(ReverseRef::new(oid(9, 2), false, true)); // IX
        o.reverse_refs.push(ReverseRef::new(oid(9, 3), true, false)); // DS
        o.reverse_refs
            .push(ReverseRef::new(oid(9, 4), false, false)); // IS
        assert_eq!(o.dx(), vec![oid(9, 1)]);
        assert_eq!(o.ix(), vec![oid(9, 2)]);
        assert_eq!(o.ds(), vec![oid(9, 3)]);
        assert_eq!(o.is_(), vec![oid(9, 4)]);
        assert_eq!(o.composite_parents().len(), 4);
        assert!(o.has_exclusive_reverse_ref());
    }

    #[test]
    fn remove_reverse_ref_matches_flags_exactly() {
        let mut o = sample();
        assert!(
            !o.remove_reverse_ref(oid(3, 1), false, true),
            "flags must match"
        );
        assert!(o.remove_reverse_ref(oid(3, 1), true, true));
        assert_eq!(o.reverse_refs.len(), 1);
    }

    #[test]
    fn remove_all_reverse_refs_to_parent() {
        let mut o = Object::new(oid(1, 1), vec![], 0);
        o.reverse_refs.push(ReverseRef::new(oid(9, 1), true, false));
        o.reverse_refs
            .push(ReverseRef::new(oid(9, 1), false, false));
        o.reverse_refs
            .push(ReverseRef::new(oid(9, 2), false, false));
        assert_eq!(o.remove_reverse_refs_to(oid(9, 1)), 2);
        assert_eq!(o.reverse_refs.len(), 1);
    }

    #[test]
    fn reverse_refs_grow_encoded_size() {
        let mut o = Object::new(oid(1, 1), vec![Value::Int(1)], 0);
        let small = o.encoded_size();
        for i in 0..10 {
            o.reverse_refs.push(ReverseRef::new(oid(2, i), true, false));
        }
        assert!(
            o.encoded_size() > small,
            "paper: reverse refs increase object size"
        );
    }

    #[test]
    fn truncated_object_is_rejected() {
        let o = sample();
        let mut buf = Vec::new();
        o.encode(&mut buf);
        assert!(Object::decode(&buf[..buf.len() - 1]).is_err());
    }
}
