//! Object and class identifiers.
//!
//! Paper §2.1: "We say that an object O' has a reference to another object
//! O, if O' contains the object identifier (UID) of O." ORION UIDs embed the
//! class; [`Oid`] does the same, pairing a [`ClassId`] with a database-wide
//! serial number. Serials are never reused, so a dangling reference to a
//! deleted object can never silently resolve to a new one.

use std::fmt;

/// Identifier of a class in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of an object: the class it was created in plus a unique serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// Class the object is a direct instance of.
    pub class: ClassId,
    /// Database-wide unique serial (never reused).
    pub serial: u64,
}

impl Oid {
    /// Builds an OID from its parts.
    pub fn new(class: ClassId, serial: u64) -> Self {
        Oid { class, serial }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.i{}", self.class, self.serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_embeds_class_and_serial() {
        let o = Oid::new(ClassId(3), 17);
        assert_eq!(o.to_string(), "c3.i17");
    }

    #[test]
    fn oids_hash_and_order() {
        let a = Oid::new(ClassId(1), 1);
        let b = Oid::new(ClassId(1), 2);
        let c = Oid::new(ClassId(2), 1);
        let set: HashSet<Oid> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
        assert!(a < b && a < c);
    }
}
