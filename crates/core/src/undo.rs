//! Object-level undo — the transaction-rollback substrate.
//!
//! §7's protocols come from ORION's transaction management \[GARZ88\], which
//! pairs locking with the ability to abort. The engine supports that here
//! with before-image undo scoped to one active transaction:
//!
//! * [`Database::begin_undo`] opens an undo scope;
//! * every object mutation inside the scope records the object's first
//!   before-image (creations and deletions record themselves);
//! * [`Database::rollback_undo`] restores every touched object —
//!   attribute values, reverse references, CCs, extensions — to its state
//!   at `begin_undo`; [`Database::commit_undo`] discards the log.
//!
//! Scope: *object* state only. Schema changes (§4) are DDL and are not
//! undone — ORION likewise treated schema evolution as non-transactional —
//! and the engine rejects them inside an undo scope to keep the log sound.
//! Physical placement is not restored (a rolled-back object may live at a
//! different PhysId; OIDs are the stable names).

use std::collections::HashMap;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::object::Object;
use crate::oid::Oid;

/// The undo log of one open transaction.
#[derive(Default)]
pub(crate) struct UndoLog {
    /// First before-image of every object touched (None = did not exist).
    before: HashMap<Oid, Option<Object>>,
    /// Serial counter at `begin_undo`, restored on rollback so aborted
    /// creations don't burn OIDs forever (serials stay unique regardless).
    next_serial: u64,
}

impl Database {
    /// Opens an undo scope. Fails if one is already open (undo scopes do
    /// not nest — the lock layer's transactions are flat too).
    pub fn begin_undo(&mut self) -> DbResult<()> {
        if self.undo.is_some() {
            return Err(DbError::SchemaChangeRejected {
                reason: "an undo scope is already open".into(),
            });
        }
        if self.txn.is_some() {
            // A transaction already gives all-or-nothing semantics; an undo
            // scope nested inside it would roll back with compensating
            // *writes* into a batch that may itself abort.
            return Err(DbError::TransactionState {
                reason: "an undo scope cannot open inside a transaction".into(),
            });
        }
        if self.overlay.is_some() {
            return Err(DbError::TransactionState {
                reason: "an undo scope cannot open while a concurrent write overlay is installed"
                    .into(),
            });
        }
        self.undo = Some(UndoLog {
            before: HashMap::new(),
            next_serial: self.next_serial,
        });
        Ok(())
    }

    /// True while an undo scope is open.
    pub fn in_undo_scope(&self) -> bool {
        self.undo.is_some()
    }

    /// Discards the undo log, making every change since `begin_undo`
    /// permanent.
    pub fn commit_undo(&mut self) -> DbResult<()> {
        self.undo
            .take()
            .map(|_| ())
            .ok_or(DbError::SchemaChangeRejected {
                reason: "no undo scope is open".into(),
            })
    }

    /// Restores every object touched since `begin_undo` to its state at
    /// that point and closes the scope. The whole restoration is one atomic
    /// batch: a crash mid-rollback recovers to either the unrolled state or
    /// the fully rolled-back state.
    pub fn rollback_undo(&mut self) -> DbResult<()> {
        let log = self.undo.take().ok_or(DbError::SchemaChangeRejected {
            reason: "no undo scope is open".into(),
        })?;
        self.atomic(|db| {
            for (oid, before) in log.before {
                match before {
                    Some(obj) => {
                        if db.exists(oid) {
                            // Touched or recreated: restore the before-image.
                            db.save(&obj)?;
                        } else {
                            // Deleted during the scope: resurrect.
                            db.insert_object(&obj, None)?;
                        }
                    }
                    None => {
                        // Created during the scope: remove.
                        if db.exists(oid) {
                            db.erase(oid)?;
                        }
                    }
                }
            }
            db.next_serial = db.next_serial.max(log.next_serial);
            Ok(())
        })
    }

    /// Records the before-image of `oid` (only the first touch matters).
    pub(crate) fn undo_note_touch(&mut self, oid: Oid, before: Option<Object>) {
        if let Some(log) = self.undo.as_mut() {
            log.before.entry(oid).or_insert(before);
        }
    }

    /// Guard used by schema-evolution entry points: DDL inside an undo
    /// scope would make the log unsound, and DDL inside a transaction
    /// could not be rolled back (the catalog is engine memory, outside
    /// the WAL's crash scope) — both are rejected.
    pub(crate) fn undo_forbid_ddl(&self) -> DbResult<()> {
        if self.undo.is_some() {
            return Err(DbError::SchemaChangeRejected {
                reason: "schema changes are not allowed inside an undo scope".into(),
            });
        }
        if self.txn.is_some() {
            return Err(DbError::TransactionState {
                reason: "schema changes are not allowed inside a transaction".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;
    use crate::ClassId;

    fn setup() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let item = db
            .define_class(ClassBuilder::new("Item").attr("n", Domain::Integer))
            .unwrap();
        let holder = db
            .define_class(ClassBuilder::new("Holder").attr_composite(
                "slot",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        (db, item, holder)
    }

    #[test]
    fn rollback_restores_attribute_values() {
        let (mut db, item, _) = setup();
        let o = db.make(item, vec![("n", Value::Int(1))], vec![]).unwrap();
        db.begin_undo().unwrap();
        db.set_attr(o, "n", Value::Int(99)).unwrap();
        assert_eq!(db.get_attr(o, "n").unwrap(), Value::Int(99));
        db.rollback_undo().unwrap();
        assert_eq!(db.get_attr(o, "n").unwrap(), Value::Int(1));
    }

    #[test]
    fn rollback_removes_created_objects() {
        let (mut db, item, _) = setup();
        db.begin_undo().unwrap();
        let o = db.make(item, vec![], vec![]).unwrap();
        assert!(db.exists(o));
        db.rollback_undo().unwrap();
        assert!(!db.exists(o));
        assert!(db.instances_of(item, false).is_empty());
    }

    #[test]
    fn rollback_resurrects_deleted_composite_objects() {
        let (mut db, item, holder) = setup();
        let i = db.make(item, vec![("n", Value::Int(7))], vec![]).unwrap();
        let h = db
            .make(holder, vec![("slot", Value::Ref(i))], vec![])
            .unwrap();
        db.begin_undo().unwrap();
        db.delete(h).unwrap();
        assert!(!db.exists(h) && !db.exists(i), "dependent cascade ran");
        db.rollback_undo().unwrap();
        assert!(db.exists(h) && db.exists(i), "both resurrected");
        assert_eq!(db.get_attr(h, "slot").unwrap(), Value::Ref(i));
        assert_eq!(
            db.get(i).unwrap().dx(),
            vec![h],
            "reverse reference restored"
        );
        db.verify_integrity().unwrap();
    }

    #[test]
    fn rollback_undoes_component_attachment() {
        let (mut db, item, holder) = setup();
        let i = db.make(item, vec![], vec![]).unwrap();
        let h = db.make(holder, vec![], vec![]).unwrap();
        db.begin_undo().unwrap();
        db.make_component(i, h, "slot").unwrap();
        db.rollback_undo().unwrap();
        assert_eq!(db.get_attr(h, "slot").unwrap(), Value::Null);
        assert!(db.get(i).unwrap().reverse_refs.is_empty());
        db.verify_integrity().unwrap();
    }

    #[test]
    fn commit_makes_changes_permanent() {
        let (mut db, item, _) = setup();
        let o = db.make(item, vec![("n", Value::Int(1))], vec![]).unwrap();
        db.begin_undo().unwrap();
        db.set_attr(o, "n", Value::Int(2)).unwrap();
        db.commit_undo().unwrap();
        assert_eq!(db.get_attr(o, "n").unwrap(), Value::Int(2));
        assert!(db.rollback_undo().is_err(), "scope already closed");
    }

    #[test]
    fn scopes_do_not_nest_and_ddl_is_rejected() {
        let (mut db, item, _) = setup();
        db.begin_undo().unwrap();
        assert!(db.begin_undo().is_err());
        assert!(db
            .add_attribute(
                item,
                crate::schema::attr::AttributeDef::plain("x", Domain::Integer)
            )
            .is_err());
        assert!(db.drop_attribute(item, "n").is_err());
        db.commit_undo().unwrap();
        // Outside the scope DDL works again.
        db.add_attribute(
            item,
            crate::schema::attr::AttributeDef::plain("x", Domain::Integer),
        )
        .unwrap();
    }

    #[test]
    fn interleaved_mutations_restore_exactly() {
        let (mut db, item, holder) = setup();
        let i1 = db.make(item, vec![("n", Value::Int(1))], vec![]).unwrap();
        let h = db
            .make(holder, vec![("slot", Value::Ref(i1))], vec![])
            .unwrap();
        db.begin_undo().unwrap();
        // A messy transaction: detach, create, attach the new one, mutate.
        db.set_attr(h, "slot", Value::Null).unwrap(); // deletes i1 (dependent orphan)
        let i2 = db.make(item, vec![("n", Value::Int(2))], vec![]).unwrap();
        db.make_component(i2, h, "slot").unwrap();
        db.set_attr(i2, "n", Value::Int(3)).unwrap();
        db.rollback_undo().unwrap();
        assert!(db.exists(i1), "orphan-deleted component resurrected");
        assert!(!db.exists(i2), "created component removed");
        assert_eq!(db.get_attr(h, "slot").unwrap(), Value::Ref(i1));
        assert_eq!(db.get_attr(i1, "n").unwrap(), Value::Int(1));
        db.verify_integrity().unwrap();
    }
}
