//! The schema-evolution taxonomy of §4.1 — operations whose semantics the
//! extended composite model revises.
//!
//! > "The model of composite objects in \[KIM87b\] causes all objects
//! > referenced through a composite attribute to be deleted if the
//! > attribute is removed; however, the extended model requires only those
//! > objects which are referenced through **dependent** composite
//! > attributes to be dropped when the attributes are dropped."
//!
//! Every operation here keeps instance layouts aligned with the class's
//! effective attribute list: values are preserved by attribute *name*
//! across layout changes, and attributes that disappear have their
//! composite references detached under Deletion-Rule semantics first.

use std::collections::HashMap;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::ClassId;
use crate::schema::attr::AttributeDef;
use crate::schema::lattice;

impl Database {
    /// §4.1 (1): "Drop an attribute A from a class C."
    ///
    /// Instances of C and of every subclass that inherits A lose their
    /// values for A; objects referenced through a composite A are detached,
    /// and the dependent ones deleted in accordance with the Deletion Rule.
    /// A must be locally defined on C (to drop an inherited attribute,
    /// remove the IS-A edge or drop it on the definer).
    pub fn drop_attribute(&mut self, class: ClassId, attr: &str) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let c = self.catalog.class(class)?;
        let def = c.attr(attr).ok_or_else(|| DbError::NoSuchAttribute {
            class,
            attr: attr.into(),
        })?;
        if let Some(provider) = def.inherited_from {
            return Err(DbError::SchemaChangeRejected {
                reason: format!(
                    "attribute {attr:?} is inherited from {provider}; drop it there or remove \
                     the IS-A edge"
                ),
            });
        }
        let old = self.old_layouts(class);
        self.catalog
            .class_mut(class)?
            .local_attrs
            .retain(|a| a.name != attr);
        self.catalog.reflatten_from(class);
        self.detach_lost_and_realign(&old)
    }

    /// Adds a local attribute to a class; existing instances (of the class
    /// and of inheriting subclasses) take the attribute's `:init` value.
    pub fn add_attribute(&mut self, class: ClassId, def: AttributeDef) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        def.validate()?;
        let c = self.catalog.class(class)?;
        if c.attr(&def.name).is_some() {
            return Err(DbError::DuplicateAttribute {
                class,
                attr: def.name,
            });
        }
        let old = self.old_layouts(class);
        self.catalog.class_mut(class)?.local_attrs.push(def);
        self.catalog.reflatten_from(class);
        self.detach_lost_and_realign(&old)
    }

    /// Adds an IS-A edge; instances of `class` and its subclasses gain the
    /// newly inherited attributes at their `:init` values.
    pub fn add_superclass(&mut self, class: ClassId, superclass: ClassId) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let old = self.old_layouts(class);
        self.catalog.add_superclass(class, superclass)?;
        self.detach_lost_and_realign(&old)
    }

    /// §4.1 (3): "Remove a class S as superclass of a class C. If this
    /// operation causes class C to lose a composite attribute A, objects
    /// … referenced by instances of C and its subclasses through A are
    /// deleted according to (1)."
    pub fn remove_superclass(&mut self, class: ClassId, superclass: ClassId) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let old = self.old_layouts(class);
        self.catalog.remove_superclass(class, superclass)?;
        self.detach_lost_and_realign(&old)
    }

    /// §4.1 (4): "Drop an existing class C. If the class C has one or more
    /// composite attributes, objects referenced through the attributes are
    /// dropped in accordance with the Deletion Rule. All subclasses of C
    /// become immediate subclasses of the superclasses of C."
    ///
    /// Direct instances of C are deleted (each through the Deletion Rule);
    /// instances of subclasses survive, losing only the attributes C
    /// provided.
    pub fn drop_class(&mut self, class: ClassId) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        self.catalog.class(class)?;
        // Delete direct instances first — their composite references cascade
        // per the Deletion Rule.
        for oid in self.instances_of(class, false) {
            if self.exists(oid) {
                self.delete(oid)?;
            }
        }
        let old = self.old_layouts(class);
        self.catalog.drop_class(class)?;
        self.extensions.remove(&class);
        self.oplogs.remove(&class);
        // Subclass instances lose the attributes C provided.
        let old_without_self: Vec<_> = old.into_iter().filter(|(c, _)| *c != class).collect();
        self.detach_lost_and_realign(&old_without_self)
    }

    /// §4.1 (2): "Change the inheritance (parent) of an attribute (inherit
    /// another attribute with the same name)."
    ///
    /// The attribute's value is re-initialised (the old and new definitions
    /// may disagree on domain and composite spec); composite references held
    /// under the old definition are detached "according to (1)".
    pub fn change_attribute_inheritance(
        &mut self,
        class: ClassId,
        attr: &str,
        provider: ClassId,
    ) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let old = self.old_layouts(class);
        self.catalog.set_preferred_provider(class, attr, provider)?;
        // Force re-initialisation of this attribute by pretending the old
        // layout did not have it (detaching its composite refs first).
        let doctored: Vec<(ClassId, Vec<AttributeDef>)> = old
            .iter()
            .map(|(c, attrs)| {
                (
                    *c,
                    attrs.clone(), // detach pass needs the real old layout
                )
            })
            .collect();
        for (c, attrs) in &doctored {
            if let Some(idx) = attrs.iter().position(|a| a.name == attr) {
                let def = &attrs[idx];
                if let Some(spec) = def.composite {
                    for oid in self.instances_of(*c, false) {
                        let obj = self.get(oid)?;
                        for child in obj.attrs[idx].refs() {
                            self.detach_child_with(child, oid, spec, true)?;
                        }
                    }
                }
            }
        }
        // Realign with the attribute removed from the old layout, so it
        // takes the new definition's init value.
        let stripped: Vec<(ClassId, Vec<AttributeDef>)> = doctored
            .into_iter()
            .map(|(c, attrs)| (c, attrs.into_iter().filter(|a| a.name != attr).collect()))
            .collect();
        for (c, old_attrs) in &stripped {
            self.realign_instances(*c, old_attrs)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Snapshot of the effective attribute lists of `class` and all its
    /// descendants, taken before a schema change.
    fn old_layouts(&self, class: ClassId) -> Vec<(ClassId, Vec<AttributeDef>)> {
        let mut out = vec![(
            class,
            self.catalog
                .class(class)
                .map(|c| c.attrs.clone())
                .unwrap_or_default(),
        )];
        for d in lattice::descendants(&self.catalog, class) {
            if let Ok(c) = self.catalog.class(d) {
                out.push((d, c.attrs.clone()));
            }
        }
        out
    }

    /// For each affected class: detaches composite references held through
    /// attributes that the new layout no longer has (Deletion-Rule
    /// semantics), then realigns instance layouts by attribute name.
    fn detach_lost_and_realign(&mut self, old: &[(ClassId, Vec<AttributeDef>)]) -> DbResult<()> {
        for (class, old_attrs) in old {
            let Ok(new_class) = self.catalog.class(*class) else {
                continue;
            };
            let new_names: HashMap<&str, ()> = new_class
                .attrs
                .iter()
                .map(|a| (a.name.as_str(), ()))
                .collect();
            let lost: Vec<(usize, AttributeDef)> = old_attrs
                .iter()
                .enumerate()
                .filter(|(_, a)| !new_names.contains_key(a.name.as_str()))
                .map(|(i, a)| (i, a.clone()))
                .collect();
            for (idx, def) in &lost {
                if let Some(spec) = def.composite {
                    for oid in self.instances_of(*class, false) {
                        let obj = self.get(oid)?;
                        for child in obj.attrs.get(*idx).map(|v| v.refs()).unwrap_or_default() {
                            // §4.1: dependent components go per the Deletion
                            // Rule regardless of orphan policy.
                            self.detach_child_with(child, oid, spec, true)?;
                        }
                    }
                }
            }
            self.realign_instances(*class, old_attrs)?;
        }
        Ok(())
    }

    /// Rewrites every (direct) instance of `class` from the old layout to
    /// the class's current effective layout, preserving values by name.
    pub(crate) fn realign_instances(
        &mut self,
        class: ClassId,
        old_attrs: &[AttributeDef],
    ) -> DbResult<()> {
        let new_attrs = self.catalog.class(class)?.attrs.clone();
        // Nothing to do when the layout is name-identical in order.
        if new_attrs.len() == old_attrs.len()
            && new_attrs
                .iter()
                .zip(old_attrs)
                .all(|(a, b)| a.name == b.name)
        {
            return Ok(());
        }
        for oid in self.instances_of(class, false) {
            if !self.exists(oid) {
                continue;
            }
            let mut obj = self.get(oid)?;
            let mut new_vals = Vec::with_capacity(new_attrs.len());
            for def in &new_attrs {
                match old_attrs.iter().position(|a| a.name == def.name) {
                    Some(i) if i < obj.attrs.len() => new_vals.push(obj.attrs[i].clone()),
                    _ => new_vals.push(def.init.clone()),
                }
            }
            obj.attrs = new_vals;
            self.save(&obj)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::schema::attr::{AttributeDef, CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;
    use crate::{ClassId, Database, DbError, Oid};

    fn setup() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(
                ClassBuilder::new("Holder")
                    .attr("tag", Domain::String)
                    .attr_composite(
                        "dep",
                        Domain::Class(item),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    )
                    .attr_composite(
                        "ind",
                        Domain::Class(item),
                        CompositeSpec {
                            exclusive: true,
                            dependent: false,
                        },
                    ),
            )
            .unwrap();
        (db, holder, item)
    }

    fn wire(db: &mut Database, holder: ClassId, item: ClassId) -> (Oid, Oid, Oid) {
        let dep_target = db.make(item, vec![], vec![]).unwrap();
        let ind_target = db.make(item, vec![], vec![]).unwrap();
        let h = db
            .make(
                holder,
                vec![
                    ("tag", Value::Str("h".into())),
                    ("dep", Value::Ref(dep_target)),
                    ("ind", Value::Ref(ind_target)),
                ],
                vec![],
            )
            .unwrap();
        (h, dep_target, ind_target)
    }

    #[test]
    fn drop_dependent_composite_attribute_deletes_referenced() {
        let (mut db, holder, item) = setup();
        let (h, dep_target, ind_target) = wire(&mut db, holder, item);
        db.drop_attribute(holder, "dep").unwrap();
        assert!(
            !db.exists(dep_target),
            "dependent component dropped per Deletion Rule"
        );
        assert!(db.exists(ind_target));
        // Layout shrank but remaining values survive.
        assert_eq!(db.get_attr(h, "tag").unwrap(), Value::Str("h".into()));
        assert_eq!(db.get_attr(h, "ind").unwrap(), Value::Ref(ind_target));
        assert!(db.get_attr(h, "dep").is_err());
    }

    #[test]
    fn drop_independent_composite_attribute_keeps_referenced() {
        let (mut db, holder, item) = setup();
        let (_h, dep_target, ind_target) = wire(&mut db, holder, item);
        db.drop_attribute(holder, "ind").unwrap();
        assert!(
            db.exists(ind_target),
            "independent component survives the drop"
        );
        assert!(db.get(ind_target).unwrap().reverse_refs.is_empty());
        assert!(db.exists(dep_target));
    }

    #[test]
    fn drop_attribute_applies_to_inheriting_subclasses() {
        let (mut db, holder, item) = setup();
        let sub = db
            .define_class(ClassBuilder::new("SubHolder").superclass(holder))
            .unwrap();
        let t = db.make(item, vec![], vec![]).unwrap();
        let s = db.make(sub, vec![("dep", Value::Ref(t))], vec![]).unwrap();
        db.drop_attribute(holder, "dep").unwrap();
        assert!(
            !db.exists(t),
            "subclass instance's dependent component dropped too"
        );
        assert!(db.get_attr(s, "dep").is_err());
        assert_eq!(db.class(sub).unwrap().attrs.len(), 2);
    }

    #[test]
    fn drop_inherited_attribute_is_rejected() {
        let (mut db, holder, _item) = setup();
        let sub = db
            .define_class(ClassBuilder::new("SubHolder").superclass(holder))
            .unwrap();
        assert!(matches!(
            db.drop_attribute(sub, "dep"),
            Err(DbError::SchemaChangeRejected { .. })
        ));
    }

    #[test]
    fn add_attribute_backfills_init_values() {
        let (mut db, holder, item) = setup();
        let (h, ..) = wire(&mut db, holder, item);
        let mut def = AttributeDef::plain("rank", Domain::Integer);
        def.init = Value::Int(1);
        db.add_attribute(holder, def).unwrap();
        assert_eq!(db.get_attr(h, "rank").unwrap(), Value::Int(1));
        assert_eq!(
            db.get_attr(h, "tag").unwrap(),
            Value::Str("h".into()),
            "old values intact"
        );
        assert!(db
            .add_attribute(holder, AttributeDef::plain("rank", Domain::Integer))
            .is_err());
    }

    #[test]
    fn remove_superclass_cascades_lost_composite_attributes() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let base = db
            .define_class(ClassBuilder::new("Base").attr_composite(
                "dep",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let derived = db
            .define_class(
                ClassBuilder::new("Derived")
                    .superclass(base)
                    .attr("own", Domain::Integer),
            )
            .unwrap();
        let t = db.make(item, vec![], vec![]).unwrap();
        let d = db
            .make(
                derived,
                vec![("dep", Value::Ref(t)), ("own", Value::Int(3))],
                vec![],
            )
            .unwrap();
        db.remove_superclass(derived, base).unwrap();
        assert!(!db.exists(t), "lost dependent composite attribute cascades");
        assert_eq!(db.get_attr(d, "own").unwrap(), Value::Int(3));
        assert!(db.get_attr(d, "dep").is_err());
    }

    #[test]
    fn add_superclass_grants_attributes_to_existing_instances() {
        let mut db = Database::new();
        let base = db
            .define_class(ClassBuilder::new("Base").attr("x", Domain::Integer))
            .unwrap();
        let solo = db
            .define_class(ClassBuilder::new("Solo").attr("y", Domain::Integer))
            .unwrap();
        let o = db.make(solo, vec![("y", Value::Int(9))], vec![]).unwrap();
        db.add_superclass(solo, base).unwrap();
        assert_eq!(
            db.get_attr(o, "x").unwrap(),
            Value::Null,
            "new inherited attr at init"
        );
        assert_eq!(db.get_attr(o, "y").unwrap(), Value::Int(9));
    }

    #[test]
    fn drop_class_deletes_instances_and_reattaches_subclasses() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let top = db
            .define_class(ClassBuilder::new("Top").attr("t", Domain::Integer))
            .unwrap();
        let mid = db
            .define_class(ClassBuilder::new("Mid").superclass(top).attr_composite(
                "dep",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let bot = db
            .define_class(
                ClassBuilder::new("Bot")
                    .superclass(mid)
                    .attr("b", Domain::Integer),
            )
            .unwrap();
        // A Mid instance with a dependent component…
        let t1 = db.make(item, vec![], vec![]).unwrap();
        let m = db.make(mid, vec![("dep", Value::Ref(t1))], vec![]).unwrap();
        // …and a Bot instance with its own dependent component.
        let t2 = db.make(item, vec![], vec![]).unwrap();
        let b = db
            .make(
                bot,
                vec![
                    ("dep", Value::Ref(t2)),
                    ("b", Value::Int(1)),
                    ("t", Value::Int(2)),
                ],
                vec![],
            )
            .unwrap();
        db.drop_class(mid).unwrap();
        assert!(
            !db.exists(m),
            "direct instances of the dropped class are deleted"
        );
        assert!(!db.exists(t1), "…cascading per the Deletion Rule");
        assert!(db.exists(b), "subclass instances survive");
        assert!(
            !db.exists(t2),
            "but lose the attribute Mid provided, cascading"
        );
        assert!(db.get_attr(b, "dep").is_err());
        assert_eq!(
            db.get_attr(b, "t").unwrap(),
            Value::Int(2),
            "Top's attr survives via re-attachment"
        );
        assert_eq!(db.class(bot).unwrap().superclasses, vec![top]);
    }

    #[test]
    fn change_attribute_inheritance_reinitialises_and_detaches() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let a = db
            .define_class(ClassBuilder::new("A").attr_composite(
                "x",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let b = db
            .define_class(ClassBuilder::new("B").attr("x", Domain::Integer))
            .unwrap();
        let c = db
            .define_class(ClassBuilder::new("C").superclass(a).superclass(b))
            .unwrap();
        let t = db.make(item, vec![], vec![]).unwrap();
        let o = db.make(c, vec![("x", Value::Ref(t))], vec![]).unwrap();
        // Switch x to inherit from B: the composite value is dropped (its
        // dependent target deleted) and x becomes an integer attribute.
        db.change_attribute_inheritance(c, "x", b).unwrap();
        assert!(!db.exists(t));
        assert_eq!(db.get_attr(o, "x").unwrap(), Value::Null);
        assert_eq!(
            db.class(c).unwrap().attr("x").unwrap().domain,
            Domain::Integer
        );
    }
}
