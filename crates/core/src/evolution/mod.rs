//! Schema evolution (paper §4).
//!
//! * [`taxonomy`] — the \[BANE87b\] operations whose semantics the extended
//!   composite model revises: drop attribute, add/remove superclass, drop
//!   class, change attribute inheritance (§4.1);
//! * [`typechange`] — the state-independent changes **I1–I4** and
//!   state-dependent changes **D1–D3** to attribute types (§4.2–4.3);
//! * [`oplog`] — per-class operation logs and change counts (CC) for the
//!   *deferred* implementation of I1–I4;
//! * [`deferred`] — application of pending log entries when an instance is
//!   accessed.

pub mod deferred;
pub mod oplog;
pub mod taxonomy;
pub mod typechange;

pub use oplog::{FlagChange, LogEntry, OperationLog};
pub use typechange::{AttrTypeChange, Maintenance};
