//! Changes to the attribute type (paper §4.2–4.3).
//!
//! §4.2 classifies changes by implementation cost:
//!
//! * **state-independent** (remove a constraint) — I1 composite →
//!   non-composite, I2 exclusive → shared, I3 dependent → independent,
//!   I4 independent → dependent. These "simply require updates to the
//!   flags; as such, the changes may be made 'immediately' or 'deferred'."
//! * **state-dependent** (add a constraint) — D1 weak → exclusive
//!   composite, D2 weak → shared composite, D3 shared → exclusive. These
//!   "require 'immediate' verification of the flags" and are **rejected**
//!   when the flags conflict with the new constraint.

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::ClassId;
use crate::refs::ReverseRef;
use crate::schema::attr::CompositeSpec;
use crate::schema::lattice;

use super::oplog::{FlagChange, LogEntry};

/// The seven §4.2 changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrTypeChange {
    /// I1: composite attribute → non-composite (weak) attribute.
    ToNonComposite,
    /// I2: exclusive composite → shared composite.
    ExclusiveToShared,
    /// I3: dependent composite → independent composite.
    ToIndependent,
    /// I4: independent composite → dependent composite.
    ToDependent,
    /// D1: non-composite → exclusive composite (with the given dependence).
    WeakToExclusive {
        /// Dependence of the new composite reference.
        dependent: bool,
    },
    /// D2: non-composite → shared composite (with the given dependence).
    WeakToShared {
        /// Dependence of the new composite reference.
        dependent: bool,
    },
    /// D3: shared composite → exclusive composite.
    SharedToExclusive,
}

impl AttrTypeChange {
    /// True for the state-independent changes I1–I4.
    pub fn is_state_independent(self) -> bool {
        matches!(
            self,
            AttrTypeChange::ToNonComposite
                | AttrTypeChange::ExclusiveToShared
                | AttrTypeChange::ToIndependent
                | AttrTypeChange::ToDependent
        )
    }
}

/// When instance flags are brought in line with a state-independent change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Maintenance {
    /// Scan all instances of the domain class now (§4.3 'immediate').
    #[default]
    Immediate,
    /// Log the change; apply per instance on next access (§4.3 'deferred').
    Deferred,
}

impl Database {
    /// Changes the type of attribute `attr` of class `referencing` (the C'
    /// of §4.2, whose attribute A has domain class C).
    ///
    /// State-dependent changes ignore `maintenance` — they are always
    /// immediate, because their validity "depends on the consistency of
    /// these flags" (§4.3) — and return
    /// [`DbError::SchemaChangeRejected`] when verification fails.
    pub fn change_attribute_type(
        &mut self,
        referencing: ClassId,
        attr: &str,
        change: AttrTypeChange,
        maintenance: Maintenance,
    ) -> DbResult<()> {
        self.undo_forbid_ddl()?;
        self.traversal_cache.bump();
        let class = self.catalog.class(referencing)?;
        let def = class
            .attr(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: referencing,
                attr: attr.into(),
            })?
            .clone();
        // The change is applied where the attribute is defined, so every
        // inheriting subclass sees it after reflattening.
        let defining = def.inherited_from.unwrap_or(referencing);
        let domain_class =
            def.domain
                .referenced_class()
                .ok_or_else(|| DbError::SchemaChangeRejected {
                    reason: format!("attribute {attr:?} has no class domain"),
                })?;
        let spec = def.composite;

        match change {
            AttrTypeChange::ToNonComposite => {
                self.require_composite(&def, attr)?;
                self.set_spec(defining, attr, None)?;
                self.state_independent(domain_class, defining, FlagChange::DropReverse, maintenance)
            }
            AttrTypeChange::ExclusiveToShared => {
                let s = self.require_composite(&def, attr)?;
                if !s.exclusive {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already shared"),
                    });
                }
                self.set_spec(
                    defining,
                    attr,
                    Some(CompositeSpec {
                        exclusive: false,
                        ..s
                    }),
                )?;
                self.state_independent(domain_class, defining, FlagChange::ClearX, maintenance)
            }
            AttrTypeChange::ToIndependent => {
                let s = self.require_composite(&def, attr)?;
                if !s.dependent {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already independent"),
                    });
                }
                self.set_spec(
                    defining,
                    attr,
                    Some(CompositeSpec {
                        dependent: false,
                        ..s
                    }),
                )?;
                self.state_independent(domain_class, defining, FlagChange::ClearD, maintenance)
            }
            AttrTypeChange::ToDependent => {
                let s = self.require_composite(&def, attr)?;
                if s.dependent {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already dependent"),
                    });
                }
                self.set_spec(
                    defining,
                    attr,
                    Some(CompositeSpec {
                        dependent: true,
                        ..s
                    }),
                )?;
                self.state_independent(domain_class, defining, FlagChange::SetD, maintenance)
            }
            AttrTypeChange::WeakToExclusive { dependent } => {
                if spec.is_some() {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already composite"),
                    });
                }
                self.weak_to_composite(defining, attr, true, dependent)
            }
            AttrTypeChange::WeakToShared { dependent } => {
                if spec.is_some() {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already composite"),
                    });
                }
                self.weak_to_composite(defining, attr, false, dependent)
            }
            AttrTypeChange::SharedToExclusive => {
                let s = self.require_composite(&def, attr)?;
                if s.exclusive {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!("attribute {attr:?} is already exclusive"),
                    });
                }
                self.shared_to_exclusive(defining, attr, domain_class, s)
            }
        }
    }

    fn require_composite(
        &self,
        def: &crate::schema::attr::AttributeDef,
        attr: &str,
    ) -> DbResult<CompositeSpec> {
        def.composite.ok_or_else(|| DbError::SchemaChangeRejected {
            reason: format!("attribute {attr:?} is not a composite attribute"),
        })
    }

    /// Rewrites the composite spec on the defining class and reflattens.
    fn set_spec(
        &mut self,
        defining: ClassId,
        attr: &str,
        spec: Option<CompositeSpec>,
    ) -> DbResult<()> {
        let class = self.catalog.class_mut(defining)?;
        let def = class
            .local_attrs
            .iter_mut()
            .find(|a| a.name == attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: defining,
                attr: attr.into(),
            })?;
        def.composite = spec;
        self.catalog.reflatten_from(defining);
        Ok(())
    }

    /// Applies a state-independent flag change, immediately or deferred.
    /// `owner` is the class *defining* the attribute, so the change covers
    /// references held by instances of every inheriting subclass.
    fn state_independent(
        &mut self,
        domain_class: ClassId,
        owner: ClassId,
        change: FlagChange,
        maintenance: Maintenance,
    ) -> DbResult<()> {
        match maintenance {
            Maintenance::Immediate => {
                // §4.3: "accessing all instances of the class C and
                // [updating] the reverse composite references to instances
                // of the class C'."
                for oid in self.domain_instances(domain_class) {
                    let mut obj = self.get(oid)?;
                    let changed = mutate_flags(&mut obj.reverse_refs, change, |pc| {
                        lattice::is_subclass_of(&self.catalog, pc, owner)
                    });
                    if changed {
                        self.save(&obj)?;
                    }
                }
                Ok(())
            }
            Maintenance::Deferred => {
                // Bump CC and append a log entry on the domain class and all
                // its subclasses (their instances carry reverse refs too).
                let mut affected = vec![domain_class];
                affected.extend(lattice::descendants(&self.catalog, domain_class));
                for c in affected {
                    let cc = {
                        let class = self.catalog.class_mut(c)?;
                        class.change_count += 1;
                        class.change_count
                    };
                    self.oplogs.entry(c).or_default().push(LogEntry {
                        cc,
                        change,
                        source_class: owner,
                    });
                }
                Ok(())
            }
        }
    }

    /// Instances of the domain class and its subclasses.
    fn domain_instances(&self, domain_class: ClassId) -> Vec<crate::oid::Oid> {
        self.instances_of(domain_class, true)
    }

    /// D1 / D2 (§4.3): promote a weak reference to a composite reference.
    /// "Step 2 above may be very expensive, since there is no reverse
    /// reference corresponding to a weak reference" — the full referencing
    /// extension is scanned.
    fn weak_to_composite(
        &mut self,
        defining: ClassId,
        attr: &str,
        exclusive: bool,
        dependent: bool,
    ) -> DbResult<()> {
        // Step 1: access all instances of C' (the defining class and every
        // inheriting subclass) and collect targets referenced through A,
        // counting how many referencing parents each has.
        let mut edges: Vec<(crate::oid::Oid, crate::oid::Oid)> = Vec::new(); // (parent, target)
        let mut referencing_classes = vec![defining];
        referencing_classes.extend(lattice::descendants(&self.catalog, defining));
        for rc in referencing_classes {
            let Some(idx) = self.catalog.class(rc)?.attr_index(attr) else {
                continue;
            };
            for parent in self.instances_of(rc, false) {
                let obj = self.get(parent)?;
                for target in obj.attrs[idx].refs() {
                    edges.push((parent, target));
                }
            }
        }
        // Step 2: verify.
        let mut per_target: std::collections::HashMap<crate::oid::Oid, usize> =
            std::collections::HashMap::new();
        for (_, t) in &edges {
            *per_target.entry(*t).or_default() += 1;
        }
        for (&target, &count) in &per_target {
            if !self.exists(target) {
                continue;
            }
            let tobj = self.get(target)?;
            if exclusive {
                // D1: the target must have no composite reference at all,
                // and must not be about to receive two exclusive ones.
                if !tobj.reverse_refs.is_empty() || count > 1 {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!(
                            "{target} already has composite references (or multiple referencing \
                             parents); cannot make attribute {attr:?} exclusive"
                        ),
                    });
                }
            } else if tobj.has_exclusive_reverse_ref() {
                // D2: Topology Rule 3 verification.
                return Err(DbError::SchemaChangeRejected {
                    reason: format!(
                        "{target} has an exclusive composite reference; cannot make attribute \
                         {attr:?} a shared composite attribute"
                    ),
                });
            }
        }
        // Step 3: add reverse composite references and flip the schema.
        for (parent, target) in edges {
            if !self.exists(target) {
                continue;
            }
            let mut tobj = self.get(target)?;
            tobj.reverse_refs
                .push(ReverseRef::new(parent, dependent, exclusive));
            self.save(&tobj)?;
        }
        self.set_spec(
            defining,
            attr,
            Some(CompositeSpec {
                exclusive,
                dependent,
            }),
        )
    }

    /// D3 (§4.3): shared → exclusive.
    fn shared_to_exclusive(
        &mut self,
        defining: ClassId,
        attr: &str,
        domain_class: ClassId,
        spec: CompositeSpec,
    ) -> DbResult<()> {
        // Step 1: access all instances of the class C.
        let instances = self.domain_instances(domain_class);
        // Step 2: reject if an instance has more than one reverse composite
        // reference with at least one from an instance of C'.
        for &oid in &instances {
            let obj = self.get(oid)?;
            let from_cprime = obj
                .reverse_refs
                .iter()
                .any(|rr| lattice::is_subclass_of(&self.catalog, rr.parent.class, defining));
            if from_cprime && obj.reverse_refs.len() > 1 {
                return Err(DbError::SchemaChangeRejected {
                    reason: format!(
                        "{oid} has {} composite references including one from {defining}; \
                         attribute {attr:?} cannot become exclusive",
                        obj.reverse_refs.len()
                    ),
                });
            }
        }
        // Otherwise, turn on the X flag in all reverse composite references
        // to instances of the class C'.
        for oid in instances {
            let mut obj = self.get(oid)?;
            let mut changed = false;
            for rr in obj
                .reverse_refs
                .iter_mut()
                .filter(|rr| lattice::is_subclass_of(&self.catalog, rr.parent.class, defining))
            {
                if !rr.exclusive {
                    rr.exclusive = true;
                    changed = true;
                }
            }
            if changed {
                self.save(&obj)?;
            }
        }
        self.set_spec(
            defining,
            attr,
            Some(CompositeSpec {
                exclusive: true,
                ..spec
            }),
        )
    }
}

/// Applies `change` to every reverse reference whose parent class passes
/// `from_source`; returns whether anything changed.
fn mutate_flags(
    refs: &mut Vec<ReverseRef>,
    change: FlagChange,
    from_source: impl Fn(ClassId) -> bool,
) -> bool {
    let mut changed = false;
    match change {
        FlagChange::DropReverse => {
            let before = refs.len();
            refs.retain(|rr| !from_source(rr.parent.class));
            changed = refs.len() != before;
        }
        FlagChange::ClearX => {
            for rr in refs.iter_mut().filter(|rr| from_source(rr.parent.class)) {
                if rr.exclusive {
                    rr.exclusive = false;
                    changed = true;
                }
            }
        }
        FlagChange::ClearD => {
            for rr in refs.iter_mut().filter(|rr| from_source(rr.parent.class)) {
                if rr.dependent {
                    rr.dependent = false;
                    changed = true;
                }
            }
        }
        FlagChange::SetD => {
            for rr in refs.iter_mut().filter(|rr| from_source(rr.parent.class)) {
                if !rr.dependent {
                    rr.dependent = true;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::Domain;
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;
    use crate::{Database, Oid};

    /// C' = Holder with composite attr "slot" (exclusive, dependent) whose
    /// domain is C = Item; plus a weak attr "wref".
    fn setup(exclusive: bool, dependent: bool) -> (Database, ClassId, ClassId, Oid, Oid) {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(
                ClassBuilder::new("Holder")
                    .attr_composite(
                        "slot",
                        Domain::Class(item),
                        CompositeSpec {
                            exclusive,
                            dependent,
                        },
                    )
                    .attr("wref", Domain::Class(item)),
            )
            .unwrap();
        let i = db.make(item, vec![], vec![]).unwrap();
        let h = db
            .make(holder, vec![("slot", Value::Ref(i))], vec![])
            .unwrap();
        (db, holder, item, h, i)
    }

    #[test]
    fn i1_to_non_composite_immediate() {
        let (mut db, holder, item, _h, i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ToNonComposite,
            Maintenance::Immediate,
        )
        .unwrap();
        assert!(db.get(i).unwrap().reverse_refs.is_empty());
        assert!(!db.compositep(holder, Some("slot")).unwrap());
        let _ = item;
    }

    #[test]
    fn i2_exclusive_to_shared_immediate() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Immediate,
        )
        .unwrap();
        let obj = db.get(i).unwrap();
        assert_eq!(obj.ds(), vec![h], "X flag cleared, D retained");
        assert!(db.shared_compositep(holder, Some("slot")).unwrap());
    }

    #[test]
    fn i3_i4_toggle_dependence() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ToIndependent,
            Maintenance::Immediate,
        )
        .unwrap();
        assert_eq!(db.get(i).unwrap().ix(), vec![h]);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ToDependent,
            Maintenance::Immediate,
        )
        .unwrap();
        assert_eq!(db.get(i).unwrap().dx(), vec![h]);
    }

    #[test]
    fn deferred_change_applies_on_access() {
        let (mut db, holder, item, h, i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Deferred,
        )
        .unwrap();
        // The log exists; no instance scan happened yet.
        assert_eq!(db.oplogs.get(&item).map(|l| l.len()), Some(1));
        // First access applies the pending change and bumps the instance CC.
        let obj = db.get(i).unwrap();
        assert_eq!(obj.ds(), vec![h]);
        assert_eq!(obj.cc, db.class(item).unwrap().change_count);
    }

    #[test]
    fn deferred_changes_compose_in_order() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Deferred,
        )
        .unwrap();
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ToIndependent,
            Maintenance::Deferred,
        )
        .unwrap();
        let obj = db.get(i).unwrap();
        assert_eq!(obj.is_(), vec![h], "both X and D cleared, in order");
    }

    #[test]
    fn new_instances_start_at_current_cc() {
        let (mut db, holder, item, _h, _i) = setup(true, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Deferred,
        )
        .unwrap();
        let fresh = db.make(item, vec![], vec![]).unwrap();
        let obj = db.get(fresh).unwrap();
        assert_eq!(
            obj.cc,
            db.class(item).unwrap().change_count,
            "no stale pending changes"
        );
    }

    #[test]
    fn d1_weak_to_exclusive_succeeds_when_clean() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        // Point the weak attr at a fresh item with no composite refs.
        let item2 = db.class_by_name("Item").unwrap();
        let j = db.make(item2, vec![], vec![]).unwrap();
        db.set_attr(h, "wref", Value::Ref(j)).unwrap();
        db.change_attribute_type(
            holder,
            "wref",
            AttrTypeChange::WeakToExclusive { dependent: false },
            Maintenance::Immediate,
        )
        .unwrap();
        assert_eq!(db.get(j).unwrap().ix(), vec![h]);
        let _ = i;
    }

    #[test]
    fn d1_rejected_when_target_already_composite() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        // The weak attr points at i, which already has a composite ref.
        db.set_attr(h, "wref", Value::Ref(i)).unwrap();
        let err = db
            .change_attribute_type(
                holder,
                "wref",
                AttrTypeChange::WeakToExclusive { dependent: true },
                Maintenance::Immediate,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaChangeRejected { .. }));
        // And nothing was half-applied.
        assert!(!db.compositep(holder, Some("wref")).unwrap());
    }

    #[test]
    fn d1_rejected_when_two_parents_reference_same_target() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(ClassBuilder::new("Holder").attr("wref", Domain::Class(item)))
            .unwrap();
        let i = db.make(item, vec![], vec![]).unwrap();
        let _h1 = db
            .make(holder, vec![("wref", Value::Ref(i))], vec![])
            .unwrap();
        let _h2 = db
            .make(holder, vec![("wref", Value::Ref(i))], vec![])
            .unwrap();
        let err = db
            .change_attribute_type(
                holder,
                "wref",
                AttrTypeChange::WeakToExclusive { dependent: false },
                Maintenance::Immediate,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaChangeRejected { .. }));
    }

    #[test]
    fn d2_weak_to_shared_rejected_on_exclusive_target() {
        let (mut db, holder, _item, h, i) = setup(true, true);
        db.set_attr(h, "wref", Value::Ref(i)).unwrap();
        let err = db
            .change_attribute_type(
                holder,
                "wref",
                AttrTypeChange::WeakToShared { dependent: true },
                Maintenance::Immediate,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaChangeRejected { .. }));
    }

    #[test]
    fn d2_weak_to_shared_succeeds_and_shares() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(ClassBuilder::new("Holder").attr("wref", Domain::Class(item)))
            .unwrap();
        let i = db.make(item, vec![], vec![]).unwrap();
        let h1 = db
            .make(holder, vec![("wref", Value::Ref(i))], vec![])
            .unwrap();
        let h2 = db
            .make(holder, vec![("wref", Value::Ref(i))], vec![])
            .unwrap();
        db.change_attribute_type(
            holder,
            "wref",
            AttrTypeChange::WeakToShared { dependent: false },
            Maintenance::Immediate,
        )
        .unwrap();
        let mut parents = db.get(i).unwrap().is_();
        parents.sort();
        assert_eq!(parents, vec![h1, h2]);
    }

    #[test]
    fn d3_shared_to_exclusive_verifies_cardinality() {
        // One shared parent: OK.
        let (mut db, holder, _item, h, i) = setup(false, true);
        db.change_attribute_type(
            holder,
            "slot",
            AttrTypeChange::SharedToExclusive,
            Maintenance::Immediate,
        )
        .unwrap();
        assert_eq!(db.get(i).unwrap().dx(), vec![h]);
        assert!(db.exclusive_compositep(holder, Some("slot")).unwrap());
    }

    #[test]
    fn d3_rejected_when_target_has_multiple_parents() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(ClassBuilder::new("Holder").attr_composite(
                "slot",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        let i = db.make(item, vec![], vec![]).unwrap();
        let _h1 = db
            .make(holder, vec![("slot", Value::Ref(i))], vec![])
            .unwrap();
        let _h2 = db
            .make(holder, vec![("slot", Value::Ref(i))], vec![])
            .unwrap();
        let err = db
            .change_attribute_type(
                holder,
                "slot",
                AttrTypeChange::SharedToExclusive,
                Maintenance::Immediate,
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaChangeRejected { .. }));
        // Flags untouched.
        assert_eq!(db.get(i).unwrap().ds().len(), 2);
    }

    #[test]
    fn nonsense_transitions_are_rejected() {
        let (mut db, holder, _item, _h, _i) = setup(false, false);
        // shared attr: exclusive->shared is a no-op request.
        assert!(db
            .change_attribute_type(
                holder,
                "slot",
                AttrTypeChange::ExclusiveToShared,
                Maintenance::Immediate
            )
            .is_err());
        // independent attr: ->independent rejected.
        assert!(db
            .change_attribute_type(
                holder,
                "slot",
                AttrTypeChange::ToIndependent,
                Maintenance::Immediate
            )
            .is_err());
        // composite attr: weak->composite rejected.
        assert!(db
            .change_attribute_type(
                holder,
                "slot",
                AttrTypeChange::WeakToShared { dependent: false },
                Maintenance::Immediate
            )
            .is_err());
        // weak attr: shared->exclusive rejected (not composite).
        assert!(db
            .change_attribute_type(
                holder,
                "wref",
                AttrTypeChange::SharedToExclusive,
                Maintenance::Immediate
            )
            .is_err());
    }

    #[test]
    fn inherited_attribute_changes_at_the_defining_class() {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let base = db
            .define_class(ClassBuilder::new("Base").attr_composite(
                "slot",
                Domain::Class(item),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let derived = db
            .define_class(ClassBuilder::new("Derived").superclass(base))
            .unwrap();
        let i = db.make(item, vec![], vec![]).unwrap();
        let d = db
            .make(derived, vec![("slot", Value::Ref(i))], vec![])
            .unwrap();
        // Change issued against the *subclass*; must land on Base and apply
        // to refs from Derived instances too.
        db.change_attribute_type(
            derived,
            "slot",
            AttrTypeChange::ExclusiveToShared,
            Maintenance::Immediate,
        )
        .unwrap();
        assert!(db.shared_compositep(base, Some("slot")).unwrap());
        assert!(db.shared_compositep(derived, Some("slot")).unwrap());
        assert_eq!(db.get(i).unwrap().ds(), vec![d]);
    }
}
