//! Operation logs and change counts (paper §4.3).
//!
//! > "The 'deferred' implementation of state-independent changes involves
//! > keeping an *operation log* of changes to the attribute types in a
//! > class. … An operation log for a class C maintains, for each change,
//! > the change type and change count (CC), as well as the identifier of
//! > the class of whose attribute C is the domain. Initially, CC is zero
//! > and is incremented by one each time the type of attribute in a class C
//! > is changed."
//!
//! The log lives keyed by the *domain* class C (the class whose instances
//! carry the reverse references that need flag updates); each entry records
//! the *referencing* class C'.

use crate::oid::ClassId;

/// The reverse-reference effect of one state-independent change (I1–I4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagChange {
    /// I1 — composite → non-composite: drop the reverse references.
    DropReverse,
    /// I2 — exclusive → shared: turn off the X flag.
    ClearX,
    /// I3 — dependent → independent: turn off the D flag.
    ClearD,
    /// I4 — independent → dependent: turn on the D flag.
    SetD,
}

/// One deferred change in a class's operation log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Change count this entry was issued at (strictly increasing).
    pub cc: u64,
    /// The flag effect to apply.
    pub change: FlagChange,
    /// The referencing class C' whose instances' reverse references are
    /// affected (instances of subclasses of C' included, since they inherit
    /// the attribute).
    pub source_class: ClassId,
}

/// The operation log of one domain class.
#[derive(Debug, Clone, Default)]
pub struct OperationLog {
    entries: Vec<LogEntry>,
}

impl OperationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        OperationLog::default()
    }

    /// Appends an entry; `cc` must exceed every existing entry's.
    pub fn push(&mut self, entry: LogEntry) {
        debug_assert!(self.entries.last().map(|e| e.cc < entry.cc).unwrap_or(true));
        self.entries.push(entry);
    }

    /// Entries issued after an instance's change count, in issue order —
    /// "the changes that must be made are the ones with a CC which is
    /// greater than the CC of the instance".
    pub fn pending_since(&self, instance_cc: u64) -> &[LogEntry] {
        let start = self.entries.partition_point(|e| e.cc <= instance_cc);
        &self.entries[start..]
    }

    /// Number of entries in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_since_partitions_by_cc() {
        let mut log = OperationLog::new();
        for cc in 1..=4 {
            log.push(LogEntry {
                cc,
                change: FlagChange::ClearX,
                source_class: ClassId(1),
            });
        }
        assert_eq!(log.pending_since(0).len(), 4);
        assert_eq!(log.pending_since(2).len(), 2);
        assert_eq!(log.pending_since(2)[0].cc, 3);
        assert!(log.pending_since(4).is_empty());
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    fn empty_log_has_no_pending() {
        let log = OperationLog::new();
        assert!(log.pending_since(0).is_empty());
        assert!(log.is_empty());
    }
}
