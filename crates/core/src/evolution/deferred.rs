//! Deferred application of state-independent changes (paper §4.3).
//!
//! > "When an instance of C is accessed, the CC of the instance is checked
//! > against the CC in the operation log associated with the class: if
//! > CC(instance) < CC(class), then the flags in the reverse composite
//! > references in the instance must be modified. … Once the changes have
//! > been applied, the CC in the instance is set to the highest CC in the
//! > operation log. When a new instance of the class C is created, the CC
//! > of the instance is set to the current value of the CC of the class."
//!
//! This hook is called from [`crate::Database::get`], i.e. on *every*
//! access path (reads, traversals, deletion), so no stale flags can ever be
//! observed.

use crate::db::Database;
use crate::error::DbResult;
use crate::object::Object;
use crate::oid::ClassId;
use crate::schema::lattice;

use super::oplog::FlagChange;

/// Applies every pending log entry to `obj`; returns `true` if the object
/// changed (including a bare CC bump) and must be re-persisted.
pub(crate) fn apply_pending(db: &Database, obj: &mut Object) -> DbResult<bool> {
    let class_cc = db.catalog.class(obj.oid.class)?.change_count;
    if obj.cc >= class_cc {
        return Ok(false);
    }
    if let Some(log) = db.oplogs.get(&obj.oid.class) {
        for entry in log.pending_since(obj.cc) {
            apply_one(db, obj, entry.change, entry.source_class);
        }
    }
    obj.cc = class_cc;
    Ok(true)
}

fn apply_one(db: &Database, obj: &mut Object, change: FlagChange, source: ClassId) {
    let from_source =
        |parent_class: ClassId| lattice::is_subclass_of(&db.catalog, parent_class, source);
    match change {
        FlagChange::DropReverse => {
            obj.reverse_refs.retain(|rr| !from_source(rr.parent.class));
        }
        FlagChange::ClearX => {
            for rr in obj
                .reverse_refs
                .iter_mut()
                .filter(|rr| from_source(rr.parent.class))
            {
                rr.exclusive = false;
            }
        }
        FlagChange::ClearD => {
            for rr in obj
                .reverse_refs
                .iter_mut()
                .filter(|rr| from_source(rr.parent.class))
            {
                rr.dependent = false;
            }
        }
        FlagChange::SetD => {
            for rr in obj
                .reverse_refs
                .iter_mut()
                .filter(|rr| from_source(rr.parent.class))
            {
                rr.dependent = true;
            }
        }
    }
}
