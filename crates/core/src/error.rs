//! Engine error type.

use std::fmt;

use corion_storage::StorageError;

use crate::oid::{ClassId, Oid};
use crate::refs::RefKind;

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by the CORION engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A class name that is not in the catalog.
    NoSuchClassName(String),
    /// A class id that is not in the catalog.
    NoSuchClass(ClassId),
    /// An attribute name that does not exist on the class.
    NoSuchAttribute {
        /// Class looked up on.
        class: ClassId,
        /// The missing attribute.
        attr: String,
    },
    /// An OID that does not resolve to a live object.
    NoSuchObject(Oid),
    /// A class with this name already exists.
    DuplicateClass(String),
    /// An attribute with this name already exists on the class (or an
    /// ancestor it inherits from).
    DuplicateAttribute {
        /// Class being defined or changed.
        class: ClassId,
        /// The clashing attribute name.
        attr: String,
    },
    /// A value did not match the attribute's domain.
    DomainMismatch {
        /// Attribute being assigned.
        attr: String,
        /// What the domain expected.
        expected: String,
        /// What was supplied.
        got: String,
    },
    /// Violation of one of the Topology Rules of §2.2.
    TopologyViolation {
        /// Which rule (1–4) was violated.
        rule: u8,
        /// The object whose parent sets violate the rule.
        object: Oid,
        /// Explanation in the paper's vocabulary.
        detail: String,
    },
    /// Violation of the Make-Component Rule of §2.2.
    MakeComponentViolation {
        /// The would-be component.
        object: Oid,
        /// The reference kind that was being added.
        adding: RefKind,
        /// Explanation.
        detail: String,
    },
    /// Making `child` a component of `parent` would close a part-hierarchy
    /// cycle (`parent` is already in the component set of `child`).
    CycleDetected {
        /// The would-be component.
        child: Oid,
        /// The would-be parent.
        parent: Oid,
    },
    /// A schema change was rejected (state-dependent changes D1–D3 verify
    /// the X flags and reject on conflict, §4.3).
    SchemaChangeRejected {
        /// Explanation.
        reason: String,
    },
    /// An IS-A edge would create a cycle in the class lattice.
    LatticeCycle {
        /// Class being edited.
        class: ClassId,
        /// Superclass that would close the cycle.
        superclass: ClassId,
    },
    /// The operation requires a composite attribute but the attribute is
    /// weak or non-reference.
    NotComposite {
        /// Class holding the attribute.
        class: ClassId,
        /// The attribute name.
        attr: String,
    },
    /// A transaction-control request that the engine's current state
    /// forbids: nested `begin_transaction`, `commit`/`abort` with no
    /// transaction open, DDL or `make_many` forward references inside a
    /// transaction, mixing transactions with an undo scope, or committing
    /// a transaction that already hit a storage fault.
    TransactionState {
        /// Explanation.
        reason: String,
    },
    /// The transaction was chosen as the deadlock victim: the lock
    /// manager found a waits-for cycle and aborted the requester (§7's
    /// protocol is blocking, so cycles are broken by aborting). The
    /// transaction's effects are rolled back; the operation is safe to
    /// retry in a fresh transaction — see
    /// [`is_retryable`](DbError::is_retryable).
    Deadlock {
        /// The waits-for cycle, rendered for diagnostics.
        cycle: String,
    },
    /// The engine is degraded to read-only: a committed batch could not be
    /// fully applied, so reads keep answering (from the buffer pool and the
    /// traversal cache) while every mutation fails fast with this error
    /// until [`recover`](crate::Database::recover) restores health.
    ReadOnly,
    /// Error from the storage substrate.
    Storage(StorageError),
}

impl DbError {
    /// Whether the error is *transient* — the failed operation may succeed
    /// if retried (the retry budget of the storage layer was exhausted,
    /// but the underlying fault heals on its own). Every semantic error is
    /// permanent: retrying a topology violation cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(self, DbError::Storage(e) if e.is_transient())
    }

    /// Whether a *transaction* that failed with this error is worth
    /// retrying from the top. Strictly wider than
    /// [`is_transient`](DbError::is_transient): a deadlock victim's
    /// effects are fully rolled back and the cycle is broken, so a
    /// fresh attempt is expected to succeed once the other party
    /// finishes.
    pub fn is_retryable(&self) -> bool {
        self.is_transient() || matches!(self, DbError::Deadlock { .. })
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchClassName(n) => write!(f, "no class named {n:?}"),
            DbError::NoSuchClass(c) => write!(f, "no class with id {c}"),
            DbError::NoSuchAttribute { class, attr } => {
                write!(f, "class {class} has no attribute {attr:?}")
            }
            DbError::NoSuchObject(o) => write!(f, "object {o} does not exist"),
            DbError::DuplicateClass(n) => write!(f, "class {n:?} already exists"),
            DbError::DuplicateAttribute { class, attr } => {
                write!(f, "class {class} already has attribute {attr:?}")
            }
            DbError::DomainMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute {attr:?} expects {expected}, got {got}")
            }
            DbError::TopologyViolation {
                rule,
                object,
                detail,
            } => {
                write!(f, "topology rule {rule} violated at {object}: {detail}")
            }
            DbError::MakeComponentViolation {
                object,
                adding,
                detail,
            } => {
                write!(f, "cannot add {adding} reference to {object}: {detail}")
            }
            DbError::CycleDetected { child, parent } => {
                write!(
                    f,
                    "making {child} part of {parent} would create a part-hierarchy cycle"
                )
            }
            DbError::SchemaChangeRejected { reason } => {
                write!(f, "schema change rejected: {reason}")
            }
            DbError::LatticeCycle { class, superclass } => {
                write!(
                    f,
                    "adding {superclass} as superclass of {class} would create an IS-A cycle"
                )
            }
            DbError::NotComposite { class, attr } => {
                write!(
                    f,
                    "attribute {attr:?} of class {class} is not a composite attribute"
                )
            }
            DbError::TransactionState { reason } => {
                write!(f, "transaction control rejected: {reason}")
            }
            DbError::Deadlock { cycle } => {
                write!(
                    f,
                    "transaction aborted as deadlock victim (waits-for cycle: {cycle}); retry it"
                )
            }
            DbError::ReadOnly => {
                write!(
                    f,
                    "the database is degraded to read-only until it is recovered"
                )
            }
            DbError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        match e {
            // The degraded-mode rejection is an engine-level condition, not
            // a substrate failure: surface it as the typed engine error so
            // callers can match on `DbError::ReadOnly` directly.
            StorageError::ReadOnly => DbError::ReadOnly,
            e => DbError::Storage(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = DbError::TopologyViolation {
            rule: 3,
            object: Oid::new(ClassId(1), 5),
            detail: "exclusive and shared references cannot coexist".into(),
        };
        let s = e.to_string();
        assert!(s.contains("rule 3") && s.contains("c1.i5"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: DbError = StorageError::PoolExhausted.into();
        assert!(matches!(e, DbError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn storage_read_only_maps_to_typed_read_only() {
        let e: DbError = StorageError::ReadOnly.into();
        assert_eq!(e, DbError::ReadOnly);
        assert!(e.to_string().contains("read-only"));
    }

    #[test]
    fn transience_follows_the_storage_taxonomy() {
        let t: DbError = StorageError::TransientFault { op: "x" }.into();
        assert!(t.is_transient());
        assert!(!DbError::ReadOnly.is_transient());
        assert!(!DbError::NoSuchClass(ClassId(1)).is_transient());
        let p: DbError = StorageError::InjectedFault { op: "x" }.into();
        assert!(!p.is_transient());
    }
}
