//! Queries over class extensions.
//!
//! ORION supported associative queries against class extensions alongside
//! the navigational messages of §3. The reproduction needs them too — the
//! paper's examples keep asking questions like "the vehicles whose body is
//! shared", "the documents containing this paragraph" — so this module
//! provides a small, composable predicate algebra evaluated against a class
//! extension (optionally including subclass instances), with predicates
//! over attribute values *and* over composite structure.
//!
//! ```
//! use corion_core::{Database, ClassBuilder, Domain, Value};
//! use corion_core::query::{Query, Predicate as P};
//!
//! let mut db = Database::new();
//! let part = db.define_class(ClassBuilder::new("Part").attr("n", Domain::Integer)).unwrap();
//! for i in 0..10 {
//!     db.make(part, vec![("n", Value::Int(i))], vec![]).unwrap();
//! }
//! let heavy = Query::over(part).filter(P::gt("n", Value::Int(6))).run(&mut db).unwrap();
//! assert_eq!(heavy.len(), 3);
//! ```

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::{ClassId, Oid};
use crate::value::Value;

/// A predicate over one object.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true (the empty filter).
    True,
    /// `attr == value`.
    Eq(String, Value),
    /// `attr != value`.
    Ne(String, Value),
    /// `attr < value` (numeric or string ordering; Null never compares).
    Lt(String, Value),
    /// `attr > value`.
    Gt(String, Value),
    /// The attribute's value references `target` (directly or inside a set).
    References(String, Oid),
    /// The object is a (direct or indirect) component of `target` (§3.2
    /// `component-of` as a predicate).
    ComponentOf(Oid),
    /// The object has at least one composite parent (it is not a root).
    HasCompositeParent,
    /// The object has a component that is an instance of `class` (deep).
    HasComponentOfClass(ClassId),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr == value`.
    pub fn eq(attr: impl Into<String>, value: Value) -> Self {
        Predicate::Eq(attr.into(), value)
    }

    /// `attr != value`.
    pub fn ne(attr: impl Into<String>, value: Value) -> Self {
        Predicate::Ne(attr.into(), value)
    }

    /// `attr < value`.
    pub fn lt(attr: impl Into<String>, value: Value) -> Self {
        Predicate::Lt(attr.into(), value)
    }

    /// `attr > value`.
    pub fn gt(attr: impl Into<String>, value: Value) -> Self {
        Predicate::Gt(attr.into(), value)
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut ps) => {
                ps.push(other);
                Predicate::And(ps)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        match self {
            Predicate::Or(mut ps) => {
                ps.push(other);
                Predicate::Or(ps)
            }
            p => Predicate::Or(vec![p, other]),
        }
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    fn eval(&self, db: &mut Database, oid: Oid) -> DbResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(attr, v) => &db.get_attr(oid, attr)? == v,
            Predicate::Ne(attr, v) => &db.get_attr(oid, attr)? != v,
            Predicate::Lt(attr, v) => {
                compare(&db.get_attr(oid, attr)?, v) == Some(std::cmp::Ordering::Less)
            }
            Predicate::Gt(attr, v) => {
                compare(&db.get_attr(oid, attr)?, v) == Some(std::cmp::Ordering::Greater)
            }
            Predicate::References(attr, target) => db.get_attr(oid, attr)?.references(*target),
            Predicate::ComponentOf(target) => db.component_of(oid, *target)?,
            Predicate::HasCompositeParent => !db.get(oid)?.reverse_refs.is_empty(),
            Predicate::HasComponentOfClass(class) => {
                let filter = crate::composite::Filter::all().classes(vec![*class]);
                !db.components_of(oid, &filter)?.is_empty()
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(db, oid)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(db, oid)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(db, oid)?,
        })
    }
}

/// Orders two values of the same primitive kind.
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A query over one class extension.
#[derive(Debug, Clone)]
pub struct Query {
    class: ClassId,
    deep: bool,
    predicate: Predicate,
    limit: Option<usize>,
}

impl Query {
    /// Starts a query over the instances of `class` (subclass instances
    /// included — use [`Query::shallow`] to restrict to direct instances).
    pub fn over(class: ClassId) -> Self {
        Query {
            class,
            deep: true,
            predicate: Predicate::True,
            limit: None,
        }
    }

    /// Restricts to direct instances of the class.
    pub fn shallow(mut self) -> Self {
        self.deep = false;
        self
    }

    /// Adds a predicate (ANDed with any existing one).
    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicate = match self.predicate {
            Predicate::True => p,
            existing => existing.and(p),
        };
        self
    }

    /// Stops after `n` matches.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Evaluates the query.
    pub fn run(&self, db: &mut Database) -> DbResult<Vec<Oid>> {
        db.class(self.class)?; // validate
        let mut out = Vec::new();
        for oid in db.instances_of(self.class, self.deep) {
            if !db.exists(oid) {
                continue;
            }
            match self.predicate.eval(db, oid) {
                Ok(true) => {
                    out.push(oid);
                    if Some(out.len()) == self.limit {
                        break;
                    }
                }
                Ok(false) => {}
                // A predicate naming an attribute some subclass lacks is a
                // real error; propagate.
                Err(e @ DbError::NoSuchAttribute { .. }) => return Err(e),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Evaluates and counts without materialising.
    pub fn count(&self, db: &mut Database) -> DbResult<usize> {
        Ok(self.run(db)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Predicate as P;
    use super::*;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;

    fn world() -> (Database, ClassId, ClassId, Vec<Oid>, Vec<Oid>) {
        let mut db = Database::new();
        let part = db
            .define_class(
                ClassBuilder::new("Part")
                    .attr("n", Domain::Integer)
                    .attr("tag", Domain::String),
            )
            .unwrap();
        let asm = db
            .define_class(
                ClassBuilder::new("Asm")
                    .attr("label", Domain::String)
                    .attr_composite(
                        "parts",
                        Domain::SetOf(Box::new(Domain::Class(part))),
                        CompositeSpec {
                            exclusive: false,
                            dependent: false,
                        },
                    ),
            )
            .unwrap();
        let parts: Vec<Oid> = (0..10)
            .map(|i| {
                db.make(
                    part,
                    vec![
                        ("n", Value::Int(i)),
                        (
                            "tag",
                            Value::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
                        ),
                    ],
                    vec![],
                )
                .unwrap()
            })
            .collect();
        let asms: Vec<Oid> = (0..3)
            .map(|i| {
                let members: Vec<Value> = parts[i * 3..i * 3 + 3]
                    .iter()
                    .map(|&p| Value::Ref(p))
                    .collect();
                db.make(
                    asm,
                    vec![
                        ("label", Value::Str(format!("a{i}"))),
                        ("parts", Value::Set(members)),
                    ],
                    vec![],
                )
                .unwrap()
            })
            .collect();
        (db, part, asm, parts, asms)
    }

    #[test]
    fn comparison_predicates() {
        let (mut db, part, ..) = world();
        assert_eq!(
            Query::over(part)
                .filter(P::gt("n", Value::Int(6)))
                .run(&mut db)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            Query::over(part)
                .filter(P::lt("n", Value::Int(2)))
                .run(&mut db)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Query::over(part)
                .filter(P::eq("tag", Value::Str("even".into())))
                .count(&mut db)
                .unwrap(),
            5
        );
        assert_eq!(
            Query::over(part)
                .filter(P::ne("tag", Value::Str("even".into())))
                .count(&mut db)
                .unwrap(),
            5
        );
    }

    #[test]
    fn boolean_combinators() {
        let (mut db, part, ..) = world();
        let q = Query::over(part).filter(P::gt("n", Value::Int(2)).and(P::lt("n", Value::Int(7))));
        assert_eq!(q.count(&mut db).unwrap(), 4, "3..=6");
        let q = Query::over(part).filter(P::eq("n", Value::Int(0)).or(P::eq("n", Value::Int(9))));
        assert_eq!(q.count(&mut db).unwrap(), 2);
        let q = Query::over(part).filter(P::eq("tag", Value::Str("even".into())).not());
        assert_eq!(q.count(&mut db).unwrap(), 5);
    }

    #[test]
    fn composite_structure_predicates() {
        let (mut db, part, asm, parts, asms) = world();
        // Parts 0..9: only 0..=8 are components (3 assemblies × 3 parts).
        let members = Query::over(part)
            .filter(P::HasCompositeParent)
            .run(&mut db)
            .unwrap();
        assert_eq!(members.len(), 9);
        assert!(!members.contains(&parts[9]));
        // component-of as a predicate.
        let of_a1 = Query::over(part)
            .filter(P::ComponentOf(asms[1]))
            .run(&mut db)
            .unwrap();
        assert_eq!(of_a1, parts[3..6].to_vec());
        // Which assemblies contain parts at all?
        let with_parts = Query::over(asm)
            .filter(P::HasComponentOfClass(part))
            .run(&mut db)
            .unwrap();
        assert_eq!(with_parts.len(), 3);
        // References: the assembly whose set holds parts[4].
        let holding = Query::over(asm)
            .filter(P::References("parts".into(), parts[4]))
            .run(&mut db)
            .unwrap();
        assert_eq!(holding, vec![asms[1]]);
    }

    #[test]
    fn deep_queries_span_subclasses() {
        let mut db = Database::new();
        let base = db
            .define_class(ClassBuilder::new("Base").attr("n", Domain::Integer))
            .unwrap();
        let derived = db
            .define_class(ClassBuilder::new("Derived").superclass(base))
            .unwrap();
        db.make(base, vec![("n", Value::Int(1))], vec![]).unwrap();
        db.make(derived, vec![("n", Value::Int(2))], vec![])
            .unwrap();
        assert_eq!(Query::over(base).count(&mut db).unwrap(), 2);
        assert_eq!(Query::over(base).shallow().count(&mut db).unwrap(), 1);
        assert_eq!(
            Query::over(base)
                .filter(P::gt("n", Value::Int(1)))
                .count(&mut db)
                .unwrap(),
            1
        );
    }

    #[test]
    fn limit_short_circuits() {
        let (mut db, part, ..) = world();
        let some = Query::over(part).limit(4).run(&mut db).unwrap();
        assert_eq!(some.len(), 4);
    }

    #[test]
    fn null_never_compares() {
        let mut db = Database::new();
        let c = db
            .define_class(ClassBuilder::new("C").attr("n", Domain::Integer))
            .unwrap();
        db.make(c, vec![], vec![]).unwrap(); // n = Null
        assert_eq!(
            Query::over(c)
                .filter(P::gt("n", Value::Int(0)))
                .count(&mut db)
                .unwrap(),
            0
        );
        assert_eq!(
            Query::over(c)
                .filter(P::lt("n", Value::Int(0)))
                .count(&mut db)
                .unwrap(),
            0
        );
        assert_eq!(
            Query::over(c)
                .filter(P::eq("n", Value::Null))
                .count(&mut db)
                .unwrap(),
            1
        );
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (mut db, part, ..) = world();
        assert!(Query::over(part)
            .filter(P::eq("nope", Value::Int(1)))
            .run(&mut db)
            .is_err());
        assert!(Query::over(ClassId(99)).run(&mut db).is_err());
    }
}
