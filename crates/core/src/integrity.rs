//! Whole-database integrity verification.
//!
//! Composite objects are "a unit for one type of semantic integrity"
//! (paper §1): the engine maintains, at all times,
//!
//! 1. **Topology Rules 1–4** at every object (§2.2) — Rules 1–3 over the
//!    parent sets, and Rule 4 in its checkable form: weak references are
//!    unconstrained *because* they are never recorded in reverse
//!    references, so any stored reverse reference whose D/X flags match no
//!    composite attribute of its parent's class is a phantom fifth
//!    reference type the topology does not admit;
//! 2. **bidirectional consistency** — every forward composite reference has
//!    exactly one matching reverse composite reference with the attribute's
//!    current D/X flags, and no reverse reference lacks its forward
//!    counterpart (§2.4);
//! 3. **no dangling composite references** — every composite reference
//!    target exists (weak references may dangle, ORION-style);
//! 4. **layout alignment** — every instance has exactly one value per
//!    effective attribute of its class.
//!
//! [`Database::verify_integrity`] checks all four over the whole database
//! and returns a census. Property tests drive random operation sequences
//! against it; applications can call it after bulk loads.

use std::collections::HashMap;

use crate::composite::topology::ParentSets;
use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::Oid;

/// Census returned by a successful integrity pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Live objects visited.
    pub objects: usize,
    /// Composite references (= reverse references) verified.
    pub composite_edges: usize,
    /// Weak references encountered (dangling ones included — they are
    /// legal).
    pub weak_refs: usize,
}

impl Database {
    /// Verifies invariants 1–4 over every live object.
    ///
    /// Returns [`DbError::TopologyViolation`] /
    /// [`DbError::SchemaChangeRejected`]-style errors describing the first
    /// violation found; a clean pass returns the census.
    pub fn verify_integrity(&mut self) -> DbResult<IntegrityReport> {
        let classes = self.catalog.all_classes();
        let mut forward: HashMap<Oid, Vec<(Oid, bool, bool)>> = HashMap::new();
        let mut all_objects: Vec<Oid> = Vec::new();
        let mut weak_refs = 0usize;
        for class in &classes {
            for oid in self.instances_of(*class, false) {
                all_objects.push(oid);
                let cdef = self.catalog.class(oid.class)?.clone();
                let obj = self.get(oid)?;
                if obj.attrs.len() != cdef.attrs.len() {
                    return Err(DbError::SchemaChangeRejected {
                        reason: format!(
                            "instance {oid} has {} values but class {} has {} attributes",
                            obj.attrs.len(),
                            cdef.id,
                            cdef.attrs.len()
                        ),
                    });
                }
                for (idx, def) in cdef.attrs.iter().enumerate() {
                    let refs = obj.attrs[idx].refs();
                    match def.composite {
                        Some(spec) => {
                            for r in refs {
                                if !self.exists(r) {
                                    return Err(DbError::NoSuchObject(r));
                                }
                                forward.entry(r).or_default().push((
                                    oid,
                                    spec.dependent,
                                    spec.exclusive,
                                ));
                            }
                        }
                        None => weak_refs += refs.len(),
                    }
                }
            }
        }
        let mut composite_edges = 0usize;
        for oid in &all_objects {
            let obj = self.get(*oid)?;
            ParentSets::of(&obj).check(*oid)?;
            // Rule 4 (checkable form): every stored reverse reference must
            // be typeable by its parent's schema — some composite attribute
            // of the parent's class carries exactly these D/X flags. A
            // reverse reference no attribute could have produced is a
            // phantom reference type, which Rule 4 does not admit.
            for r in &obj.reverse_refs {
                let admitted = self.catalog.class(r.parent.class).is_ok_and(|pclass| {
                    pclass.attrs.iter().any(|def| {
                        def.composite.is_some_and(|spec| {
                            spec.dependent == r.dependent && spec.exclusive == r.exclusive
                        })
                    })
                });
                if !admitted {
                    return Err(DbError::TopologyViolation {
                        rule: 4,
                        object: *oid,
                        detail: format!(
                            "reverse reference to {} carries flags (D={}, X={}) that no \
                             composite attribute of class {} admits",
                            r.parent, r.dependent, r.exclusive, r.parent.class
                        ),
                    });
                }
            }
            let mut actual: Vec<(Oid, bool, bool)> = obj
                .reverse_refs
                .iter()
                .map(|r| (r.parent, r.dependent, r.exclusive))
                .collect();
            let mut expected = forward.remove(oid).unwrap_or_default();
            actual.sort();
            expected.sort();
            if actual != expected {
                return Err(DbError::SchemaChangeRejected {
                    reason: format!(
                        "reverse references of {oid} out of sync: stored {actual:?}, \
                         derived from forward references {expected:?}"
                    ),
                });
            }
            composite_edges += actual.len();
        }
        if let Some((target, _)) = forward.into_iter().next() {
            return Err(DbError::NoSuchObject(target));
        }
        Ok(IntegrityReport {
            objects: all_objects.len(),
            composite_edges,
            weak_refs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;

    #[test]
    fn clean_database_passes_with_census() {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(
                ClassBuilder::new("Asm")
                    .attr_composite(
                        "parts",
                        Domain::SetOf(Box::new(Domain::Class(part))),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    )
                    .attr("note", Domain::Class(part)),
            )
            .unwrap();
        let p1 = db.make(part, vec![], vec![]).unwrap();
        let p2 = db.make(part, vec![], vec![]).unwrap();
        let _a = db
            .make(
                asm,
                vec![
                    ("parts", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)])),
                    ("note", Value::Ref(p1)),
                ],
                vec![],
            )
            .unwrap();
        let report = db.verify_integrity().unwrap();
        assert_eq!(report.objects, 3);
        assert_eq!(report.composite_edges, 2);
        assert_eq!(report.weak_refs, 1);
    }

    #[test]
    fn dangling_weak_reference_is_legal() {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let holder = db
            .define_class(ClassBuilder::new("Holder").attr("w", Domain::Class(part)))
            .unwrap();
        let p = db.make(part, vec![], vec![]).unwrap();
        let _h = db.make(holder, vec![("w", Value::Ref(p))], vec![]).unwrap();
        db.delete(p).unwrap();
        let report = db.verify_integrity().unwrap();
        assert_eq!(
            report.weak_refs, 1,
            "dangling weak ref counted, not rejected"
        );
    }

    #[test]
    fn rule4_phantom_reverse_ref_flags_are_rejected() {
        // Asm's only composite attribute is exclusive+dependent; a reverse
        // reference claiming an independent-shared (IS) edge from an Asm
        // parent is a phantom reference type no attribute could produce.
        // A single IS reference passes Rules 1–3, so only the Rule-4
        // extension can catch it.
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Asm").attr_composite(
                "part",
                Domain::Class(part),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let p = db.make(part, vec![], vec![]).unwrap();
        let a = db.make(asm, vec![], vec![]).unwrap();

        let mut obj = db.get(p).unwrap();
        obj.reverse_refs
            .push(crate::refs::ReverseRef::new(a, false, false));
        db.raw_overwrite_object(&obj).unwrap();

        let err = db.verify_integrity().unwrap_err();
        assert!(
            matches!(err, DbError::TopologyViolation { rule: 4, .. }),
            "expected a rule-4 violation, got {err}"
        );
    }

    #[test]
    fn integrity_holds_after_heavy_mutation() {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        db.add_attribute(
            part,
            crate::schema::attr::AttributeDef::composite(
                "kids",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: false,
                    dependent: false,
                },
            ),
        )
        .unwrap();
        let objs: Vec<_> = (0..20)
            .map(|_| db.make(part, vec![], vec![]).unwrap())
            .collect();
        for i in 0..20 {
            for j in 0..20 {
                if i != j && (i + j) % 3 == 0 {
                    let _ = db.make_component(objs[j], objs[i], "kids");
                }
            }
        }
        for o in objs.iter().step_by(4) {
            if db.exists(*o) {
                db.delete(*o).unwrap();
            }
        }
        db.verify_integrity().unwrap();
    }
}
