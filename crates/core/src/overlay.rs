//! Transaction-private write overlays for the concurrent engine.
//!
//! The paper's §7 lock protocol serialises writers at composite-object
//! granularity, but the storage substrate journals *pages*, and a page
//! holds many unrelated objects. If two in-flight transactions wrote
//! into the shared page store directly, the WAL could not commit one
//! without capturing torn fragments of the other. The overlay closes
//! that physical/logical gap: while a concurrent write transaction is
//! open, every mutation it makes lands in a private [`Overlay`] —
//! base pages and the WAL are untouched until commit.
//!
//! The engine installs the overlay with [`Database::overlay_install`]
//! before running an operation and removes it with
//! [`Database::overlay_take`] immediately after, all while holding the
//! engine's exclusive latch. With an overlay installed:
//!
//! * [`Database::get`] / [`Database::exists`] / [`Database::instances_of`]
//!   answer overlay-first, so the transaction reads its own writes and
//!   the full operation semantics (topology rules, cascades, reverse
//!   references) run unchanged;
//! * the internal `save` / `insert_object` / `erase` primitives write
//!   only the overlay;
//! * atomic batches are skipped — there is nothing to journal yet;
//! * the traversal cache is suppressed, so no overlay-derived entry can
//!   leak to other transactions.
//!
//! At commit, [`Database::overlay_apply`] replays the net effect into
//! the base store as **one** atomic batch: a single contiguous WAL run
//! with a single commit marker, which is what gives crash recovery its
//! "prefix of the commit-LSN order" guarantee. On abort the overlay is
//! simply dropped.

use std::collections::HashMap;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::object::Object;
use crate::oid::Oid;

/// One overlay entry: the object's current image within the transaction
/// (`None` after a delete) and whether the transaction itself created it.
#[derive(Debug, Clone)]
pub(crate) struct OverlayEntry {
    /// Latest image, or `None` if deleted within the transaction.
    pub(crate) image: Option<Object>,
    /// True if this transaction created the object (it has no base
    /// record; a subsequent delete cancels it entirely).
    pub(crate) created: bool,
}

/// A transaction-private write set: object images layered over the base
/// store. See the [module docs](self) for the protocol.
#[derive(Debug, Default, Clone)]
pub struct Overlay {
    pub(crate) entries: HashMap<Oid, OverlayEntry>,
    /// OIDs created by this transaction, in creation order — replayed in
    /// order at apply time so clustering hints resolve.
    pub(crate) created: Vec<Oid>,
    /// Clustering hints captured at creation (`:parent` placement).
    pub(crate) near: HashMap<Oid, Oid>,
}

impl Overlay {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the transaction has written nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct objects written (including deletions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The overlay's view of one object: `None` if the transaction never
    /// touched it (the base store is authoritative), `Some(None)` if it
    /// deleted it, `Some(Some(obj))` if it wrote it.
    pub fn lookup(&self, oid: Oid) -> Option<Option<&Object>> {
        self.entries.get(&oid).map(|e| e.image.as_ref())
    }

    /// The transaction's write set: `(oid, image, created)` for every
    /// touched object. `image` is `None` for deletions; `created` marks
    /// objects with no base record. Iteration order is unspecified.
    pub fn write_set(&self) -> impl Iterator<Item = (Oid, Option<&Object>, bool)> {
        self.entries
            .iter()
            .map(|(oid, e)| (*oid, e.image.as_ref(), e.created))
    }

    /// Record a write to an object that already exists (in the base or
    /// the overlay).
    pub(crate) fn record_save(&mut self, obj: &Object) {
        match self.entries.get_mut(&obj.oid) {
            Some(e) => e.image = Some(obj.clone()),
            None => {
                self.entries.insert(
                    obj.oid,
                    OverlayEntry {
                        image: Some(obj.clone()),
                        created: false,
                    },
                );
            }
        }
    }

    /// Record a brand-new object.
    pub(crate) fn record_insert(&mut self, obj: &Object, near: Option<Oid>) {
        self.entries.insert(
            obj.oid,
            OverlayEntry {
                image: Some(obj.clone()),
                created: true,
            },
        );
        self.created.push(obj.oid);
        if let Some(n) = near {
            self.near.insert(obj.oid, n);
        }
    }

    /// Record a deletion. `in_base` says whether the object has a base
    /// record (a created-then-deleted object cancels out entirely).
    pub(crate) fn record_erase(&mut self, oid: Oid, in_base: bool) {
        match self.entries.get_mut(&oid) {
            Some(e) => e.image = None,
            None => {
                self.entries.insert(
                    oid,
                    OverlayEntry {
                        image: None,
                        created: !in_base,
                    },
                );
            }
        }
    }
}

impl Database {
    /// Install a transaction-private write overlay. Until
    /// [`overlay_take`](Database::overlay_take), every mutation lands in
    /// the overlay and every read answers overlay-first; the traversal
    /// cache is suppressed. Exclusive with the single-threaded
    /// transaction/undo scopes and with an open storage batch.
    ///
    /// This is engine plumbing for `corion-concurrent`, which installs
    /// the overlay only while holding its exclusive latch.
    pub fn overlay_install(&mut self, overlay: Overlay) -> DbResult<()> {
        if self.overlay.is_some() {
            return Err(DbError::TransactionState {
                reason: "an overlay is already installed".into(),
            });
        }
        if self.txn.is_some() || self.undo.is_some() {
            return Err(DbError::TransactionState {
                reason: "overlays cannot be mixed with single-threaded transaction or undo scopes"
                    .into(),
            });
        }
        if self.store.in_atomic_batch() {
            return Err(DbError::TransactionState {
                reason: "overlays cannot be installed inside an open atomic batch".into(),
            });
        }
        self.traversal_cache.set_suppressed(true);
        self.overlay = Some(overlay);
        Ok(())
    }

    /// Remove and return the installed overlay, re-enabling the
    /// traversal cache. Returns `None` if no overlay is installed.
    pub fn overlay_take(&mut self) -> Option<Overlay> {
        let ov = self.overlay.take();
        if ov.is_some() {
            self.traversal_cache.set_suppressed(false);
        }
        ov
    }

    /// True while a write overlay is installed.
    pub fn overlay_active(&self) -> bool {
        self.overlay.is_some()
    }

    /// Replay a transaction's net effect into the base store as **one**
    /// atomic batch: creations in creation order (so clustering hints
    /// resolve), then updates, then deletions. A single WAL commit
    /// marker covers the whole transaction, so crash recovery sees all
    /// of it or none of it.
    ///
    /// Must be called with no overlay installed (commit first takes the
    /// overlay out). On a storage error the batch aborts and, as with
    /// any substrate failure, the caller must run
    /// [`Database::recover`] before further mutations.
    pub fn overlay_apply(&mut self, overlay: Overlay) -> DbResult<()> {
        if self.overlay.is_some() {
            return Err(DbError::TransactionState {
                reason: "cannot apply an overlay while another is installed".into(),
            });
        }
        self.atomic(|db| {
            for oid in &overlay.created {
                if let Some(e) = overlay.entries.get(oid) {
                    if let (true, Some(img)) = (e.created, e.image.as_ref()) {
                        let near = overlay.near.get(oid).copied();
                        db.insert_object(img, near)?;
                    }
                }
            }
            let mut rest: Vec<(&Oid, &OverlayEntry)> =
                overlay.entries.iter().filter(|(_, e)| !e.created).collect();
            rest.sort_by_key(|(oid, _)| **oid);
            for (oid, e) in rest {
                match &e.image {
                    Some(img) => db.save(img)?,
                    None => db.erase(*oid)?,
                }
            }
            Ok(())
        })
    }

    /// Force the next `make` serial number. Test and replay plumbing:
    /// the linearizability oracle replays committed transactions against
    /// a fresh engine and must mint the same OIDs the concurrent run
    /// minted.
    pub fn force_next_serial(&mut self, serial: u64) {
        self.next_serial = serial;
    }

    /// The serial number the next `make` will use.
    pub fn next_serial_hint(&self) -> u64 {
        self.next_serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::Domain;
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;

    fn label(s: &str) -> Value {
        Value::Str(s.into())
    }

    fn db_with_class() -> (Database, crate::oid::ClassId) {
        let mut db = Database::new();
        let c = db
            .define_class(ClassBuilder::new("Widget").attr("label", Domain::String))
            .unwrap();
        (db, c)
    }

    #[test]
    fn overlay_reads_its_own_writes_and_base_is_untouched() {
        let (mut db, c) = db_with_class();
        let base = db.make(c, vec![("label", label("base"))], vec![]).unwrap();

        db.overlay_install(Overlay::new()).unwrap();
        db.set_attr(base, "label", label("changed")).unwrap();
        let fresh = db.make(c, vec![("label", label("fresh"))], vec![]).unwrap();
        assert_eq!(db.get_attr(base, "label").unwrap(), label("changed"));
        assert_eq!(db.get_attr(fresh, "label").unwrap(), label("fresh"));
        assert_eq!(db.instances_of(c, false).len(), 2);

        // Dropping the overlay rolls everything back.
        let ov = db.overlay_take().unwrap();
        assert_eq!(ov.len(), 2);
        assert_eq!(db.get_attr(base, "label").unwrap(), label("base"));
        assert!(!db.exists(fresh));
        assert_eq!(db.instances_of(c, false).len(), 1);
    }

    #[test]
    fn overlay_apply_replays_the_net_effect_atomically() {
        let (mut db, c) = db_with_class();
        let victim = db
            .make(c, vec![("label", label("victim"))], vec![])
            .unwrap();
        let updated = db.make(c, vec![("label", label("old"))], vec![]).unwrap();

        db.overlay_install(Overlay::new()).unwrap();
        let kept = db.make(c, vec![("label", label("kept"))], vec![]).unwrap();
        let doomed = db
            .make(c, vec![("label", label("doomed"))], vec![])
            .unwrap();
        db.delete(doomed).unwrap();
        db.delete(victim).unwrap();
        db.set_attr(updated, "label", label("new")).unwrap();
        let ov = db.overlay_take().unwrap();

        db.overlay_apply(ov).unwrap();
        assert!(db.exists(kept));
        assert!(!db.exists(doomed), "created-then-deleted must cancel out");
        assert!(!db.exists(victim));
        assert_eq!(db.get_attr(updated, "label").unwrap(), label("new"));
    }

    #[test]
    fn overlay_rejects_mixing_with_transactions() {
        let (mut db, _) = db_with_class();
        db.begin_transaction().unwrap();
        let err = db.overlay_install(Overlay::new()).unwrap_err();
        assert!(matches!(err, DbError::TransactionState { .. }));
        db.abort_transaction().unwrap();

        db.overlay_install(Overlay::new()).unwrap();
        let err = db.begin_transaction().unwrap_err();
        assert!(matches!(err, DbError::TransactionState { .. }));
        db.overlay_take().unwrap();
    }
}
