//! Parent sets and the Topology Rules (paper §2.2).
//!
//! > "Different types of reference partition the set of objects which
//! > reference a given object into four different sets of objects."
//!
//! Definition 1 gives the four sets `IX(O)`, `DX(O)`, `IS(O)`, `DS(O)`.
//! Topology Rules 1–4 constrain the "object topologies" these sets may
//! form, and the Make-Component Rule gates every new composite reference.

use crate::error::{DbError, DbResult};
use crate::object::Object;
use crate::oid::Oid;
use crate::refs::RefKind;
use crate::schema::attr::CompositeSpec;

/// The four parent sets of Definition 1, materialised from an object's
/// reverse composite references.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParentSets {
    /// Independent exclusive composite parents.
    pub ix: Vec<Oid>,
    /// Dependent exclusive composite parents.
    pub dx: Vec<Oid>,
    /// Independent shared composite parents.
    pub is: Vec<Oid>,
    /// Dependent shared composite parents.
    pub ds: Vec<Oid>,
}

impl ParentSets {
    /// Computes the parent sets of `obj`.
    pub fn of(obj: &Object) -> Self {
        ParentSets {
            ix: obj.ix(),
            dx: obj.dx(),
            is: obj.is_(),
            ds: obj.ds(),
        }
    }

    /// Total number of composite references to the object.
    pub fn total(&self) -> usize {
        self.ix.len() + self.dx.len() + self.is.len() + self.ds.len()
    }

    /// Checks Topology Rules 1–3 over the parent sets. Rule 4 — any number
    /// of *weak* references — has no parent-set footprint because weak
    /// references are never recorded in reverse references; its checkable
    /// contrapositive (no reverse reference may carry flags outside the
    /// parent's schema) is enforced by
    /// [`Database::verify_integrity`](crate::Database::verify_integrity).
    pub fn check(&self, object: Oid) -> DbResult<()> {
        // Rule 1: card(IX(O)) <= 1, card(DX(O)) <= 1.
        if self.ix.len() > 1 || self.dx.len() > 1 {
            return Err(DbError::TopologyViolation {
                rule: 1,
                object,
                detail: format!(
                    "card(IX)={}, card(DX)={}; each must be at most 1",
                    self.ix.len(),
                    self.dx.len()
                ),
            });
        }
        // Rule 2: IX and DX are mutually exclusive.
        if !self.ix.is_empty() && !self.dx.is_empty() {
            return Err(DbError::TopologyViolation {
                rule: 2,
                object,
                detail: "independent and dependent exclusive references cannot coexist".into(),
            });
        }
        // Rule 3: exclusive and shared references are mutually exclusive.
        let has_exclusive = !self.ix.is_empty() || !self.dx.is_empty();
        let has_shared = !self.is.is_empty() || !self.ds.is_empty();
        if has_exclusive && has_shared {
            return Err(DbError::TopologyViolation {
                rule: 3,
                object,
                detail: "exclusive and shared composite references cannot coexist".into(),
            });
        }
        Ok(())
    }
}

/// The Make-Component Rule (§2.2): may a composite reference of `spec` be
/// added to `obj`?
///
/// 1. "If A is an exclusive composite attribute, O must not already have any
///    composite reference to it (exclusive or shared)."
/// 2. "If A is a shared composite attribute, O must not already have an
///    exclusive composite reference."
pub fn check_make_component(obj: &Object, spec: CompositeSpec) -> DbResult<()> {
    let adding = RefKind::Composite {
        exclusive: spec.exclusive,
        dependent: spec.dependent,
    };
    if spec.exclusive {
        if !obj.reverse_refs.is_empty() {
            return Err(DbError::MakeComponentViolation {
                object: obj.oid,
                adding,
                detail: format!(
                    "object already has {} composite reference(s); an exclusive reference \
                     requires none",
                    obj.reverse_refs.len()
                ),
            });
        }
    } else if obj.has_exclusive_reverse_ref() {
        return Err(DbError::MakeComponentViolation {
            object: obj.oid,
            adding,
            detail: "object already has an exclusive composite reference".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ClassId;
    use crate::refs::ReverseRef;

    fn oid(s: u64) -> Oid {
        Oid::new(ClassId(1), s)
    }

    fn obj_with(refs: &[(u64, bool, bool)]) -> Object {
        let mut o = Object::new(oid(0), vec![], 0);
        for &(p, dependent, exclusive) in refs {
            o.reverse_refs
                .push(ReverseRef::new(oid(p), dependent, exclusive));
        }
        o
    }

    #[test]
    fn parent_sets_partition() {
        let o = obj_with(&[(1, false, true), (2, true, false), (3, false, false)]);
        let ps = ParentSets::of(&o);
        assert_eq!(ps.ix, vec![oid(1)]);
        assert_eq!(ps.ds, vec![oid(2)]);
        assert_eq!(ps.is, vec![oid(3)]);
        assert!(ps.dx.is_empty());
        assert_eq!(ps.total(), 3);
    }

    #[test]
    fn rule1_caps_exclusive_cardinality() {
        let o = obj_with(&[(1, false, true), (2, false, true)]);
        let err = ParentSets::of(&o).check(o.oid).unwrap_err();
        assert!(matches!(err, DbError::TopologyViolation { rule: 1, .. }));
    }

    #[test]
    fn rule2_ix_dx_mutually_exclusive() {
        let o = obj_with(&[(1, false, true), (2, true, true)]);
        let err = ParentSets::of(&o).check(o.oid).unwrap_err();
        assert!(matches!(err, DbError::TopologyViolation { rule: 2, .. }));
    }

    #[test]
    fn rule3_exclusive_shared_mutually_exclusive() {
        let o = obj_with(&[(1, true, true), (2, true, false)]);
        let err = ParentSets::of(&o).check(o.oid).unwrap_err();
        assert!(matches!(err, DbError::TopologyViolation { rule: 3, .. }));
    }

    #[test]
    fn many_shared_references_are_legal() {
        let o = obj_with(&[(1, true, false), (2, true, false), (3, false, false)]);
        assert!(ParentSets::of(&o).check(o.oid).is_ok());
    }

    #[test]
    fn single_exclusive_reference_is_legal() {
        for dependent in [false, true] {
            let o = obj_with(&[(1, dependent, true)]);
            assert!(ParentSets::of(&o).check(o.oid).is_ok());
        }
    }

    #[test]
    fn make_component_rule_blocks_second_composite_for_exclusive() {
        let excl = CompositeSpec {
            exclusive: true,
            dependent: false,
        };
        let shared = CompositeSpec {
            exclusive: false,
            dependent: true,
        };
        // Fresh object: both fine.
        let free = obj_with(&[]);
        assert!(check_make_component(&free, excl).is_ok());
        assert!(check_make_component(&free, shared).is_ok());
        // Already shared: exclusive blocked, shared fine.
        let has_shared = obj_with(&[(1, true, false)]);
        assert!(check_make_component(&has_shared, excl).is_err());
        assert!(check_make_component(&has_shared, shared).is_ok());
        // Already exclusive: both blocked.
        let has_excl = obj_with(&[(1, false, true)]);
        assert!(check_make_component(&has_excl, excl).is_err());
        assert!(check_make_component(&has_excl, shared).is_err());
    }
}
