//! Operations on composite objects (paper §3).
//!
//! §3.1: `components-of`, `parents-of`, `ancestors-of`, each taking an
//! optional class list and Exclusive/Shared switches; `components-of` also
//! takes a Level bound ("a level n component of O' if the shortest path
//! between O and O' has n composite references").
//!
//! §3.2: the predicates `compositep`, `exclusive-compositep`,
//! `shared-compositep`, `dependent-compositep` on classes, and
//! `component-of`, `child-of`, `exclusive-component-of`,
//! `shared-component-of` on instances.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::{ClassId, Oid};
use crate::refs::ReverseRef;

/// Argument bundle for the §3.1 traversal messages: `[ListofClasses]
/// [Exclusive] [Shared]` (+ `[Level]` for `components-of`).
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Restrict results to instances of these classes (subclass instances
    /// included). `None` = all classes.
    pub classes: Option<Vec<ClassId>>,
    /// "If Exclusive is True, only the exclusive components are retrieved."
    pub exclusive: bool,
    /// "If Shared is True, only shared components are retrieved."
    pub shared: bool,
    /// "Return components of a given object up to the specified Level."
    /// `None` = unbounded. Only honoured by `components-of`.
    pub level: Option<usize>,
}

impl Filter {
    /// No restriction: all components/parents/ancestors.
    pub fn all() -> Self {
        Filter::default()
    }

    /// Restrict to the given classes.
    pub fn classes(mut self, classes: Vec<ClassId>) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Only exclusive references.
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Only shared references.
    pub fn shared(mut self) -> Self {
        self.shared = true;
        self
    }

    /// Bound the traversal depth.
    pub fn level(mut self, n: usize) -> Self {
        self.level = Some(n);
        self
    }

    /// Does an edge of the given exclusivity pass the Exclusive/Shared
    /// switches? "If both Exclusive and Shared are Nil, all components are
    /// retrieved" — and both True likewise admits every edge (asking for
    /// exclusive *and* shared components is asking for all of them).
    pub fn admits_edge(&self, edge_exclusive: bool) -> bool {
        match (self.exclusive, self.shared) {
            (false, false) | (true, true) => true,
            (true, false) => edge_exclusive,
            (false, true) => !edge_exclusive,
        }
    }

    fn admits_class(&self, db: &Database, class: ClassId) -> bool {
        match &self.classes {
            None => true,
            Some(cs) => cs.iter().any(|&c| db.is_subclass_of(class, c)),
        }
    }

    /// True if the filter admits every edge and every class — the traversal
    /// result is then a pure function of the hierarchy and can be served
    /// from the closure caches.
    fn is_transparent(&self) -> bool {
        self.classes.is_none() && self.exclusive == self.shared
    }
}

impl Database {
    /// The reverse composite references of `oid` (§2.4), post-deferred-
    /// maintenance, memoised in the traversal cache.
    pub(crate) fn reverse_composite_refs(&self, oid: Oid) -> DbResult<Arc<Vec<ReverseRef>>> {
        if let Some(cached) = self.traversal_cache.parents(oid) {
            return Ok(cached);
        }
        let out = Arc::new(self.get(oid)?.reverse_refs.clone());
        self.traversal_cache.store_parents(oid, out.clone());
        Ok(out)
    }

    /// `(components-of Object [ListofClasses] [Exclusive] [Shared] [Level])`
    ///
    /// Returns the component set of `object`: "all objects directly or
    /// indirectly referenced from O via composite references" (§2.2), BFS
    /// order (so level-n components appear before level-n+1 ones).
    pub fn components_of(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _span = corion_obs::span("core", "components_of");
        let _timer = self.metrics.components_of_latency.start_timer();
        self.components_walk(object, filter, true)
    }

    /// [`Database::components_of`] recomputed from storage, bypassing the
    /// traversal cache — the oracle the equivalence test suite compares
    /// cached traversals against.
    pub fn components_of_uncached(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _timer = self.metrics.components_of_latency.start_timer();
        self.components_walk(object, filter, false)
    }

    fn components_walk(&self, object: Oid, filter: &Filter, cached: bool) -> DbResult<Vec<Oid>> {
        if !self.exists(object) {
            return Err(DbError::NoSuchObject(object));
        }
        let mut seen: HashSet<Oid> = HashSet::new();
        seen.insert(object);
        let mut out = Vec::new();
        let mut frontier: VecDeque<(Oid, usize)> = VecDeque::new();
        frontier.push_back((object, 0));
        while let Some((oid, depth)) = frontier.pop_front() {
            if let Some(max) = filter.level {
                if depth >= max {
                    continue;
                }
            }
            let edges = if cached {
                self.forward_composite_refs(oid)?
            } else {
                Arc::new(self.forward_composite_refs_uncached(oid)?)
            };
            for &(spec, child) in edges.iter() {
                if !filter.admits_edge(spec.exclusive) {
                    continue;
                }
                if !self.exists(child) || !seen.insert(child) {
                    continue;
                }
                if filter.admits_class(self, child.class) {
                    out.push(child);
                }
                frontier.push_back((child, depth + 1));
            }
        }
        Ok(out)
    }

    /// `(parents-of Object [ListofClasses] [Exclusive] [Shared])` — the
    /// *parent set*: objects with a **direct** composite reference to
    /// `object`, answered from its reverse composite references (§2.4).
    pub fn parents_of(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _span = corion_obs::span("core", "parents_of");
        let _timer = self.metrics.parents_of_latency.start_timer();
        let rrs = self.reverse_composite_refs(object)?;
        Ok(self.filter_parents(&rrs, filter))
    }

    /// [`Database::parents_of`] bypassing the traversal cache.
    pub fn parents_of_uncached(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _timer = self.metrics.parents_of_latency.start_timer();
        let obj = self.get(object)?;
        Ok(self.filter_parents(&obj.reverse_refs, filter))
    }

    fn filter_parents(&self, rrs: &[ReverseRef], filter: &Filter) -> Vec<Oid> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for rr in rrs {
            if !filter.admits_edge(rr.exclusive) {
                continue;
            }
            if !filter.admits_class(self, rr.parent.class) {
                continue;
            }
            if seen.insert(rr.parent) {
                out.push(rr.parent);
            }
        }
        out
    }

    /// `(ancestors-of Object [ListofClasses] [Exclusive] [Shared])` — the
    /// *ancestor set*: objects with a direct **or indirect** composite
    /// reference to `object`. The unfiltered closure is memoised per
    /// object; filtered queries walk edge-by-edge (a filtered closure is
    /// not derivable from the unfiltered one) but still hit the cached
    /// reverse-reference lists.
    pub fn ancestors_of(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _span = corion_obs::span("core", "ancestors_of");
        let _timer = self.metrics.ancestors_of_latency.start_timer();
        if filter.is_transparent() {
            if let Some(cached) = self.traversal_cache.ancestors(object) {
                return Ok((*cached).clone());
            }
            let out = self.ancestors_walk(object, filter, true)?;
            self.traversal_cache
                .store_ancestors(object, Arc::new(out.clone()));
            return Ok(out);
        }
        self.ancestors_walk(object, filter, true)
    }

    /// [`Database::ancestors_of`] recomputed from storage, bypassing the
    /// traversal cache.
    pub fn ancestors_of_uncached(&self, object: Oid, filter: &Filter) -> DbResult<Vec<Oid>> {
        let _timer = self.metrics.ancestors_of_latency.start_timer();
        self.ancestors_walk(object, filter, false)
    }

    fn ancestors_walk(&self, object: Oid, filter: &Filter, cached: bool) -> DbResult<Vec<Oid>> {
        if !self.exists(object) {
            return Err(DbError::NoSuchObject(object));
        }
        let mut seen: HashSet<Oid> = HashSet::new();
        seen.insert(object);
        let mut out = Vec::new();
        let mut frontier: VecDeque<Oid> = VecDeque::new();
        frontier.push_back(object);
        while let Some(oid) = frontier.pop_front() {
            let rrs = if cached {
                self.reverse_composite_refs(oid)?
            } else {
                Arc::new(self.get(oid)?.reverse_refs.clone())
            };
            for rr in rrs.iter() {
                if !filter.admits_edge(rr.exclusive) {
                    continue;
                }
                if !self.exists(rr.parent) || !seen.insert(rr.parent) {
                    continue;
                }
                if filter.admits_class(self, rr.parent.class) {
                    out.push(rr.parent);
                }
                frontier.push_back(rr.parent);
            }
        }
        Ok(out)
    }

    /// The roots of every composite object containing `object`: its
    /// ancestors (plus itself) that have no composite parents. Memoised per
    /// object.
    pub fn roots_of(&self, object: Oid) -> DbResult<Vec<Oid>> {
        let _span = corion_obs::span("core", "roots_of");
        let _timer = self.metrics.ancestors_of_latency.start_timer();
        if let Some(cached) = self.traversal_cache.roots(object) {
            return Ok((*cached).clone());
        }
        let mut candidates = self.ancestors_of(object, &Filter::all())?;
        candidates.insert(0, object);
        let mut out = Vec::new();
        for c in candidates {
            if self.reverse_composite_refs(c)?.is_empty() {
                out.push(c);
            }
        }
        self.traversal_cache
            .store_roots(object, Arc::new(out.clone()));
        Ok(out)
    }

    /// [`Database::roots_of`] recomputed from storage, bypassing the
    /// traversal cache.
    pub fn roots_of_uncached(&self, object: Oid) -> DbResult<Vec<Oid>> {
        let _timer = self.metrics.ancestors_of_latency.start_timer();
        let mut candidates = self.ancestors_of_uncached(object, &Filter::all())?;
        candidates.insert(0, object);
        let mut out = Vec::new();
        for c in candidates {
            if self.get(c)?.reverse_refs.is_empty() {
                out.push(c);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Parallel batch traversals
    // ------------------------------------------------------------------

    /// [`Database::components_of`] for a batch of objects, fanned out over
    /// scoped threads (the read path is `&self` and internally
    /// synchronised). Results align with `objects`, each carrying its own
    /// per-object verdict.
    pub fn components_of_many(&self, objects: &[Oid], filter: &Filter) -> Vec<DbResult<Vec<Oid>>> {
        self.fan_out(objects, |db, oid| db.components_of(oid, filter))
    }

    /// [`Database::ancestors_of`] for a batch of objects, fanned out over
    /// scoped threads. Results align with `objects`.
    pub fn ancestors_of_many(&self, objects: &[Oid], filter: &Filter) -> Vec<DbResult<Vec<Oid>>> {
        self.fan_out(objects, |db, oid| db.ancestors_of(oid, filter))
    }

    /// Runs `op` over `objects` on up to `available_parallelism` scoped
    /// threads, each taking a contiguous chunk. Falls back to the calling
    /// thread for batches of one (or machines reporting one core).
    fn fan_out<T: Send>(
        &self,
        objects: &[Oid],
        op: impl Fn(&Self, Oid) -> DbResult<T> + Sync,
    ) -> Vec<DbResult<T>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(objects.len());
        if workers <= 1 {
            return objects.iter().map(|&o| op(self, o)).collect();
        }
        let chunk = objects.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = objects
                .chunks(chunk)
                .map(|part| {
                    let op = &op;
                    scope.spawn(move || part.iter().map(|&o| op(self, o)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("traversal worker panicked"))
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // §3.2 predicates — classes
    // ------------------------------------------------------------------

    /// `(compositep Class [AttributeName])`.
    pub fn compositep(&self, class: ClassId, attr: Option<&str>) -> DbResult<bool> {
        let _timer = self.metrics.predicate_latency.start_timer();
        let c = self.catalog.class(class)?;
        Ok(match attr {
            None => c.compositep(),
            Some(name) => c
                .attr(name)
                .ok_or_else(|| DbError::NoSuchAttribute {
                    class,
                    attr: name.into(),
                })?
                .composite
                .is_some(),
        })
    }

    /// `(exclusive-compositep Class [AttributeName])`.
    pub fn exclusive_compositep(&self, class: ClassId, attr: Option<&str>) -> DbResult<bool> {
        self.compositep_matching(class, attr, |s| s.exclusive)
    }

    /// `(shared-compositep Class [AttributeName])`.
    pub fn shared_compositep(&self, class: ClassId, attr: Option<&str>) -> DbResult<bool> {
        self.compositep_matching(class, attr, |s| !s.exclusive)
    }

    /// `(dependent-compositep Class [AttributeName])`.
    pub fn dependent_compositep(&self, class: ClassId, attr: Option<&str>) -> DbResult<bool> {
        self.compositep_matching(class, attr, |s| s.dependent)
    }

    fn compositep_matching(
        &self,
        class: ClassId,
        attr: Option<&str>,
        pred: impl Fn(crate::schema::attr::CompositeSpec) -> bool,
    ) -> DbResult<bool> {
        let _timer = self.metrics.predicate_latency.start_timer();
        let c = self.catalog.class(class)?;
        Ok(match attr {
            None => c
                .attrs
                .iter()
                .any(|a| a.composite.map(&pred).unwrap_or(false)),
            Some(name) => c
                .attr(name)
                .ok_or_else(|| DbError::NoSuchAttribute {
                    class,
                    attr: name.into(),
                })?
                .composite
                .map(pred)
                .unwrap_or(false),
        })
    }

    // ------------------------------------------------------------------
    // §3.2 predicates — instances
    // ------------------------------------------------------------------

    /// `(component-of Object1 Object2)`: is `o1` a direct or indirect
    /// component of `o2`? Answered by walking **up** from `o1` through
    /// reverse references, which is bounded by `o1`'s ancestor set rather
    /// than `o2`'s (usually much larger) component set.
    pub fn component_of(&self, o1: Oid, o2: Oid) -> DbResult<bool> {
        let _span = corion_obs::span("core", "component_of");
        let _timer = self.metrics.predicate_latency.start_timer();
        if !self.exists(o1) {
            return Err(DbError::NoSuchObject(o1));
        }
        if o1 == o2 {
            return Ok(false);
        }
        let mut seen = HashSet::new();
        let mut frontier = vec![o1];
        while let Some(oid) = frontier.pop() {
            if !seen.insert(oid) {
                continue;
            }
            for rr in self.reverse_composite_refs(oid)?.iter() {
                if rr.parent == o2 {
                    return Ok(true);
                }
                frontier.push(rr.parent);
            }
        }
        Ok(false)
    }

    /// `(child-of Object1 Object2)`: is `o1` a **direct** component of `o2`?
    pub fn child_of(&self, o1: Oid, o2: Oid) -> DbResult<bool> {
        let _timer = self.metrics.predicate_latency.start_timer();
        Ok(self
            .reverse_composite_refs(o1)?
            .iter()
            .any(|rr| rr.parent == o2))
    }

    /// `(exclusive-component-of Object1 Object2)`: True if `o1` is an
    /// exclusive component of `o2`; Nil if it is not a component at all or a
    /// shared one.
    pub fn exclusive_component_of(&self, o1: Oid, o2: Oid) -> DbResult<bool> {
        let _timer = self.metrics.predicate_latency.start_timer();
        let is_exclusive = self
            .reverse_composite_refs(o1)?
            .iter()
            .any(|rr| rr.exclusive);
        Ok(is_exclusive && self.component_of(o1, o2)?)
    }

    /// `(shared-component-of Object1 Object2)`: True if `o1` is a shared
    /// component of `o2`. The paper notes this equals `component-of` ∧
    /// ¬`exclusive-component-of`, which by Topology Rule 3 reduces to a flag
    /// test on `o1`.
    pub fn shared_component_of(&self, o1: Oid, o2: Oid) -> DbResult<bool> {
        let _timer = self.metrics.predicate_latency.start_timer();
        let is_shared = self
            .reverse_composite_refs(o1)?
            .iter()
            .any(|rr| !rr.exclusive);
        Ok(is_shared && self.component_of(o1, o2)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;

    /// Three-level hierarchy: Book --(excl dep)--> Chapter --(shared dep)-->
    /// Paragraph, plus Book --(ind shared)--> Image.
    struct Fixture {
        db: Database,
        book: ClassId,
        chapter: ClassId,
        paragraph: ClassId,
        image: ClassId,
    }

    fn fixture() -> Fixture {
        let mut db = Database::new();
        let paragraph = db.define_class(ClassBuilder::new("Paragraph")).unwrap();
        let image = db.define_class(ClassBuilder::new("Image")).unwrap();
        let chapter = db
            .define_class(ClassBuilder::new("Chapter").attr_composite(
                "paras",
                Domain::SetOf(Box::new(Domain::Class(paragraph))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        let book = db
            .define_class(
                ClassBuilder::new("Book")
                    .attr_composite(
                        "chapters",
                        Domain::SetOf(Box::new(Domain::Class(chapter))),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    )
                    .attr_composite(
                        "figures",
                        Domain::SetOf(Box::new(Domain::Class(image))),
                        CompositeSpec {
                            exclusive: false,
                            dependent: false,
                        },
                    ),
            )
            .unwrap();
        Fixture {
            db,
            book,
            chapter,
            paragraph,
            image,
        }
    }

    struct Built {
        book: Oid,
        ch1: Oid,
        ch2: Oid,
        p1: Oid,
        p2: Oid,
        img: Oid,
    }

    fn build(f: &mut Fixture) -> Built {
        let db = &mut f.db;
        let p1 = db.make(f.paragraph, vec![], vec![]).unwrap();
        let p2 = db.make(f.paragraph, vec![], vec![]).unwrap();
        let img = db.make(f.image, vec![], vec![]).unwrap();
        let ch1 = db
            .make(
                f.chapter,
                vec![("paras", Value::Set(vec![Value::Ref(p1), Value::Ref(p2)]))],
                vec![],
            )
            .unwrap();
        let ch2 = db
            .make(
                f.chapter,
                vec![("paras", Value::Set(vec![Value::Ref(p2)]))],
                vec![],
            )
            .unwrap();
        let book = db
            .make(
                f.book,
                vec![
                    (
                        "chapters",
                        Value::Set(vec![Value::Ref(ch1), Value::Ref(ch2)]),
                    ),
                    ("figures", Value::Set(vec![Value::Ref(img)])),
                ],
                vec![],
            )
            .unwrap();
        Built {
            book,
            ch1,
            ch2,
            p1,
            p2,
            img,
        }
    }

    #[test]
    fn components_of_returns_full_component_set() {
        let mut f = fixture();
        let b = build(&mut f);
        let comps = f.db.components_of(b.book, &Filter::all()).unwrap();
        let set: HashSet<Oid> = comps.iter().copied().collect();
        assert_eq!(set, [b.ch1, b.ch2, b.p1, b.p2, b.img].into_iter().collect());
    }

    #[test]
    fn components_of_level_one_is_direct_children() {
        let mut f = fixture();
        let b = build(&mut f);
        let comps = f.db.components_of(b.book, &Filter::all().level(1)).unwrap();
        let set: HashSet<Oid> = comps.iter().copied().collect();
        assert_eq!(set, [b.ch1, b.ch2, b.img].into_iter().collect());
    }

    #[test]
    fn components_of_class_filter() {
        let mut f = fixture();
        let b = build(&mut f);
        let paragraph = f.paragraph;
        let comps =
            f.db.components_of(b.book, &Filter::all().classes(vec![paragraph]))
                .unwrap();
        let set: HashSet<Oid> = comps.iter().copied().collect();
        assert_eq!(set, [b.p1, b.p2].into_iter().collect());
    }

    #[test]
    fn components_of_exclusive_only_follows_exclusive_edges() {
        let mut f = fixture();
        let b = build(&mut f);
        let comps =
            f.db.components_of(b.book, &Filter::all().exclusive())
                .unwrap();
        let set: HashSet<Oid> = comps.iter().copied().collect();
        // Only chapters reach via exclusive edges; paragraphs hang off
        // shared edges and the image is shared too.
        assert_eq!(set, [b.ch1, b.ch2].into_iter().collect());
    }

    #[test]
    fn components_of_shared_only() {
        let mut f = fixture();
        let b = build(&mut f);
        let comps = f.db.components_of(b.book, &Filter::all().shared()).unwrap();
        let set: HashSet<Oid> = comps.iter().copied().collect();
        // Shared-only traversal cannot pass the exclusive book->chapter
        // edges, so only the image is reached.
        assert_eq!(set, [b.img].into_iter().collect());
    }

    #[test]
    fn bfs_order_is_by_level() {
        let mut f = fixture();
        let b = build(&mut f);
        let comps = f.db.components_of(b.book, &Filter::all()).unwrap();
        let pos = |o: Oid| {
            comps
                .iter()
                .position(|&x| x == o)
                .expect("component present")
        };
        assert!(pos(b.ch1) < pos(b.p1), "level-1 before level-2");
    }

    #[test]
    fn parents_and_ancestors() {
        let mut f = fixture();
        let b = build(&mut f);
        let parents = f.db.parents_of(b.p2, &Filter::all()).unwrap();
        let pset: HashSet<Oid> = parents.iter().copied().collect();
        assert_eq!(pset, [b.ch1, b.ch2].into_iter().collect());
        let anc = f.db.ancestors_of(b.p2, &Filter::all()).unwrap();
        let aset: HashSet<Oid> = anc.iter().copied().collect();
        assert_eq!(aset, [b.ch1, b.ch2, b.book].into_iter().collect());
    }

    #[test]
    fn parents_of_with_shared_filter() {
        let mut f = fixture();
        let b = build(&mut f);
        assert_eq!(
            f.db.parents_of(b.ch1, &Filter::all().shared()).unwrap(),
            Vec::<Oid>::new()
        );
        assert_eq!(
            f.db.parents_of(b.ch1, &Filter::all().exclusive()).unwrap(),
            vec![b.book]
        );
    }

    #[test]
    fn roots_of_finds_hierarchy_roots() {
        let mut f = fixture();
        let b = build(&mut f);
        assert_eq!(f.db.roots_of(b.p1).unwrap(), vec![b.book]);
        assert_eq!(
            f.db.roots_of(b.book).unwrap(),
            vec![b.book],
            "a root's root is itself"
        );
    }

    #[test]
    fn class_predicates() {
        let f = fixture();
        let db = &f.db;
        assert!(db.compositep(f.book, None).unwrap());
        assert!(db.compositep(f.book, Some("chapters")).unwrap());
        assert!(!db.compositep(f.paragraph, None).unwrap());
        assert!(db.exclusive_compositep(f.book, Some("chapters")).unwrap());
        assert!(!db.exclusive_compositep(f.book, Some("figures")).unwrap());
        assert!(db.shared_compositep(f.book, Some("figures")).unwrap());
        assert!(db.dependent_compositep(f.book, Some("chapters")).unwrap());
        assert!(!db.dependent_compositep(f.book, Some("figures")).unwrap());
        assert!(db.shared_compositep(f.chapter, None).unwrap());
        assert!(db.compositep(f.book, Some("missing")).is_err());
    }

    #[test]
    fn instance_predicates() {
        let mut f = fixture();
        let b = build(&mut f);
        let db = &mut f.db;
        assert!(db.component_of(b.p1, b.book).unwrap(), "indirect component");
        assert!(db.component_of(b.ch1, b.book).unwrap(), "direct component");
        assert!(!db.component_of(b.book, b.p1).unwrap(), "not symmetric");
        assert!(!db.component_of(b.book, b.book).unwrap(), "not reflexive");
        assert!(db.child_of(b.ch1, b.book).unwrap());
        assert!(
            !db.child_of(b.p1, b.book).unwrap(),
            "child-of is direct only"
        );
        assert!(db.exclusive_component_of(b.ch1, b.book).unwrap());
        assert!(!db.shared_component_of(b.ch1, b.book).unwrap());
        assert!(db.shared_component_of(b.p1, b.book).unwrap());
        assert!(!db.exclusive_component_of(b.p1, b.book).unwrap());
    }

    #[test]
    fn ancestors_answer_the_reverse_component_question() {
        // §3.2: "there is no need to define a message for determining if an
        // Object1 belongs to the ancestor set of an Object2, since … the
        // message component-of can be used" with swapped arguments.
        let mut f = fixture();
        let b = build(&mut f);
        assert!(f.db.component_of(b.p1, b.book).unwrap());
        let anc = f.db.ancestors_of(b.p1, &Filter::all()).unwrap();
        assert!(anc.contains(&b.book));
    }

    #[test]
    fn traversals_reject_missing_objects() {
        let f = fixture();
        let ghost = Oid::new(f.paragraph, 999);
        assert!(f.db.components_of(ghost, &Filter::all()).is_err());
        assert!(f.db.ancestors_of(ghost, &Filter::all()).is_err());
        assert!(f.db.parents_of(ghost, &Filter::all()).is_err());
        assert!(f.db.components_of_uncached(ghost, &Filter::all()).is_err());
        assert!(f.db.ancestors_of_uncached(ghost, &Filter::all()).is_err());
        assert!(f.db.parents_of_uncached(ghost, &Filter::all()).is_err());
        assert!(f.db.roots_of_uncached(ghost).is_err());
    }

    #[test]
    fn admits_edge_switch_semantics() {
        // "If both Exclusive and Shared are Nil, all components are
        // retrieved" — and both True likewise admits everything.
        for filter in [Filter::all(), Filter::all().exclusive().shared()] {
            assert!(filter.admits_edge(true));
            assert!(filter.admits_edge(false));
        }
        // Exclusive-only admits exactly the exclusive edges…
        let excl = Filter::all().exclusive();
        assert!(excl.admits_edge(true));
        assert!(!excl.admits_edge(false));
        // …and shared-only exactly the shared ones.
        let shared = Filter::all().shared();
        assert!(!shared.admits_edge(true));
        assert!(shared.admits_edge(false));
    }

    /// Diamond of shared references: root -> {a, b} -> leaf. The leaf's
    /// shortest path from the root has two composite references, so it is a
    /// level-2 component (§3.1) and must appear exactly once despite being
    /// reachable along both arms.
    fn diamond() -> (Database, Oid, Oid, Oid, Oid) {
        let mut db = Database::new();
        let node = db.define_class(ClassBuilder::new("Node")).unwrap();
        db.add_attribute(
            node,
            crate::schema::attr::AttributeDef::composite(
                "kids",
                Domain::SetOf(Box::new(Domain::Class(node))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ),
        )
        .unwrap();
        let leaf = db.make(node, vec![], vec![]).unwrap();
        let a = db
            .make(
                node,
                vec![("kids", Value::Set(vec![Value::Ref(leaf)]))],
                vec![],
            )
            .unwrap();
        let b = db
            .make(
                node,
                vec![("kids", Value::Set(vec![Value::Ref(leaf)]))],
                vec![],
            )
            .unwrap();
        let root = db
            .make(
                node,
                vec![("kids", Value::Set(vec![Value::Ref(a), Value::Ref(b)]))],
                vec![],
            )
            .unwrap();
        (db, root, a, b, leaf)
    }

    #[test]
    fn level_bounded_components_on_shared_diamond() {
        let (db, root, a, b, leaf) = diamond();
        let level1 = db.components_of(root, &Filter::all().level(1)).unwrap();
        assert_eq!(
            level1.iter().copied().collect::<HashSet<_>>(),
            [a, b].into()
        );
        let level2 = db.components_of(root, &Filter::all().level(2)).unwrap();
        assert_eq!(
            level2.iter().copied().collect::<HashSet<_>>(),
            [a, b, leaf].into()
        );
        assert_eq!(level2.len(), 3, "shared leaf reported once, not per-path");
        // Unbounded equals the level-2 bound here (the diamond is 2 deep),
        // and a level-0 bound yields nothing.
        assert_eq!(db.components_of(root, &Filter::all()).unwrap(), level2);
        assert_eq!(
            db.components_of(root, &Filter::all().level(0)).unwrap(),
            vec![]
        );
        // The leaf's ancestors see the whole diamond from below.
        let anc = db.ancestors_of(leaf, &Filter::all()).unwrap();
        assert_eq!(
            anc.iter().copied().collect::<HashSet<_>>(),
            [a, b, root].into()
        );
    }

    #[test]
    fn batch_traversals_match_single_object_calls() {
        let mut f = fixture();
        let b = build(&mut f);
        let objects = [
            b.book,
            b.ch1,
            b.ch2,
            b.p1,
            b.p2,
            b.img,
            Oid::new(f.paragraph, 999),
        ];
        for filter in [
            Filter::all(),
            Filter::all().exclusive(),
            Filter::all().level(1),
        ] {
            let batch = f.db.components_of_many(&objects, &filter);
            assert_eq!(batch.len(), objects.len());
            for (&oid, got) in objects.iter().zip(&batch) {
                assert_eq!(
                    got.as_ref().ok(),
                    f.db.components_of(oid, &filter).as_ref().ok()
                );
            }
            assert!(
                batch.last().unwrap().is_err(),
                "missing object reports its own error"
            );
            let batch = f.db.ancestors_of_many(&objects, &filter);
            for (&oid, got) in objects.iter().zip(&batch) {
                assert_eq!(
                    got.as_ref().ok(),
                    f.db.ancestors_of(oid, &filter).as_ref().ok()
                );
            }
        }
        assert!(f.db.components_of_many(&[], &Filter::all()).is_empty());
    }

    #[test]
    fn traversal_cache_serves_repeat_reads_and_invalidates_on_write() {
        // Cache accounting is read through the registry counters; they are
        // monotonic, so the test works in before/after deltas.
        let misses = |f: &Fixture| {
            f.db.metrics_snapshot()
                .counter("corion_traversal_cache_misses_total")
        };
        let mut f = fixture();
        let b = build(&mut f);
        let base_misses = misses(&f);
        let first = f.db.components_of(b.book, &Filter::all()).unwrap();
        let warm_misses = misses(&f);
        let obs_on = cfg!(feature = "obs");
        if obs_on {
            assert!(
                warm_misses > base_misses,
                "cold traversal populates the cache"
            );
        }
        let second = f.db.components_of(b.book, &Filter::all()).unwrap();
        assert_eq!(first, second);
        let snap = f.db.metrics_snapshot();
        if obs_on {
            assert_eq!(
                snap.counter("corion_traversal_cache_misses_total"),
                warm_misses,
                "repeat traversal is all hits"
            );
            assert!(snap.counter("corion_traversal_cache_hits_total") > 0);
        }
        // A write bumps the generation; the next read drops the cache and
        // sees the new hierarchy.
        let gen_before = f.db.hierarchy_generation();
        f.db.delete(b.ch2).unwrap();
        assert!(f.db.hierarchy_generation() > gen_before);
        let after = f.db.components_of(b.book, &Filter::all()).unwrap();
        let set: HashSet<Oid> = after.iter().copied().collect();
        assert_eq!(set, [b.ch1, b.p1, b.p2, b.img].into_iter().collect());
        if obs_on {
            let snap = f.db.metrics_snapshot();
            assert!(snap.counter("corion_traversal_cache_invalidations_total") >= 1);
            assert_eq!(
                snap.gauge("corion_hierarchy_generation") as u64,
                f.db.hierarchy_generation()
            );
        }
        assert_eq!(
            after,
            f.db.components_of_uncached(b.book, &Filter::all()).unwrap()
        );
    }
}
