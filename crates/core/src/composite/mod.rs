//! Composite-object semantics (paper §2.2, §3).
//!
//! * [`topology`] — the parent sets `IX/DX/IS/DS`, Topology Rules 1–4, and
//!   the Make-Component Rule;
//! * [`make`] — the §2.4 algorithm for making an existing object a
//!   component (attach/detach with reverse-reference bookkeeping);
//! * [`delete`] — the recursive Deletion Rule;
//! * [`ops`] — `components-of`, `parents-of`, `ancestors-of` and the
//!   predicate messages of §3;
//! * [`cache`] — the generation-invalidated hierarchy cache behind the
//!   shared-read (`&self`) traversal engine.

pub mod cache;
pub mod delete;
pub mod make;
pub mod ops;
pub mod topology;

pub use cache::TraversalCacheStats;
pub use ops::Filter;
pub use topology::ParentSets;
