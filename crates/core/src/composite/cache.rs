//! Generation-invalidated hierarchy cache for the §3 traversals.
//!
//! Walking a composite hierarchy costs one object fetch-and-decode per
//! visited node *per traversal* — repeat `components-of`/`ancestors-of`
//! calls over a stable hierarchy redo all of that work. This cache memoises
//! the hierarchy-shaped slice of each object (its level-1 component set and
//! its reverse composite references) plus the two closures the traversals
//! derive from them (the unfiltered ancestor set and the root set).
//!
//! **Invalidation** is deliberately coarse: the [`Database`] bumps a
//! monotonically increasing *hierarchy generation* on every object write
//! (`save`/`insert_object`/`erase` — which covers `make_component`,
//! `set_attr`, the recursive Deletion Rule, and undo rollback) and on every
//! DDL entry point (schema evolution can change reference flags *without*
//! touching stored objects, via the deferred operation logs of §4.3). A
//! lookup that observes a generation newer than the one the cached maps
//! were built under drops the whole cache. Coarse invalidation trades
//! repeat-read speed for write-path simplicity — exactly the right trade
//! for the read-mostly traversal workloads of §3 — and makes staleness
//! impossible by construction: every mutation path funnels through a bump.
//!
//! Reads are `&self` and internally synchronised (atomics + one `RwLock`),
//! so concurrent readers share the cache; mutations require `&mut Database`
//! and therefore never race a reader.
//!
//! **Accounting** is double-booked. The cache increments monotonic
//! registry counters (`corion_traversal_cache_{hits,misses,invalidations}_total`,
//! surfaced by [`Database::metrics_snapshot`](crate::db::Database::metrics_snapshot))
//! and, in parallel, a trio of local atomics serving the deprecated
//! resettable [`TraversalCacheStats`] shim. The locals go away with the
//! shim; the registry counters are the contract.
//!
//! [`Database`]: crate::db::Database

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use corion_obs::Registry;
use parking_lot::RwLock;

use crate::oid::Oid;
use crate::refs::ReverseRef;
use crate::schema::attr::CompositeSpec;

/// Counters describing traversal-cache behaviour, surfaced by
/// [`Database::traversal_cache_stats`](crate::db::Database::traversal_cache_stats)
/// next to the buffer-pool counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraversalCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to recompute (and then populated the cache).
    pub misses: u64,
    /// Times a lookup found the cache stale and dropped it (at most one per
    /// generation bump, no matter how many entries were cached).
    pub invalidations: u64,
    /// Current hierarchy generation (bumped by every write and DDL change).
    pub generation: u64,
}

/// The cached maps, all built under one generation.
#[derive(Default)]
struct Maps {
    /// Generation the maps are valid for.
    valid_for: u64,
    /// Level-1 component set: every forward composite reference of the key,
    /// as `(attribute spec, component)` pairs in attribute order.
    children: HashMap<Oid, Arc<Vec<(CompositeSpec, Oid)>>>,
    /// Reverse composite references of the key (post-deferred-maintenance).
    parents: HashMap<Oid, Arc<Vec<ReverseRef>>>,
    /// Unfiltered ancestor closure of the key, BFS order.
    ancestors: HashMap<Oid, Arc<Vec<Oid>>>,
    /// Roots of every composite object containing the key.
    roots: HashMap<Oid, Arc<Vec<Oid>>>,
}

impl Maps {
    fn is_empty(&self) -> bool {
        self.children.is_empty()
            && self.parents.is_empty()
            && self.ancestors.is_empty()
            && self.roots.is_empty()
    }

    fn clear(&mut self) {
        self.children.clear();
        self.parents.clear();
        self.ancestors.clear();
        self.roots.clear();
    }
}

/// The per-database traversal cache. See the module docs for the contract.
pub(crate) struct TraversalCache {
    generation: AtomicU64,
    /// While a transaction is open the cache stands aside: per-write bumps
    /// are deferred to one bump at commit/abort, so without suppression a
    /// mid-transaction traversal could be served a pre-transaction entry
    /// (stale) or could cache an uncommitted one. Suppressed lookups
    /// return `None` and suppressed stores drop the value, both uncounted.
    suppressed: AtomicBool,
    /// Resettable locals behind the deprecated [`TraversalCacheStats`] shim.
    /// Only ever updated while holding a `maps` guard (read for hits/misses
    /// on the fast path, write for the flush), so `reset_stats` can make the
    /// whole trio consistent by taking the write lock.
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    /// Monotonic registry counters — the canonical accounting.
    hits_total: corion_obs::Counter,
    misses_total: corion_obs::Counter,
    invalidations_total: corion_obs::Counter,
    /// `corion_hierarchy_generation`, mirrored on every bump.
    generation_gauge: corion_obs::Gauge,
    maps: RwLock<Maps>,
}

impl TraversalCache {
    pub(crate) fn new(registry: &Registry) -> Self {
        TraversalCache {
            generation: AtomicU64::new(0),
            suppressed: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            hits_total: registry.counter("corion_traversal_cache_hits_total"),
            misses_total: registry.counter("corion_traversal_cache_misses_total"),
            invalidations_total: registry.counter("corion_traversal_cache_invalidations_total"),
            generation_gauge: registry.gauge("corion_hierarchy_generation"),
            maps: RwLock::new(Maps::default()),
        }
    }

    /// Declares that the hierarchy may have changed. Cached entries built
    /// under earlier generations are dropped lazily, on the next lookup.
    pub(crate) fn bump(&self) {
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.generation_gauge
            .set(i64::try_from(gen).unwrap_or(i64::MAX));
    }

    /// The current hierarchy generation.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Turns transaction-scoped suppression on or off (see the field docs).
    pub(crate) fn set_suppressed(&self, on: bool) {
        self.suppressed.store(on, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> TraversalCacheStats {
        TraversalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            generation: self.generation(),
        }
    }

    /// Zeroes the resettable shim counters (never the registry counters —
    /// those are monotonic by contract).
    ///
    /// Takes the maps **write lock** so the three stores are atomic with
    /// respect to every increment: hits/misses are bumped under the read
    /// lock and the invalidation count under the write lock, so an unlocked
    /// reset racing a stale-flush could zero `hits` and `misses` yet keep an
    /// invalidation from the pre-reset epoch, leaving the trio incoherent
    /// (`invalidations > 0` with no recorded lookups).
    pub(crate) fn reset_stats(&self) {
        let _guard = self.maps.write();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
    }

    /// Looks one map up, counting a hit or a miss and flushing stale maps
    /// first. `select` picks the map out of [`Maps`].
    fn lookup<V: Clone>(&self, key: Oid, select: impl Fn(&Maps) -> &HashMap<Oid, V>) -> Option<V> {
        if self.suppressed.load(Ordering::Relaxed) {
            return None;
        }
        let gen = self.generation();
        {
            let maps = self.maps.read();
            if maps.valid_for == gen {
                return match select(&maps).get(&key) {
                    Some(v) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.hits_total.inc();
                        Some(v.clone())
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.misses_total.inc();
                        None
                    }
                };
            }
        }
        // Stale: flush under the write lock (another thread may have done it
        // meanwhile — re-check so one bump counts one invalidation).
        let mut maps = self.maps.write();
        if maps.valid_for != gen {
            if !maps.is_empty() {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.invalidations_total.inc();
            }
            maps.clear();
            maps.valid_for = gen;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_total.inc();
        None
    }

    /// Stores into one map, unless the maps went stale since the lookup
    /// (impossible while readers hold `&Database`, but cheap to re-check).
    fn store<V>(&self, key: Oid, value: V, select: impl Fn(&mut Maps) -> &mut HashMap<Oid, V>) {
        if self.suppressed.load(Ordering::Relaxed) {
            return;
        }
        let gen = self.generation();
        let mut maps = self.maps.write();
        if maps.valid_for == gen {
            select(&mut maps).insert(key, value);
        }
    }

    pub(crate) fn children(&self, oid: Oid) -> Option<Arc<Vec<(CompositeSpec, Oid)>>> {
        self.lookup(oid, |m| &m.children)
    }

    pub(crate) fn store_children(&self, oid: Oid, v: Arc<Vec<(CompositeSpec, Oid)>>) {
        self.store(oid, v, |m| &mut m.children);
    }

    pub(crate) fn parents(&self, oid: Oid) -> Option<Arc<Vec<ReverseRef>>> {
        self.lookup(oid, |m| &m.parents)
    }

    pub(crate) fn store_parents(&self, oid: Oid, v: Arc<Vec<ReverseRef>>) {
        self.store(oid, v, |m| &mut m.parents);
    }

    pub(crate) fn ancestors(&self, oid: Oid) -> Option<Arc<Vec<Oid>>> {
        self.lookup(oid, |m| &m.ancestors)
    }

    pub(crate) fn store_ancestors(&self, oid: Oid, v: Arc<Vec<Oid>>) {
        self.store(oid, v, |m| &mut m.ancestors);
    }

    pub(crate) fn roots(&self, oid: Oid) -> Option<Arc<Vec<Oid>>> {
        self.lookup(oid, |m| &m.roots)
    }

    pub(crate) fn store_roots(&self, oid: Oid, v: Arc<Vec<Oid>>) {
        self.store(oid, v, |m| &mut m.roots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::{ClassId, Oid};

    fn oid(n: u64) -> Oid {
        Oid::new(ClassId(1), n)
    }

    fn cache() -> TraversalCache {
        TraversalCache::new(&Registry::new())
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = cache();
        assert!(c.roots(oid(1)).is_none());
        c.store_roots(oid(1), Arc::new(vec![oid(2)]));
        assert_eq!(c.roots(oid(1)).as_deref(), Some(&vec![oid(2)]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));
    }

    #[test]
    fn bump_invalidates_everything_once() {
        let c = cache();
        c.roots(oid(1));
        c.store_roots(oid(1), Arc::new(vec![]));
        c.ancestors(oid(1));
        c.store_ancestors(oid(1), Arc::new(vec![]));
        c.bump();
        c.bump(); // two bumps, but one flush event
        assert!(c.roots(oid(1)).is_none());
        assert!(c.ancestors(oid(1)).is_none());
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.generation, 2);
    }

    #[test]
    fn store_under_stale_generation_is_dropped() {
        let c = cache();
        c.roots(oid(1)); // primes valid_for = 0
        c.bump();
        c.store_roots(oid(1), Arc::new(vec![oid(9)])); // stale: discarded
        assert!(c.roots(oid(1)).is_none());
    }

    #[test]
    fn concurrent_readers_share_entries() {
        let c = cache();
        c.children(oid(7));
        c.store_children(oid(7), Arc::new(vec![]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert!(c.children(oid(7)).is_some());
                    }
                });
            }
        });
        assert_eq!(c.stats().hits, 400);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn registry_counters_mirror_the_shim_and_survive_reset() {
        let registry = Registry::new();
        let c = TraversalCache::new(&registry);
        c.roots(oid(1)); // miss
        c.store_roots(oid(1), Arc::new(vec![]));
        c.roots(oid(1)); // hit
        c.bump();
        c.roots(oid(1)); // invalidation + miss
        let snap = registry.snapshot();
        assert_eq!(snap.counter("corion_traversal_cache_hits_total"), 1);
        assert_eq!(snap.counter("corion_traversal_cache_misses_total"), 2);
        assert_eq!(
            snap.counter("corion_traversal_cache_invalidations_total"),
            1
        );
        assert_eq!(snap.gauge("corion_hierarchy_generation"), 1);
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        // Registry counters are monotonic: a reset must not touch them.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("corion_traversal_cache_hits_total"), 1);
    }
}
