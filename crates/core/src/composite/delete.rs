//! The Deletion Rule (paper §2.2).
//!
//! > "del(O') => del(O) if any of following three conditions holds:
//! >   1. O' has a dependent exclusive reference to O.
//! >   2. O' has a dependent shared reference to O and DS(O) = {O'}.
//! >   3. An object O'' exists such that del(O') => del(O'') and either
//! >      (3.a) O'' has a dependent exclusive composite reference to O, or
//! >      (3.b) O'' has a dependent shared composite reference to O and
//! >            DS(O) = {O''}."
//!
//! Condition 3 is the recursive closure; the implementation below computes
//! it with a worklist. Independent references never propagate deletion —
//! that is precisely the reuse-enabling change over \[KIM87b\] (§1, third
//! shortcoming). Deleted objects are removed from their surviving parents'
//! forward references (possible because every composite reference has a
//! reverse reference, §2.4); weak references are left dangling, ORION-style.

use std::collections::HashSet;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::oid::Oid;
use crate::schema::attr::CompositeSpec;

impl Database {
    /// Deletes `root` and recursively every component required by the
    /// Deletion Rule. Returns the set of objects actually deleted
    /// (including `root`).
    ///
    /// The entire cascade is one atomic batch: a crash mid-delete recovers
    /// to either the full pre-delete state or the full post-delete state,
    /// never a hierarchy with half its members gone.
    pub fn delete(&mut self, root: Oid) -> DbResult<Vec<Oid>> {
        self.atomic(|db| db.delete_inner(root))
    }

    fn delete_inner(&mut self, root: Oid) -> DbResult<Vec<Oid>> {
        if !self.exists(root) {
            return Err(DbError::NoSuchObject(root));
        }
        let mut deleted: HashSet<Oid> = HashSet::new();
        let mut order: Vec<Oid> = Vec::new();
        let mut queue: Vec<Oid> = vec![root];
        while let Some(oid) = queue.pop() {
            if deleted.contains(&oid) || !self.exists(oid) {
                continue;
            }
            // 1. Detach children: remove this parent's reverse reference and
            //    decide whether deletion propagates.
            for &(spec, child) in self.forward_composite_refs(oid)?.iter() {
                if deleted.contains(&child) || !self.exists(child) {
                    continue;
                }
                let mut cobj = self.get(child)?;
                cobj.remove_reverse_ref(oid, spec.dependent, spec.exclusive);
                self.save(&cobj)?;
                if spec.dependent {
                    if spec.exclusive {
                        // Condition 1 / 3.a.
                        queue.push(child);
                    } else if cobj.ds().is_empty() && cobj.dx().is_empty() {
                        // Condition 2 / 3.b: this was the last dependent
                        // reference; otherwise DS(O) := DS(O) - O'.
                        queue.push(child);
                    }
                }
            }
            // 2. Remove the object from its surviving parents' forward
            //    references.
            let obj = self.get(oid)?; // re-read: reverse refs may have changed
            for rr in &obj.reverse_refs {
                if deleted.contains(&rr.parent) || !self.exists(rr.parent) {
                    continue;
                }
                let mut pobj = self.get(rr.parent)?;
                for v in &mut pobj.attrs {
                    v.remove_ref(oid);
                }
                self.save(&pobj)?;
            }
            // 3. Physically remove.
            self.erase(oid)?;
            deleted.insert(oid);
            order.push(oid);
        }
        Ok(order)
    }

    /// Every forward composite reference held by `oid` — its *level-1
    /// component set* — as `(attribute spec, referenced component)` pairs.
    /// Memoised in the traversal cache.
    pub(crate) fn forward_composite_refs(
        &self,
        oid: Oid,
    ) -> DbResult<std::sync::Arc<Vec<(CompositeSpec, Oid)>>> {
        if let Some(cached) = self.traversal_cache.children(oid) {
            return Ok(cached);
        }
        let out = std::sync::Arc::new(self.forward_composite_refs_uncached(oid)?);
        self.traversal_cache.store_children(oid, out.clone());
        Ok(out)
    }

    /// [`Database::forward_composite_refs`] recomputed from storage,
    /// bypassing the traversal cache (the equivalence oracle).
    pub(crate) fn forward_composite_refs_uncached(
        &self,
        oid: Oid,
    ) -> DbResult<Vec<(CompositeSpec, Oid)>> {
        let obj = self.get(oid)?;
        let class = self.catalog.class(oid.class)?;
        let mut out = Vec::new();
        for (idx, def) in class.attrs.iter().enumerate() {
            if let Some(spec) = def.composite {
                for child in obj.attrs[idx].refs() {
                    out.push((spec, child));
                }
            }
        }
        Ok(out)
    }
}

/// Rollback-grade removal: erases `oid` and repairs both directions of
/// bookkeeping (children lose their reverse references to `oid`; parents
/// lose their forward references to `oid`) **without** any dependent
/// cascade. Used to undo a half-created `make`.
pub(crate) fn delete_raw(db: &mut Database, oid: Oid) -> DbResult<()> {
    if !db.exists(oid) {
        return Ok(());
    }
    for &(spec, child) in db.forward_composite_refs(oid)?.iter() {
        if db.exists(child) {
            let mut cobj = db.get(child)?;
            cobj.remove_reverse_ref(oid, spec.dependent, spec.exclusive);
            db.save(&cobj)?;
        }
    }
    let obj = db.get(oid)?;
    for rr in obj.reverse_refs.clone() {
        if db.exists(rr.parent) {
            let mut pobj = db.get(rr.parent)?;
            for v in &mut pobj.attrs {
                v.remove_ref(oid);
            }
            db.save(&pobj)?;
        }
    }
    db.erase(oid)
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;
    use crate::{ClassId, Oid};

    /// Schema with one attribute of each composite kind plus a weak ref.
    fn full_db() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let item = db.define_class(ClassBuilder::new("Item")).unwrap();
        let holder = db
            .define_class(
                ClassBuilder::new("Holder")
                    .attr_composite(
                        "dep_excl",
                        Domain::Class(item),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    )
                    .attr_composite(
                        "ind_excl",
                        Domain::Class(item),
                        CompositeSpec {
                            exclusive: true,
                            dependent: false,
                        },
                    )
                    .attr_composite(
                        "dep_shared",
                        Domain::SetOf(Box::new(Domain::Class(item))),
                        CompositeSpec {
                            exclusive: false,
                            dependent: true,
                        },
                    )
                    .attr_composite(
                        "ind_shared",
                        Domain::SetOf(Box::new(Domain::Class(item))),
                        CompositeSpec {
                            exclusive: false,
                            dependent: false,
                        },
                    )
                    .attr("weak", Domain::Class(item)),
            )
            .unwrap();
        (db, holder, item)
    }

    fn item(db: &mut Database, class: ClassId) -> Oid {
        db.make(class, vec![], vec![]).unwrap()
    }

    #[test]
    fn formalization_case1_dependent_exclusive_cascades() {
        // del(O') => del(O) for dependent exclusive.
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h = db
            .make(holder, vec![("dep_excl", Value::Ref(o))], vec![])
            .unwrap();
        let deleted = db.delete(h).unwrap();
        assert!(deleted.contains(&o));
        assert!(!db.exists(o));
    }

    #[test]
    fn formalization_case2_independent_exclusive_survives() {
        // del(O') =/=> del(O) for independent exclusive.
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h = db
            .make(holder, vec![("ind_excl", Value::Ref(o))], vec![])
            .unwrap();
        db.delete(h).unwrap();
        assert!(db.exists(o));
        assert!(
            db.get(o).unwrap().reverse_refs.is_empty(),
            "reverse ref cleaned"
        );
    }

    #[test]
    fn formalization_case3_independent_shared_survives() {
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h = db
            .make(
                holder,
                vec![("ind_shared", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        db.delete(h).unwrap();
        assert!(db.exists(o));
    }

    #[test]
    fn formalization_case4_dependent_shared_deletes_only_when_last() {
        // del(O') => del(O) only if DS(O) = {O'}.
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h1 = db
            .make(
                holder,
                vec![("dep_shared", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        let h2 = db
            .make(
                holder,
                vec![("dep_shared", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        db.delete(h1).unwrap();
        assert!(db.exists(o), "DS(o) still contains h2");
        assert_eq!(db.get(o).unwrap().ds(), vec![h2]);
        db.delete(h2).unwrap();
        assert!(!db.exists(o), "last dependent shared parent deleted");
    }

    #[test]
    fn deletion_rule_condition3_recursive() {
        // h --dep_excl--> m --dep_excl--> o: deleting h must delete o via
        // the intermediate m (condition 3.a).
        let mut db = Database::new();
        let leaf = db.define_class(ClassBuilder::new("Leaf")).unwrap();
        let mid = db
            .define_class(ClassBuilder::new("Mid").attr_composite(
                "child",
                Domain::Class(leaf),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let top = db
            .define_class(ClassBuilder::new("Top").attr_composite(
                "child",
                Domain::Class(mid),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let o = db.make(leaf, vec![], vec![]).unwrap();
        let m = db
            .make(mid, vec![("child", Value::Ref(o))], vec![])
            .unwrap();
        let h = db
            .make(top, vec![("child", Value::Ref(m))], vec![])
            .unwrap();
        let deleted = db.delete(h).unwrap();
        assert_eq!(deleted.len(), 3);
        assert!(!db.exists(m) && !db.exists(o));
    }

    #[test]
    fn deep_mixed_cascade_stops_at_independent_boundary() {
        // top --dep--> a --ind--> b --dep--> c: deleting top removes a, but
        // b is independent of a so b and (transitively) c survive.
        let mut db = Database::new();
        let c3 = db.define_class(ClassBuilder::new("C3")).unwrap();
        let c2 = db
            .define_class(ClassBuilder::new("C2").attr_composite(
                "next",
                Domain::Class(c3),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let c1 = db
            .define_class(ClassBuilder::new("C1").attr_composite(
                "next",
                Domain::Class(c2),
                CompositeSpec {
                    exclusive: true,
                    dependent: false,
                },
            ))
            .unwrap();
        let top = db
            .define_class(ClassBuilder::new("TopC").attr_composite(
                "next",
                Domain::Class(c1),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let c = db.make(c3, vec![], vec![]).unwrap();
        let b = db.make(c2, vec![("next", Value::Ref(c))], vec![]).unwrap();
        let a = db.make(c1, vec![("next", Value::Ref(b))], vec![]).unwrap();
        let t = db.make(top, vec![("next", Value::Ref(a))], vec![]).unwrap();
        db.delete(t).unwrap();
        assert!(!db.exists(a), "dependent component deleted");
        assert!(db.exists(b) && db.exists(c), "independent subtree survives");
    }

    #[test]
    fn diamond_of_dependent_shared_parents_deletes_once_both_go() {
        // root holds two mids; both mids share o dependently. Deleting root
        // cascades through both mids, and o goes only after the second.
        let mut db = Database::new();
        let leaf = db.define_class(ClassBuilder::new("Leaf")).unwrap();
        let mid = db
            .define_class(ClassBuilder::new("Mid").attr_composite(
                "content",
                Domain::SetOf(Box::new(Domain::Class(leaf))),
                CompositeSpec {
                    exclusive: false,
                    dependent: true,
                },
            ))
            .unwrap();
        let root = db
            .define_class(ClassBuilder::new("Root").attr_composite(
                "mids",
                Domain::SetOf(Box::new(Domain::Class(mid))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        let o = db.make(leaf, vec![], vec![]).unwrap();
        let m1 = db
            .make(
                mid,
                vec![("content", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        let m2 = db
            .make(
                mid,
                vec![("content", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        let r = db
            .make(
                root,
                vec![("mids", Value::Set(vec![Value::Ref(m1), Value::Ref(m2)]))],
                vec![],
            )
            .unwrap();
        let deleted = db.delete(r).unwrap();
        assert_eq!(deleted.len(), 4, "r, m1, m2 and finally o");
        assert!(!db.exists(o));
    }

    #[test]
    fn surviving_parent_loses_forward_reference_to_deleted_component() {
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        // o is an independent-shared component of h1 AND dependent-shared of
        // h2; deleting h2 (the only dependent parent) deletes o, and h1's
        // forward reference must be scrubbed.
        let h1 = db
            .make(
                holder,
                vec![("ind_shared", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        let h2 = db
            .make(
                holder,
                vec![("dep_shared", Value::Set(vec![Value::Ref(o)]))],
                vec![],
            )
            .unwrap();
        db.delete(h2).unwrap();
        assert!(
            !db.exists(o),
            "paper's literal rule: DS(o) = {{h2}} triggers deletion"
        );
        assert_eq!(db.get_attr(h1, "ind_shared").unwrap(), Value::Set(vec![]));
    }

    #[test]
    fn weak_references_dangle_after_delete() {
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h = db
            .make(holder, vec![("weak", Value::Ref(o))], vec![])
            .unwrap();
        db.delete(o).unwrap();
        // ORION-style: the weak reference still holds the dead UID…
        assert_eq!(db.get_attr(h, "weak").unwrap(), Value::Ref(o));
        // …but dereferencing it fails.
        assert!(db.get(o).is_err());
    }

    #[test]
    fn delete_reports_deletion_order_root_first() {
        let (mut db, holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        let h = db
            .make(holder, vec![("dep_excl", Value::Ref(o))], vec![])
            .unwrap();
        let deleted = db.delete(h).unwrap();
        assert_eq!(deleted[0], h);
        assert_eq!(deleted.len(), 2);
    }

    #[test]
    fn delete_missing_object_fails() {
        let (mut db, _holder, itemc) = full_db();
        let o = item(&mut db, itemc);
        db.delete(o).unwrap();
        assert!(db.delete(o).is_err());
    }
}
