//! Making an existing object a component — the §2.4 algorithm — and its
//! inverse.
//!
//! > "1. Access Object O.
//! >  2. If (A is a shared composite attribute and the X flag in a reverse
//! >     composite reference in O is set) or (A is an exclusive composite
//! >     attribute and O has any reverse composite reference) then return
//! >     (error).
//! >  3. Insert in O a reverse composite reference to O' with the D flag set
//! >     if A is a dependent attribute, the X flag set if A is an exclusive
//! >     attribute."
//!
//! Supporting *bottom-up* creation — assembling already existing objects —
//! is the second shortcoming of \[KIM87b\] that this paper removes (§1), and
//! it also means "the root of a composite object may change" (§2.1):
//! attaching a current root under a new parent simply re-roots the
//! hierarchy.

use crate::db::{Database, OrphanPolicy};
use crate::error::{DbError, DbResult};
use crate::oid::Oid;
use crate::schema::attr::CompositeSpec;

impl Database {
    /// Makes `child` a component of `parent` through composite attribute
    /// `attr` — the bottom-up assembly entry point.
    ///
    /// Fails if `attr` is not composite, if the Make-Component Rule rejects
    /// the reference, or if the reference would close a part-hierarchy
    /// cycle. The child's reverse reference and the parent's forward
    /// reference are written in one atomic batch — a crash cannot leave one
    /// direction without the other.
    pub fn make_component(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        self.atomic(|db| db.make_component_inner(child, parent, attr))
    }

    fn make_component_inner(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        let pclass = self.catalog.class(parent.class)?;
        let def = pclass.attr(attr).ok_or_else(|| DbError::NoSuchAttribute {
            class: parent.class,
            attr: attr.into(),
        })?;
        if def.composite.is_none() {
            return Err(DbError::NotComposite {
                class: parent.class,
                attr: attr.into(),
            });
        }
        if let Some(dc) = def.domain.referenced_class() {
            if !self.is_subclass_of(child.class, dc) {
                return Err(DbError::DomainMismatch {
                    attr: attr.into(),
                    expected: def.domain.describe(),
                    got: format!("instance of {}", child.class),
                });
            }
        }
        self.add_to_parent_attr(child, parent, attr)
    }

    /// Removes `child` from `parent`'s composite attribute `attr`,
    /// detaching the reverse reference and applying the orphan policy —
    /// including any orphan cascade — in one atomic batch.
    pub fn remove_component(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        self.atomic(|db| db.remove_component_inner(child, parent, attr))
    }

    fn remove_component_inner(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        let pclass = self.catalog.class(parent.class)?;
        let idx = pclass
            .attr_index(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: parent.class,
                attr: attr.into(),
            })?;
        let def = pclass.attrs[idx].clone();
        let Some(spec) = def.composite else {
            return Err(DbError::NotComposite {
                class: parent.class,
                attr: attr.into(),
            });
        };
        let mut pobj = self.get(parent)?;
        if pobj.attrs[idx].remove_ref(child) == 0 {
            return Err(DbError::NoSuchObject(child));
        }
        self.save(&pobj)?;
        self.detach_child(child, parent, spec)
    }

    /// Adds the reverse composite reference for a forward reference
    /// `parent --spec--> child`, enforcing the Make-Component Rule and
    /// acyclicity. (The forward reference itself is written by the caller.)
    pub(crate) fn attach_child(
        &mut self,
        child: Oid,
        parent: Oid,
        spec: CompositeSpec,
    ) -> DbResult<()> {
        if !self.exists(child) {
            return Err(DbError::NoSuchObject(child));
        }
        if !self.exists(parent) {
            return Err(DbError::NoSuchObject(parent));
        }
        if child == parent || self.component_of(parent, child)? {
            return Err(DbError::CycleDetected { child, parent });
        }
        let mut cobj = self.get(child)?;
        super::topology::check_make_component(&cobj, spec)?;
        cobj.reverse_refs.push(crate::refs::ReverseRef::new(
            parent,
            spec.dependent,
            spec.exclusive,
        ));
        debug_assert!(super::topology::ParentSets::of(&cobj).check(child).is_ok());
        self.save(&cobj)
    }

    /// Removes the reverse composite reference for a forward reference that
    /// the caller has already removed, then applies the orphan policy: under
    /// [`OrphanPolicy::DeleteDependentOrphans`], losing the last *dependent*
    /// parent deletes the component (paper §2.3 Example 2: "for a paragraph
    /// to exist, there must be at least one section containing it").
    pub(crate) fn detach_child(
        &mut self,
        child: Oid,
        parent: Oid,
        spec: CompositeSpec,
    ) -> DbResult<()> {
        let delete_orphans = self.config.orphan_policy == OrphanPolicy::DeleteDependentOrphans;
        self.detach_child_with(child, parent, spec, delete_orphans)
    }

    /// [`Database::detach_child`] with the orphan decision made explicit —
    /// schema-evolution drops (§4.1) mandate Deletion-Rule semantics
    /// regardless of the configured policy.
    pub(crate) fn detach_child_with(
        &mut self,
        child: Oid,
        parent: Oid,
        spec: CompositeSpec,
        delete_orphans: bool,
    ) -> DbResult<()> {
        if !self.exists(child) {
            // The child may already be gone if a concurrent cascade removed
            // it; detaching an absent child is a no-op.
            return Ok(());
        }
        let mut cobj = self.get(child)?;
        if !cobj.remove_reverse_ref(parent, spec.dependent, spec.exclusive) {
            return Ok(());
        }
        let lost_last_dependent = spec.dependent && cobj.dx().is_empty() && cobj.ds().is_empty();
        self.save(&cobj)?;
        if lost_last_dependent && delete_orphans {
            self.delete(child)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::error::DbError;
    use crate::schema::attr::{CompositeSpec, Domain};
    use crate::schema::class::ClassBuilder;
    use crate::value::Value;
    use crate::ClassId;

    /// Document/Section-style schema: shared dependent `content`, exclusive
    /// independent `annex`.
    fn doc_db() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let sec = db.define_class(ClassBuilder::new("Section")).unwrap();
        let doc = db
            .define_class(
                ClassBuilder::new("Document")
                    .attr_composite(
                        "content",
                        Domain::SetOf(Box::new(Domain::Class(sec))),
                        CompositeSpec {
                            exclusive: false,
                            dependent: true,
                        },
                    )
                    .attr_composite(
                        "annex",
                        Domain::Class(sec),
                        CompositeSpec {
                            exclusive: true,
                            dependent: false,
                        },
                    ),
            )
            .unwrap();
        (db, doc, sec)
    }

    #[test]
    fn bottom_up_assembly() {
        let (mut db, doc, sec) = doc_db();
        // Create components *first*, then the parent, then assemble.
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d, "content").unwrap();
        assert!(db.get_attr(d, "content").unwrap().references(s));
        assert_eq!(db.get(s).unwrap().ds(), vec![d]);
    }

    #[test]
    fn shared_component_joins_second_parent() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d1 = db.make(doc, vec![], vec![]).unwrap();
        let d2 = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d1, "content").unwrap();
        db.make_component(s, d2, "content").unwrap();
        assert_eq!(db.get(s).unwrap().ds().len(), 2);
    }

    #[test]
    fn exclusive_attach_rejected_when_child_has_any_composite_ref() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d1 = db.make(doc, vec![], vec![]).unwrap();
        let d2 = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d1, "content").unwrap();
        let err = db.make_component(s, d2, "annex").unwrap_err();
        assert!(matches!(err, DbError::MakeComponentViolation { .. }));
    }

    #[test]
    fn shared_attach_rejected_when_child_is_exclusive() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d1 = db.make(doc, vec![], vec![]).unwrap();
        let d2 = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d1, "annex").unwrap();
        let err = db.make_component(s, d2, "content").unwrap_err();
        assert!(matches!(err, DbError::MakeComponentViolation { .. }));
    }

    #[test]
    fn weak_attribute_rejects_make_component() {
        let mut db = Database::new();
        let t = db.define_class(ClassBuilder::new("T")).unwrap();
        let c = db
            .define_class(ClassBuilder::new("C").attr("w", Domain::Class(t)))
            .unwrap();
        let o = db.make(t, vec![], vec![]).unwrap();
        let p = db.make(c, vec![], vec![]).unwrap();
        assert!(matches!(
            db.make_component(o, p, "w"),
            Err(DbError::NotComposite { .. })
        ));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut db = Database::new();
        let node = db.define_class(ClassBuilder::new("Node")).unwrap();
        // Self-referential composite class.
        db.catalog.class_mut(node).unwrap().local_attrs.push(
            crate::schema::attr::AttributeDef::composite(
                "children",
                Domain::SetOf(Box::new(Domain::Class(node))),
                CompositeSpec {
                    exclusive: false,
                    dependent: false,
                },
            ),
        );
        db.catalog.reflatten_from(node);
        let a = db.make(node, vec![], vec![]).unwrap();
        let b = db.make(node, vec![], vec![]).unwrap();
        let c = db.make(node, vec![], vec![]).unwrap();
        db.make_component(b, a, "children").unwrap();
        db.make_component(c, b, "children").unwrap();
        assert!(matches!(
            db.make_component(a, c, "children"),
            Err(DbError::CycleDetected { .. })
        ));
        assert!(matches!(
            db.make_component(a, a, "children"),
            Err(DbError::CycleDetected { .. })
        ));
    }

    #[test]
    fn re_rooting_a_composite_object() {
        // §2.1: "an object which is the current root of a composite object
        // may become the target of a composite reference from another
        // object."
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d = db
            .make(
                doc,
                vec![("content", Value::Set(vec![Value::Ref(s)]))],
                vec![],
            )
            .unwrap();
        // d is currently a root. Build a bigger document that absorbs... a
        // Document cannot contain a Document in this schema; use a fresh
        // schema trick: d gains a shared parent through another document's
        // content? Domain is Section. Instead verify root status directly.
        assert!(db.get(d).unwrap().reverse_refs.is_empty(), "d is a root");
        assert_eq!(db.get(s).unwrap().ds(), vec![d]);
    }

    #[test]
    fn remove_component_detaches_and_applies_orphan_policy() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d1 = db.make(doc, vec![], vec![]).unwrap();
        let d2 = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d1, "content").unwrap();
        db.make_component(s, d2, "content").unwrap();
        db.remove_component(s, d1, "content").unwrap();
        assert!(db.exists(s), "still held by d2");
        assert_eq!(db.get(s).unwrap().ds(), vec![d2]);
        db.remove_component(s, d2, "content").unwrap();
        assert!(
            !db.exists(s),
            "last dependent parent removed -> orphan deleted"
        );
    }

    #[test]
    fn independent_component_survives_removal() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d = db.make(doc, vec![], vec![]).unwrap();
        db.make_component(s, d, "annex").unwrap();
        db.remove_component(s, d, "annex").unwrap();
        assert!(
            db.exists(s),
            "independent components are reusable after dismantling"
        );
        assert!(db.get(s).unwrap().reverse_refs.is_empty());
    }

    #[test]
    fn remove_component_of_non_member_fails() {
        let (mut db, doc, sec) = doc_db();
        let s = db.make(sec, vec![], vec![]).unwrap();
        let d = db.make(doc, vec![], vec![]).unwrap();
        assert!(db.remove_component(s, d, "content").is_err());
    }
}
