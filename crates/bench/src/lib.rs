//! Shared helpers for the CORION benchmark harness.
//!
//! The benches (one per experiment in DESIGN.md §4) live in `benches/`;
//! this library hosts the setup routines they share so Criterion timing
//! loops measure only the operation under study.

use corion::workload::{CorpusParams, DagParams, GeneratedDag};
use corion::{Database, DbConfig};

/// A database tuned for benchmarking (small buffer pool so cold-cache
/// clustering effects are visible).
pub fn bench_db(buffer_pages: usize) -> Database {
    Database::with_config(DbConfig {
        store: corion::storage::StoreConfig {
            buffer_capacity: buffer_pages,
            ..corion::storage::StoreConfig::default()
        },
        ..DbConfig::default()
    })
}

/// A fresh hierarchy of roughly `size_hint` objects with the given sharing.
pub fn dag_of(
    db: &mut Database,
    depth: usize,
    fanout: usize,
    share: f64,
    seed: u64,
) -> GeneratedDag {
    GeneratedDag::generate(
        db,
        DagParams {
            depth,
            fanout,
            roots: 1,
            share_fraction: share,
            dependent_fraction: 0.5,
            seed,
        },
    )
    .expect("generation succeeds")
}

/// Default corpus parameters scaled by a document count.
pub fn corpus_params(documents: usize, share: f64, seed: u64) -> CorpusParams {
    CorpusParams {
        documents,
        sections_per_doc: 5,
        paras_per_section: 4,
        share_fraction: share,
        figures_per_doc: 2,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_working_fixtures() {
        let mut db = bench_db(64);
        let dag = dag_of(&mut db, 2, 3, 0.2, 1);
        assert_eq!(dag.len(), 1 + 3 + 9);
        let p = corpus_params(4, 0.5, 2);
        assert_eq!(p.documents, 4);
    }
}
