//! Write-path throughput: what the commit pipeline work of this PR buys.
//!
//! Two experiments, both against the same Part/Asm/Root schema:
//!
//!   1. **Hierarchy ingest** — build a composite hierarchy of ~`N`
//!      objects (one root, `N/10` sub-assemblies, nine parts each) four
//!      ways: per-op autocommit (one WAL flush per `make`), a public
//!      transaction (one flush for everything), `make_many` (one call,
//!      one flush), and per-op commits under a `CommitPolicy::Group`
//!      window. Every mode replays the *same* spec list, so the logical
//!      work is identical and only the commit pipeline differs. Reports
//!      median ns/op, ops/s and WAL bytes/op per mode.
//!   2. **Update-heavy mix** — replay a deterministic
//!      [`corion::workload::txmix`] write mix with delta-page logging off
//!      vs on and compare WAL bytes/op.
//!
//! Results land in `BENCH_txn.json` and `BENCH_wal.json` (working
//! directory, or `$CORION_BENCH_OUT`). The process exits nonzero if the
//! asserted floors regress: transactions (or `make_many`) must be ≥ 5×
//! autocommit ops/s on the ingest, and delta logging must cut WAL
//! bytes/op by ≥ 2× on the update mix.
//!
//! Knobs (for CI smoke runs): `CORION_BENCH_OBJECTS` (default 1000),
//! `CORION_BENCH_RUNS` (default 3), `CORION_BENCH_UPDATE_OPS`
//! (default 600).
//!
//! This is a plain binary, not a criterion harness: it measures whole
//! pipelines with `std::time::Instant` and persists machine-readable
//! baselines for later PRs to compare against.

use std::time::Instant;

use corion::storage::StoreConfig;
use corion::workload::txmix::{generate_writes, WriteMixParams, WriteOp};
use corion::{
    ClassBuilder, ClassId, CommitPolicy, CompositeSpec, Database, DbConfig, DbResult, Domain,
    MakeSpec, Oid, ParentRef, Value,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn db_with(policy: CommitPolicy, delta_pages: bool) -> Database {
    Database::with_config(DbConfig {
        store: StoreConfig {
            commit_policy: policy,
            delta_pages,
            // Auto-checkpointing truncates the log mid-run, which would
            // corrupt the bytes-appended accounting below.
            wal_checkpoint_bytes: usize::MAX,
            ..StoreConfig::default()
        },
        ..DbConfig::default()
    })
}

/// Part / Asm (9 parts each) / Root (all assemblies) in one segment.
fn schema(db: &mut Database) -> (ClassId, ClassId, ClassId) {
    let part = db
        .define_class(ClassBuilder::new("Part").attr("payload", Domain::String))
        .unwrap();
    let asm = db
        .define_class(
            ClassBuilder::new("Asm")
                .same_segment_as(part)
                .attr_composite(
                    "parts",
                    Domain::SetOf(Box::new(Domain::Class(part))),
                    CompositeSpec {
                        exclusive: false,
                        dependent: true,
                    },
                ),
        )
        .unwrap();
    let root = db
        .define_class(
            ClassBuilder::new("Root")
                .same_segment_as(part)
                .attr_composite(
                    "subs",
                    Domain::SetOf(Box::new(Domain::Class(asm))),
                    CompositeSpec {
                        exclusive: false,
                        dependent: true,
                    },
                ),
        )
        .unwrap();
    (part, asm, root)
}

/// The hierarchy as a spec list: one root, then groups of one
/// sub-assembly plus nine clustered parts. All ingest modes replay this
/// same list.
fn ingest_specs(part: ClassId, asm: ClassId, root: ClassId, objects: usize) -> Vec<MakeSpec> {
    let mut specs = vec![MakeSpec::new(root)];
    let groups = objects.saturating_sub(1) / 10;
    for g in 0..groups {
        let sub = specs.len();
        specs.push(MakeSpec::new(asm).parent(ParentRef::Created(0), "subs"));
        for i in 0..9 {
            specs.push(
                MakeSpec::new(part)
                    .value(
                        "payload",
                        Value::Str(format!(
                            "part-{g}-{i}-{}",
                            "x".repeat(env_usize("CORION_BENCH_PAYLOAD", 600))
                        )),
                    )
                    .parent(ParentRef::Created(sub), "parts"),
            );
        }
    }
    specs
}

/// Replays the spec list through individual `make` calls (the per-op
/// path `make_many` amortises).
fn replay(db: &mut Database, specs: &[MakeSpec]) -> DbResult<()> {
    let mut created: Vec<Oid> = Vec::with_capacity(specs.len());
    for spec in specs {
        let parents: Vec<(Oid, &str)> = spec
            .parents
            .iter()
            .map(|(p, attr)| {
                let oid = match p {
                    ParentRef::Existing(o) => *o,
                    ParentRef::Created(j) => created[*j],
                };
                (oid, attr.as_str())
            })
            .collect();
        let values: Vec<(&str, Value)> = spec
            .values
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        created.push(db.make(spec.class, values, parents)?);
    }
    Ok(())
}

/// One timed run of an ingest mode. Returns (elapsed ns, WAL bytes, ops).
fn run_ingest(objects: usize, mode: &str) -> (u128, usize, usize) {
    let policy = match mode {
        "group" => CommitPolicy::Group {
            max_ops: 64,
            max_bytes: 1 << 20,
        },
        _ => CommitPolicy::Immediate,
    };
    let mut db = db_with(policy, true);
    let (part, asm, root) = schema(&mut db);
    let specs = ingest_specs(part, asm, root, objects);
    let wal_before = db.wal_stats();
    let start = Instant::now();
    match mode {
        "autocommit" | "group" => {
            replay(&mut db, &specs).unwrap();
            db.sync().unwrap();
        }
        "transaction" => db.transaction(|db| replay(db, &specs)).unwrap(),
        "make_many" => {
            db.make_many(&specs).unwrap();
        }
        other => panic!("unknown mode {other}"),
    }
    let elapsed = start.elapsed().as_nanos();
    let wal_after = db.wal_stats();
    assert_eq!(db.object_count(), specs.len());
    let bytes = (wal_after.durable_bytes + wal_after.pending_bytes)
        .saturating_sub(wal_before.durable_bytes + wal_before.pending_bytes);
    (elapsed, bytes, specs.len())
}

/// One timed run of the update mix. Returns (elapsed ns, WAL bytes, ops).
fn run_update_mix(ops: usize, delta_pages: bool) -> (u128, usize, usize) {
    let mut db = db_with(CommitPolicy::Immediate, delta_pages);
    let (part, _, _) = schema(&mut db);
    let targets: Vec<_> = (0..100)
        .map(|i| {
            db.make(
                part,
                vec![("payload", Value::Str(format!("seed-{i}")))],
                vec![],
            )
            .unwrap()
        })
        .collect();
    let mix = generate_writes(WriteMixParams {
        ops,
        objects: targets.len(),
        update_fraction: 0.85,
        payload: 64,
        seed: 7,
    });
    let wal_before = db.wal_stats();
    let start = Instant::now();
    for op in &mix {
        match *op {
            WriteOp::Create { payload } => {
                db.make(
                    part,
                    vec![("payload", Value::Str("c".repeat(payload)))],
                    vec![],
                )
                .unwrap();
            }
            WriteOp::Update { index, payload } => {
                db.set_attr(targets[index], "payload", Value::Str("u".repeat(payload)))
                    .unwrap();
            }
        }
    }
    let elapsed = start.elapsed().as_nanos();
    let wal_after = db.wal_stats();
    let bytes = (wal_after.durable_bytes + wal_after.pending_bytes)
        .saturating_sub(wal_before.durable_bytes + wal_before.pending_bytes);
    (elapsed, bytes, mix.len())
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct ModeResult {
    name: &'static str,
    median_ns_per_op: u128,
    ops_per_sec: f64,
    wal_bytes_per_op: f64,
}

fn measure_mode(name: &'static str, objects: usize, runs: usize) -> ModeResult {
    let mut times = Vec::with_capacity(runs);
    let (mut bytes, mut ops) = (0usize, 1usize);
    for _ in 0..runs {
        let (ns, b, n) = run_ingest(objects, name);
        times.push(ns / n as u128);
        bytes = b;
        ops = n;
    }
    let median_ns_per_op = median(times);
    ModeResult {
        name,
        median_ns_per_op,
        ops_per_sec: 1e9 / median_ns_per_op as f64,
        wal_bytes_per_op: bytes as f64 / ops as f64,
    }
}

fn json_mode(m: &ModeResult) -> String {
    format!(
        "    \"{}\": {{ \"median_ns_per_op\": {}, \"ops_per_sec\": {:.1}, \
         \"wal_bytes_per_op\": {:.1} }}",
        m.name, m.median_ns_per_op, m.ops_per_sec, m.wal_bytes_per_op
    )
}

fn main() {
    let objects = env_usize("CORION_BENCH_OBJECTS", 1000);
    let runs = env_usize("CORION_BENCH_RUNS", 3).max(1);
    let update_ops = env_usize("CORION_BENCH_UPDATE_OPS", 600);
    let out_dir = std::env::var("CORION_BENCH_OUT").unwrap_or_else(|_| ".".into());

    // ---- Experiment 1: hierarchy ingest ------------------------------
    let modes: Vec<ModeResult> = ["autocommit", "transaction", "make_many", "group"]
        .into_iter()
        .map(|m| measure_mode(m, objects, runs))
        .collect();
    for m in &modes {
        println!(
            "[ingest] {:<12} {:>8} ns/op  {:>12.0} ops/s  {:>8.1} WAL bytes/op",
            m.name, m.median_ns_per_op, m.ops_per_sec, m.wal_bytes_per_op
        );
    }
    let auto = &modes[0];
    let txn_speedup = modes[1].ops_per_sec / auto.ops_per_sec;
    let many_speedup = modes[2].ops_per_sec / auto.ops_per_sec;
    let group_speedup = modes[3].ops_per_sec / auto.ops_per_sec;
    println!(
        "[ingest] speedup vs autocommit: transaction {txn_speedup:.1}x, \
         make_many {many_speedup:.1}x, group {group_speedup:.1}x"
    );

    let txn_json = format!(
        "{{\n  \"experiment\": \"hierarchy_ingest\",\n  \"objects\": {objects},\n  \
         \"runs\": {runs},\n  \"modes\": {{\n{}\n  }},\n  \
         \"speedup_transaction_vs_autocommit\": {txn_speedup:.2},\n  \
         \"speedup_make_many_vs_autocommit\": {many_speedup:.2},\n  \
         \"speedup_group_vs_autocommit\": {group_speedup:.2}\n}}\n",
        modes.iter().map(json_mode).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write(format!("{out_dir}/BENCH_txn.json"), &txn_json).unwrap();

    // ---- Experiment 2: delta logging on an update-heavy mix ----------
    let mut full_times = Vec::new();
    let mut delta_times = Vec::new();
    let (mut full_bytes, mut delta_bytes, mut mix_ops) = (0usize, 0usize, 0usize);
    for _ in 0..runs {
        let (ns, b, n) = run_update_mix(update_ops, false);
        full_times.push(ns / n as u128);
        full_bytes = b;
        mix_ops = n;
        let (ns, b, _) = run_update_mix(update_ops, true);
        delta_times.push(ns / n as u128);
        delta_bytes = b;
    }
    let full_per_op = full_bytes as f64 / mix_ops as f64;
    let delta_per_op = delta_bytes as f64 / mix_ops as f64;
    let reduction = full_per_op / delta_per_op;
    println!(
        "[update-mix] full-image {full_per_op:.1} WAL bytes/op, delta {delta_per_op:.1} \
         WAL bytes/op ({reduction:.1}x reduction)"
    );

    let wal_json = format!(
        "{{\n  \"experiment\": \"update_mix_delta_logging\",\n  \"ops\": {mix_ops},\n  \
         \"runs\": {runs},\n  \"full_image\": {{ \"median_ns_per_op\": {}, \
         \"wal_bytes_per_op\": {full_per_op:.1} }},\n  \
         \"delta\": {{ \"median_ns_per_op\": {}, \"wal_bytes_per_op\": {delta_per_op:.1} }},\n  \
         \"wal_bytes_reduction_factor\": {reduction:.2}\n}}\n",
        median(full_times),
        median(delta_times),
    );
    std::fs::write(format!("{out_dir}/BENCH_wal.json"), &wal_json).unwrap();

    // ---- Floors ------------------------------------------------------
    let best_speedup = txn_speedup.max(many_speedup);
    assert!(
        best_speedup >= 5.0,
        "regression: grouped ingest must be >= 5x autocommit ops/s, got {best_speedup:.2}x"
    );
    assert!(
        reduction >= 2.0,
        "regression: delta logging must cut WAL bytes/op by >= 2x, got {reduction:.2}x"
    );
    println!("[write_throughput] floors held: {best_speedup:.1}x ingest, {reduction:.1}x WAL");
}
