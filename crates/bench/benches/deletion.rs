//! B7 (DESIGN.md §4): the Deletion Rule (§2.2).
//!
//! Paper claim: dependent references free "the applications from having to
//! search and delete all nested components of a deleted object" — the
//! system-side cascade cost scales with the component count; independent
//! references bound deletion to the root (plus reverse-reference cleanup).
//! Dependent-shared deletion additionally pays the DS-set membership test.
//!
//! Reported series (per hierarchy size n):
//!   * `dependent_cascade/n`   — delete root, everything cascades
//!   * `independent_detach/n`  — delete root, components survive
//!   * `shared_last_parent/n`  — two roots share everything dependently;
//!     deleting both (second triggers the cascade)

use std::time::Duration;

use corion::workload::{DagParams, GeneratedDag};
use corion::{ClassBuilder, CompositeSpec, Database, Domain, Oid, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn dag(dependent: bool, n_hint: usize, seed: u64) -> (Database, Oid) {
    let mut db = Database::new();
    let depth = ((n_hint as f64).log(4.0).ceil() as usize).max(1);
    let d = GeneratedDag::generate(
        &mut db,
        DagParams {
            depth,
            fanout: 4,
            roots: 1,
            share_fraction: 0.0,
            dependent_fraction: if dependent { 1.0 } else { 0.0 },
            seed,
        },
    )
    .unwrap();
    (db, d.roots[0])
}

/// Two roots, both holding every leaf through dependent-shared references.
fn shared_pair(n: usize) -> (Database, Oid, Oid) {
    let mut db = Database::new();
    let leaf = db.define_class(ClassBuilder::new("Leaf")).unwrap();
    let root = db
        .define_class(ClassBuilder::new("Root").attr_composite(
            "parts",
            Domain::SetOf(Box::new(Domain::Class(leaf))),
            CompositeSpec {
                exclusive: false,
                dependent: true,
            },
        ))
        .unwrap();
    let leaves: Vec<Value> = (0..n)
        .map(|_| Value::Ref(db.make(leaf, vec![], vec![]).unwrap()))
        .collect();
    let r1 = db
        .make(root, vec![("parts", Value::Set(leaves.clone()))], vec![])
        .unwrap();
    let r2 = db
        .make(root, vec![("parts", Value::Set(leaves))], vec![])
        .unwrap();
    (db, r1, r2)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("deletion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[20usize, 84, 340] {
        group.bench_with_input(BenchmarkId::new("dependent_cascade", n), &n, |b, &n| {
            b.iter_batched(
                || dag(true, n, 1),
                |(mut db, root)| {
                    let deleted = db.delete(root).unwrap();
                    assert!(deleted.len() > n / 2, "cascade really ran");
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("independent_detach", n), &n, |b, &n| {
            b.iter_batched(
                || dag(false, n, 1),
                |(mut db, root)| {
                    let deleted = db.delete(root).unwrap();
                    assert_eq!(deleted.len(), 1, "only the root goes");
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("shared_last_parent", n), &n, |b, &n| {
            b.iter_batched(
                || shared_pair(n),
                |(mut db, r1, r2)| {
                    // First deletion decrements DS sets only…
                    let d1 = db.delete(r1).unwrap();
                    assert_eq!(d1.len(), 1);
                    // …second triggers the full cascade.
                    let d2 = db.delete(r2).unwrap();
                    assert_eq!(d2.len(), 1 + n);
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
