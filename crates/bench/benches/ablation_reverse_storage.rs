//! Ablation of the §2.4 storage decision:
//!
//! > "…we have decided to keep the reverse pointers in each component
//! > object, rather than in a separate data structure. This approach allows
//! > us to avoid a level of indirection in accessing the parents of a given
//! > component, and simplifies deletion and migration of objects; however,
//! > it causes the object size to increase."
//!
//! Both layouts are realised directly on the storage substrate:
//!
//! * **in-object** — each component record carries its reverse references
//!   inline (the ORION/CORION choice);
//! * **separate** — component records stay small; each component's reverse
//!   references live in a dedicated record in a separate segment, found
//!   through an in-memory directory (the indirection the paper avoids).
//!
//! Reported series (per parents-per-component p):
//!   * `parents_in_object/p` — cold read of the component record only
//!   * `parents_separate/p`  — cold read of component + index record
//!   * `scan_in_object/p`    — scan all components (pays the fat records)
//!   * `scan_separate/p`     — scan all components (lean records, fewer pages)
//!   * page counts printed at setup

use std::time::Duration;

use corion::storage::{ObjectStore, PhysId, StoreConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const COMPONENTS: usize = 512;
const BASE_PAYLOAD: usize = 48;
const BYTES_PER_PARENT: usize = 13; // OID (12) + flags (1), the §2.4 layout

struct Layout {
    store: ObjectStore,
    components: Vec<PhysId>,
    /// `None` for in-object; `Some(index records)` for the separate layout.
    index: Option<Vec<PhysId>>,
    data_pages: usize,
}

fn build(parents: usize, in_object: bool) -> Layout {
    let mut store = ObjectStore::new(StoreConfig {
        buffer_capacity: 8,
        ..StoreConfig::default()
    });
    let data_seg = store.create_segment().unwrap();
    let rev_size = parents * BYTES_PER_PARENT;
    let mut components = Vec::with_capacity(COMPONENTS);
    let mut index = Vec::with_capacity(COMPONENTS);
    if in_object {
        let record = vec![7u8; BASE_PAYLOAD + rev_size];
        for _ in 0..COMPONENTS {
            components.push(store.insert(data_seg, &record, None).unwrap());
        }
    } else {
        let record = vec![7u8; BASE_PAYLOAD];
        let rev_record = vec![9u8; rev_size.max(1)];
        let rev_seg = store.create_segment().unwrap();
        for _ in 0..COMPONENTS {
            components.push(store.insert(data_seg, &record, None).unwrap());
            index.push(store.insert(rev_seg, &rev_record, None).unwrap());
        }
    }
    let data_pages = store.segment_pages(data_seg).unwrap();
    Layout {
        store,
        components,
        index: if in_object { None } else { Some(index) },
        data_pages,
    }
}

/// `parents-of` one component: read its record, plus the index record in
/// the separate layout.
fn parents_of(layout: &mut Layout, i: usize) -> usize {
    layout.store.clear_cache().unwrap();
    let mut bytes = layout.store.read(layout.components[i]).unwrap().len();
    if let Some(index) = &layout.index {
        bytes += layout.store.read(index[i]).unwrap().len();
    }
    bytes
}

/// Scan every component record (reverse refs not needed — e.g. evaluating a
/// predicate over the extension).
fn scan_components(layout: &mut Layout) -> usize {
    layout.store.clear_cache().unwrap();
    layout
        .components
        .iter()
        .map(|&id| layout.store.read(id).unwrap().len())
        .sum()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reverse_storage");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &parents in &[1usize, 8, 64] {
        let mut in_obj = build(parents, true);
        let mut separate = build(parents, false);
        eprintln!(
            "ablation/§2.4: parents={parents}: data pages in-object={} separate={} \
             (the object-size cost of inline reverse references)",
            in_obj.data_pages, separate.data_pages
        );

        group.bench_with_input(
            BenchmarkId::new("parents_in_object", parents),
            &parents,
            |b, _| b.iter(|| parents_of(&mut in_obj, 100)),
        );
        group.bench_with_input(
            BenchmarkId::new("parents_separate", parents),
            &parents,
            |b, _| b.iter(|| parents_of(&mut separate, 100)),
        );
        group.bench_with_input(
            BenchmarkId::new("scan_in_object", parents),
            &parents,
            |b, _| b.iter(|| scan_components(&mut in_obj)),
        );
        group.bench_with_input(
            BenchmarkId::new("scan_separate", parents),
            &parents,
            |b, _| b.iter(|| scan_components(&mut separate)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
