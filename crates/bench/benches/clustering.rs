//! B6 (DESIGN.md §4): physical clustering via the `:parent` clause (§2.3).
//!
//! Paper claim: "the parent keyword in the make statement is used also for
//! clustering purposes" — components placed near their parent make reading
//! a whole composite object cheap. The experiment builds the same composite
//! objects twice — components clustered with their parent vs. scattered
//! round-robin across unrelated pages — and reads them back with a cold
//! cache, reporting both wall-clock and physical page reads.
//!
//! Reported series (per composite-object size n):
//!   * `clustered/n` — cold read of one composite object, clustered layout
//!   * `scattered/n` — cold read, interleaved layout
//!   * page-read counts printed at setup

use std::time::Duration;

use corion::storage::StoreConfig;
use corion::{ClassBuilder, CompositeSpec, Database, DbConfig, Domain, Filter, Oid, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds `groups` composite objects of `n` components each. When
/// `clustered`, children are created with a `:parent` clause; otherwise the
/// whole population of components is created first (interleaved round-robin
/// across parents), then assembled — defeating locality.
fn build(groups: usize, n: usize, clustered: bool) -> (Database, Vec<Oid>) {
    // Tiny buffer pool so cold reads hit the simulated disk.
    let mut db = Database::with_config(DbConfig {
        store: StoreConfig {
            buffer_capacity: 8,
            ..StoreConfig::default()
        },
        ..DbConfig::default()
    });
    let part = db
        .define_class(ClassBuilder::new("Part").attr("payload", Domain::String))
        .unwrap();
    let asm = db
        .define_class(
            ClassBuilder::new("Asm")
                .same_segment_as(part)
                .attr_composite(
                    "parts",
                    Domain::SetOf(Box::new(Domain::Class(part))),
                    CompositeSpec {
                        exclusive: true,
                        dependent: true,
                    },
                ),
        )
        .unwrap();
    let payload = "x".repeat(120); // make objects big enough that a page holds ~30
    let roots: Vec<Oid> = (0..groups)
        .map(|_| db.make(asm, vec![], vec![]).unwrap())
        .collect();
    if clustered {
        for &root in &roots {
            for _ in 0..n {
                db.make(
                    part,
                    vec![("payload", Value::Str(payload.clone()))],
                    vec![(root, "parts")],
                )
                .unwrap();
            }
        }
    } else {
        // Round-robin creation interleaves every group's components on the
        // same pages.
        let mut children: Vec<Vec<Oid>> = vec![Vec::new(); groups];
        for i in 0..(groups * n) {
            let g = i % groups;
            let c = db
                .make(part, vec![("payload", Value::Str(payload.clone()))], vec![])
                .unwrap();
            children[g].push(c);
        }
        for (g, root) in roots.iter().enumerate() {
            for &c in &children[g] {
                db.make_component(c, *root, "parts").unwrap();
            }
        }
    }
    (db, roots)
}

fn cold_read(db: &mut Database, root: Oid) -> usize {
    db.clear_cache().unwrap();
    db.reset_io_stats();
    let comps = db.components_of(root, &Filter::all()).unwrap();
    comps.len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &n in &[16usize, 64, 256] {
        let groups = 8;
        let (mut db_c, roots_c) = build(groups, n, true);
        let (mut db_s, roots_s) = build(groups, n, false);
        // Report physical reads for one cold composite-object traversal.
        cold_read(&mut db_c, roots_c[3]);
        let reads_clustered = db_c.disk_stats().reads;
        cold_read(&mut db_s, roots_s[3]);
        let reads_scattered = db_s.disk_stats().reads;
        eprintln!(
            "clustering/B6: {n} components/object: cold page reads clustered={reads_clustered} \
             scattered={reads_scattered}"
        );

        let db_c = std::cell::RefCell::new(db_c);
        let db_s = std::cell::RefCell::new(db_s);
        group.bench_with_input(BenchmarkId::new("clustered", n), &n, |b, _| {
            b.iter(|| cold_read(&mut db_c.borrow_mut(), roots_c[3]))
        });
        group.bench_with_input(BenchmarkId::new("scattered", n), &n, |b, _| {
            b.iter(|| cold_read(&mut db_s.borrow_mut(), roots_s[3]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
