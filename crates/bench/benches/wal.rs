//! WAL cost accounting: what durability adds to the write path.
//!
//! Every public mutation now commits an atomic batch — page after-images
//! plus a commit marker appended to the log, flushed, then applied. This
//! bench measures that overhead at its two extremes and the recovery path
//! itself:
//!
//!   * `commit/autocommit-insert` — one small object per batch (worst
//!     amortization: one page image per record insert);
//!   * `commit/cascade-delete` — a whole composite object per batch (the
//!     Deletion Rule's multi-object write, many pages in one commit);
//!   * `recover/replay` — crash + WAL replay + object-table rebuild for a
//!     populated store.
//!
//! WAL byte counts per variant are printed at setup, alongside criterion's
//! wall-clock numbers, in the spirit of the I/O-count experiments.

use corion::{ClassBuilder, CompositeSpec, Database, Domain, Oid, Value};
use corion_bench::bench_db;
use criterion::{criterion_group, criterion_main, Criterion};

fn schema(db: &mut Database) -> (corion::ClassId, corion::ClassId) {
    let part = db
        .define_class(ClassBuilder::new("Part").attr("payload", Domain::String))
        .unwrap();
    let asm = db
        .define_class(
            ClassBuilder::new("Asm")
                .same_segment_as(part)
                .attr_composite(
                    "parts",
                    Domain::SetOf(Box::new(Domain::Class(part))),
                    CompositeSpec {
                        exclusive: true,
                        dependent: true,
                    },
                ),
        )
        .unwrap();
    (part, asm)
}

/// One assembly of `n` parts, built with `:parent` clustering.
fn composite(db: &mut Database, part: corion::ClassId, asm: corion::ClassId, n: usize) -> Oid {
    let root = db.make(asm, vec![], vec![]).unwrap();
    for _ in 0..n {
        db.make(
            part,
            vec![("payload", Value::Str("x".repeat(100)))],
            vec![(root, "parts")],
        )
        .unwrap();
    }
    root
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");

    // Autocommit: each insert is its own batch.
    {
        let mut db = bench_db(256);
        let (part, _) = schema(&mut db);
        let before = db.wal_stats();
        for _ in 0..100 {
            db.make(part, vec![("payload", Value::Str("y".repeat(100)))], vec![])
                .unwrap();
        }
        let after = db.wal_stats();
        println!(
            "[wal] 100 autocommit inserts: {} log records, {} bytes appended",
            after.records_appended - before.records_appended,
            (after.durable_bytes + after.pending_bytes).saturating_sub(before.durable_bytes)
        );
        group.bench_function("commit/autocommit-insert", |b| {
            b.iter(|| {
                db.make(part, vec![("payload", Value::Str("y".repeat(100)))], vec![])
                    .unwrap()
            })
        });
    }

    // Cascade delete: one batch spanning the whole composite object.
    group.bench_function("commit/cascade-delete", |b| {
        b.iter_batched(
            || {
                let mut db = bench_db(256);
                let (part, asm) = schema(&mut db);
                let root = composite(&mut db, part, asm, 30);
                (db, root)
            },
            |(mut db, root)| db.delete(root).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });

    // Recovery: crash a populated engine and replay the committed log.
    group.bench_function("recover/replay", |b| {
        b.iter_batched(
            || {
                let mut db = bench_db(256);
                let (part, asm) = schema(&mut db);
                for _ in 0..10 {
                    composite(&mut db, part, asm, 10);
                }
                db.simulate_crash();
                db
            },
            |mut db| db.recover().unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
