//! B1 + B2 (DESIGN.md §4): schema evolution — immediate vs deferred
//! state-independent changes, and the cost of state-dependent changes.
//!
//! Paper claim (§4.3): state-independent changes "may be made 'immediately'
//! or 'deferred' until the objects actually need to be accessed"; deferring
//! wins when only a fraction of the extension is subsequently touched.
//! State-dependent change D2 "may be very expensive, since there is no
//! reverse reference corresponding to a weak reference" — its cost scales
//! with the full referencing extension.
//!
//! Reported series (per extension size n):
//!   * `immediate/n`      — I2 change applied eagerly to all n instances
//!   * `deferred_touch10/n` — I2 change logged, then 10% of instances read
//!   * `deferred_touch_all/n` — I2 logged, then every instance read
//!   * `d2_weak_to_shared/n` — the state-dependent full-extension scan

use std::time::Duration;

use corion::core::evolution::{AttrTypeChange, Maintenance};
use corion::{ClassBuilder, ClassId, CompositeSpec, Database, Domain, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds `n` holder->item pairs with an exclusive dependent `slot`
/// attribute (for I2) and a weak `wref` attribute (for D2).
fn build(n: usize) -> (Database, ClassId) {
    let mut db = Database::new();
    let item = db.define_class(ClassBuilder::new("Item")).unwrap();
    let holder = db
        .define_class(
            ClassBuilder::new("Holder")
                .attr_composite(
                    "slot",
                    Domain::Class(item),
                    CompositeSpec {
                        exclusive: true,
                        dependent: true,
                    },
                )
                .attr("wref", Domain::Class(item)),
        )
        .unwrap();
    for _ in 0..n {
        let i = db.make(item, vec![], vec![]).unwrap();
        let w = db.make(item, vec![], vec![]).unwrap();
        db.make(
            holder,
            vec![("slot", Value::Ref(i)), ("wref", Value::Ref(w))],
            vec![],
        )
        .unwrap();
    }
    (db, holder)
}

fn items_of(db: &Database) -> Vec<corion::Oid> {
    let item = db.class_by_name("Item").unwrap();
    db.instances_of(item, false)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_evolution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[100usize, 1000, 4000] {
        // B1a: immediate I2 — pays O(n) at change time.
        group.bench_with_input(BenchmarkId::new("immediate", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |(mut db, holder)| {
                    db.change_attribute_type(
                        holder,
                        "slot",
                        AttrTypeChange::ExclusiveToShared,
                        Maintenance::Immediate,
                    )
                    .unwrap();
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        // B1b: deferred I2 + touching 10% — pays O(1) + O(n/10).
        group.bench_with_input(BenchmarkId::new("deferred_touch10", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |(mut db, holder)| {
                    db.change_attribute_type(
                        holder,
                        "slot",
                        AttrTypeChange::ExclusiveToShared,
                        Maintenance::Deferred,
                    )
                    .unwrap();
                    let items = items_of(&db);
                    for oid in items.iter().step_by(10) {
                        let _ = db.get(*oid).unwrap();
                    }
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        // B1c: deferred I2 + touching everything — should approach the
        // immediate cost (the crossover the paper's design implies).
        group.bench_with_input(BenchmarkId::new("deferred_touch_all", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |(mut db, holder)| {
                    db.change_attribute_type(
                        holder,
                        "slot",
                        AttrTypeChange::ExclusiveToShared,
                        Maintenance::Deferred,
                    )
                    .unwrap();
                    let items = items_of(&db);
                    for oid in items {
                        let _ = db.get(oid).unwrap();
                    }
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        // B2: state-dependent D2 — full extension scan + verification.
        group.bench_with_input(BenchmarkId::new("d2_weak_to_shared", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |(mut db, holder)| {
                    db.change_attribute_type(
                        holder,
                        "wref",
                        AttrTypeChange::WeakToShared { dependent: false },
                        Maintenance::Immediate,
                    )
                    .unwrap();
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
