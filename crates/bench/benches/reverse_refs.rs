//! B5 (DESIGN.md §4): the reverse-composite-reference trade-off of §2.4.
//!
//! Paper claim: keeping reverse pointers in each component "allows us to
//! avoid a level of indirection in accessing the parents of a given
//! component, and simplifies deletion and migration of objects; however, it
//! causes the object size to increase."
//!
//! Reported series:
//!   * `parents_via_reverse_refs/n` — `parents-of` answered from the
//!     component's reverse references (O(parents))
//!   * `parents_via_scan/n`         — the same question answered the way a
//!     system *without* reverse references must: scan every instance of
//!     every referencing class (O(database))
//!   * object-size overhead printed at setup (bytes with vs without
//!     reverse references)
//!
//! Plus the traversal-cache ablation: repeat `components-of` /
//! `ancestors-of` over a ~10k-object hierarchy with the generation-
//! invalidated cache on (`components_of`) and off (`components_of_uncached`),
//! and the same batch fanned out over scoped threads. The warm cached
//! traversal must be at least 2× faster than the uncached walk — asserted,
//! not just reported.

use std::time::{Duration, Instant};

use corion::workload::{Corpus, CorpusParams, DagParams, GeneratedDag};
use corion::{Database, Filter, Oid, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Finds parents of `target` without reverse references: scan all documents
/// and sections for values referencing it.
fn parents_by_scan(db: &Database, corpus: &Corpus, target: Oid) -> Vec<Oid> {
    let mut out = Vec::new();
    for class in [corpus.schema.document, corpus.schema.section] {
        for oid in db.instances_of(class, false) {
            let obj = db.get(oid).unwrap();
            if obj.attrs.iter().any(|v| v.references(target)) {
                out.push(oid);
            }
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_refs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &docs in &[10usize, 50, 200] {
        let mut db = Database::new();
        let corpus = Corpus::generate(
            &mut db,
            CorpusParams {
                documents: docs,
                share_fraction: 0.5,
                ..CorpusParams::default()
            },
        )
        .unwrap();
        let target = corpus.sections[corpus.sections.len() / 2];

        // Size overhead: encoded size with reverse refs vs stripped.
        let obj = db.get(target).unwrap();
        let with = obj.encoded_size();
        let mut stripped = obj.clone();
        stripped.reverse_refs.clear();
        eprintln!(
            "reverse_refs/B5: corpus {docs} docs — section object {} bytes with {} reverse refs, \
             {} bytes without (+{} bytes)",
            with,
            obj.reverse_refs.len(),
            stripped.encoded_size(),
            with - stripped.encoded_size()
        );

        group.bench_with_input(
            BenchmarkId::new("parents_via_reverse_refs", docs),
            &docs,
            |b, _| b.iter(|| db.parents_of(target, &Filter::all()).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("parents_via_scan", docs), &docs, |b, _| {
            b.iter(|| parents_by_scan(&db, &corpus, target))
        });
        // Sanity: both answers agree (scan finds annotation parents too, so
        // compare as sets on the composite parents only).
        let via_refs = db.parents_of(target, &Filter::all()).unwrap();
        let via_scan = parents_by_scan(&db, &corpus, target);
        for p in &via_refs {
            assert!(via_scan.contains(p), "scan misses parent {p}");
        }
    }
    group.finish();

    // Maintenance overhead: attach/detach cost as reverse-ref lists grow.
    let mut group = c.benchmark_group("reverse_ref_maintenance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for &parents in &[1usize, 16, 128] {
        let mut db = Database::new();
        let schema = corion::workload::DocumentSchema::define(&mut db).unwrap();
        let sec = db.make(schema.section, vec![], vec![]).unwrap();
        let docs: Vec<Oid> = (0..parents)
            .map(|_| {
                let d = db.make(schema.document, vec![], vec![]).unwrap();
                db.make_component(sec, d, "Sections").unwrap();
                d
            })
            .collect();
        let extra = db.make(schema.document, vec![], vec![]).unwrap();
        group.bench_with_input(
            BenchmarkId::new("attach_detach", parents),
            &parents,
            |b, _| {
                b.iter(|| {
                    db.make_component(sec, extra, "Sections").unwrap();
                    db.remove_component(sec, extra, "Sections").unwrap();
                })
            },
        );
        let _ = docs;
        // Keep one value-read in the loop honest.
        assert_eq!(db.get_attr(extra, "Sections").unwrap(), Value::Set(vec![]));
    }
    group.finish();
}

/// Times `op` over `iters` repetitions (after one warm-up call).
fn time_repeats(iters: u32, mut op: impl FnMut()) -> Duration {
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed()
}

/// The traversal-cache ablation on a ~10k-object hierarchy (one root,
/// fanout 10, depth 4 → 11 111 parts): repeat traversals with the
/// hierarchy cache versus the uncached oracle walk.
fn bench_traversal_cache(c: &mut Criterion) {
    let mut db = Database::new();
    let dag = GeneratedDag::generate(
        &mut db,
        DagParams {
            depth: 4,
            fanout: 10,
            roots: 1,
            share_fraction: 0.3,
            dependent_fraction: 0.5,
            seed: 42,
        },
    )
    .unwrap();
    let root = dag.roots[0];
    let all = dag.all();
    let leaf = *all.last().unwrap();
    let n = all.len();
    eprintln!(
        "traversal_cache: hierarchy of {n} objects, {} edges",
        dag.edges
    );

    let mut group = c.benchmark_group("traversal_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function(BenchmarkId::new("components_repeat_cached", n), |b| {
        b.iter(|| db.components_of(root, &Filter::all()).unwrap())
    });
    group.bench_function(BenchmarkId::new("components_repeat_uncached", n), |b| {
        b.iter(|| db.components_of_uncached(root, &Filter::all()).unwrap())
    });
    group.bench_function(BenchmarkId::new("ancestors_repeat_cached", n), |b| {
        b.iter(|| db.ancestors_of(leaf, &Filter::all()).unwrap())
    });
    group.bench_function(BenchmarkId::new("ancestors_repeat_uncached", n), |b| {
        b.iter(|| db.ancestors_of_uncached(leaf, &Filter::all()).unwrap())
    });
    // Parallel batch over every object, sharing one warm cache.
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("ancestors_of_many_parallel", n), |b| {
        b.iter(|| db.ancestors_of_many(&all, &Filter::all()))
    });
    group.finish();

    // The acceptance gate: warm cached repeat-traversal must beat the
    // uncached walk by at least 2× on this hierarchy.
    let cached = time_repeats(10, || {
        db.components_of(root, &Filter::all()).unwrap();
    });
    let uncached = time_repeats(10, || {
        db.components_of_uncached(root, &Filter::all()).unwrap();
    });
    let speedup = uncached.as_secs_f64() / cached.as_secs_f64();
    eprintln!(
        "traversal_cache: cached {:?} vs uncached {:?} per 10 repeats — {speedup:.1}× speedup",
        cached, uncached
    );
    assert!(
        speedup >= 2.0,
        "cached repeat traversal must be ≥2× faster than uncached (got {speedup:.2}×)"
    );
    let snap = db.metrics_snapshot();
    eprintln!(
        "traversal_cache: {} hits, {} misses, {} invalidations at generation {}",
        snap.counter("corion_traversal_cache_hits_total"),
        snap.counter("corion_traversal_cache_misses_total"),
        snap.counter("corion_traversal_cache_invalidations_total"),
        db.hierarchy_generation()
    );
}

criterion_group!(benches, bench, bench_traversal_cache);
criterion_main!(benches);
