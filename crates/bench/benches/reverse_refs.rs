//! B5 (DESIGN.md §4): the reverse-composite-reference trade-off of §2.4.
//!
//! Paper claim: keeping reverse pointers in each component "allows us to
//! avoid a level of indirection in accessing the parents of a given
//! component, and simplifies deletion and migration of objects; however, it
//! causes the object size to increase."
//!
//! Reported series:
//!   * `parents_via_reverse_refs/n` — `parents-of` answered from the
//!     component's reverse references (O(parents))
//!   * `parents_via_scan/n`         — the same question answered the way a
//!     system *without* reverse references must: scan every instance of
//!     every referencing class (O(database))
//!   * object-size overhead printed at setup (bytes with vs without
//!     reverse references)

use std::time::Duration;

use corion::workload::{Corpus, CorpusParams};
use corion::{Database, Filter, Oid, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Finds parents of `target` without reverse references: scan all documents
/// and sections for values referencing it.
fn parents_by_scan(db: &mut Database, corpus: &Corpus, target: Oid) -> Vec<Oid> {
    let mut out = Vec::new();
    for class in [corpus.schema.document, corpus.schema.section] {
        for oid in db.instances_of(class, false) {
            let obj = db.get(oid).unwrap();
            if obj.attrs.iter().any(|v| v.references(target)) {
                out.push(oid);
            }
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_refs");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_millis(900));

    for &docs in &[10usize, 50, 200] {
        let mut db = Database::new();
        let corpus = Corpus::generate(
            &mut db,
            CorpusParams { documents: docs, share_fraction: 0.5, ..CorpusParams::default() },
        )
        .unwrap();
        let target = corpus.sections[corpus.sections.len() / 2];

        // Size overhead: encoded size with reverse refs vs stripped.
        let obj = db.get(target).unwrap();
        let with = obj.encoded_size();
        let mut stripped = obj.clone();
        stripped.reverse_refs.clear();
        eprintln!(
            "reverse_refs/B5: corpus {docs} docs — section object {} bytes with {} reverse refs, \
             {} bytes without (+{} bytes)",
            with,
            obj.reverse_refs.len(),
            stripped.encoded_size(),
            with - stripped.encoded_size()
        );

        let db = std::cell::RefCell::new(db);
        group.bench_with_input(BenchmarkId::new("parents_via_reverse_refs", docs), &docs, |b, _| {
            b.iter(|| db.borrow_mut().parents_of(target, &Filter::all()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parents_via_scan", docs), &docs, |b, _| {
            b.iter(|| parents_by_scan(&mut db.borrow_mut(), &corpus, target))
        });
        // Sanity: both answers agree (scan finds annotation parents too, so
        // compare as sets on the composite parents only).
        let via_refs = db.borrow_mut().parents_of(target, &Filter::all()).unwrap();
        let via_scan = parents_by_scan(&mut db.borrow_mut(), &corpus, target);
        for p in &via_refs {
            assert!(via_scan.contains(p), "scan misses parent {p}");
        }
    }
    group.finish();

    // Maintenance overhead: attach/detach cost as reverse-ref lists grow.
    let mut group = c.benchmark_group("reverse_ref_maintenance");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_millis(900));
    for &parents in &[1usize, 16, 128] {
        let mut db = Database::new();
        let schema = corion::workload::DocumentSchema::define(&mut db).unwrap();
        let sec = db.make(schema.section, vec![], vec![]).unwrap();
        let docs: Vec<Oid> = (0..parents)
            .map(|_| {
                let d = db.make(schema.document, vec![], vec![]).unwrap();
                db.make_component(sec, d, "Sections").unwrap();
                d
            })
            .collect();
        let extra = db.make(schema.document, vec![], vec![]).unwrap();
        let db = std::cell::RefCell::new(db);
        group.bench_with_input(BenchmarkId::new("attach_detach", parents), &parents, |b, _| {
            b.iter(|| {
                let mut dbm = db.borrow_mut();
                dbm.make_component(sec, extra, "Sections").unwrap();
                dbm.remove_component(sec, extra, "Sections").unwrap();
            })
        });
        let _ = docs;
        // Keep one value-read in the loop honest.
        assert_eq!(
            db.borrow_mut().get_attr(extra, "Sections").unwrap(),
            Value::Set(vec![])
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
