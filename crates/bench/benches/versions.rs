//! B8 (DESIGN.md §4): version derivation and ref-count maintenance (§5).
//!
//! Paper claim (§5.3, implicit): reverse composite *generic* references
//! with ref-counts make binding/unbinding between versioned objects O(1)
//! per reference, and derivation cost scales with the number of composite
//! references the source version holds (each needs the CV-2X rebinding
//! decision).
//!
//! Reported series:
//!   * `derive/n`        — derive a version holding n composite references
//!   * `bind_unbind/n`   — static bind + unbind against a generic with n
//!     existing reverse generic references
//!   * `resolve_dynamic` — default-version resolution

use std::time::Duration;

use corion::{ClassBuilder, ClassId, CompositeSpec, Database, Domain, Value, VersionManager};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn schema() -> (VersionManager, ClassId, ClassId) {
    let mut db = Database::new();
    let d = db
        .define_class(ClassBuilder::new("D").versionable())
        .unwrap();
    let c = db
        .define_class(ClassBuilder::new("C").versionable().attr_composite(
            "parts",
            Domain::SetOf(Box::new(Domain::Class(d))),
            CompositeSpec {
                exclusive: false,
                dependent: false,
            },
        ))
        .unwrap();
    (VersionManager::new(db), c, d)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("versions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[1usize, 16, 64] {
        // derive/n: source version holds n shared static references.
        group.bench_with_input(BenchmarkId::new("derive", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (mut vm, c, d) = schema();
                    let mut refs = Vec::new();
                    for _ in 0..n {
                        let (_g, v) = vm.create(d, vec![]).unwrap();
                        refs.push(Value::Ref(v));
                    }
                    let (_gc, c1) = vm.create(c, vec![("parts", Value::Set(refs))]).unwrap();
                    (vm, c1)
                },
                |(mut vm, c1)| {
                    vm.derive(c1).unwrap();
                    vm
                },
                criterion::BatchSize::SmallInput,
            )
        });

        // bind_unbind/n against a generic with n existing parents.
        group.bench_with_input(BenchmarkId::new("bind_unbind", n), &n, |b, &n| {
            let (mut vm, c, d) = schema();
            let (_g_d, d1) = vm.create(d, vec![]).unwrap();
            for _ in 0..n {
                let (_gc, ci) = vm.create(c, vec![]).unwrap();
                vm.bind_static(ci, "parts", d1).unwrap();
            }
            let (_gx, extra) = vm.create(c, vec![]).unwrap();
            b.iter(|| {
                vm.bind_static(extra, "parts", d1).unwrap();
                vm.unbind(extra, "parts", d1).unwrap();
            })
        });
    }

    // resolve_dynamic over a long derivation chain.
    group.bench_function("resolve_dynamic_chain64", |b| {
        let (mut vm, c, _d) = schema();
        let (g, mut v) = vm.create(c, vec![]).unwrap();
        for _ in 0..64 {
            v = vm.derive(v).unwrap();
        }
        b.iter(|| vm.resolve(g).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
