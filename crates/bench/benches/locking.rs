//! B3 (DESIGN.md §4): composite-object locking vs per-object locking.
//!
//! Paper claim (§7, implicit): locking a composite object as a single
//! granule costs a constant number of lock requests (root class + root +
//! one per component class), while conventional locking grows with the
//! number of component objects. The crossover is immediate; the factor
//! grows linearly with composite-object size.
//!
//! Reported series (per components-per-object n):
//!   * `composite/n`  — §7 protocol lock set, acquire + release
//!   * `per_object/n` — class + every component instance, acquire + release
//!
//! The lock-request counts themselves are printed once per size at setup.

use std::time::Duration;

use corion::lock::protocol::{composite_lockset, per_object_lockset};
use corion::workload::{DagParams, GeneratedDag};
use corion::{Database, LockIntent, LockManager, Oid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// One root with ~n components (exclusive hierarchy).
fn build(n: usize) -> (Database, Oid) {
    let mut db = Database::new();
    // depth d, fanout f -> f + f^2 + ... ≈ n; use fanout 4.
    let depth = ((n as f64).log(4.0).ceil() as usize).max(1);
    let dag = GeneratedDag::generate(
        &mut db,
        DagParams {
            depth,
            fanout: 4,
            roots: 1,
            share_fraction: 0.0,
            dependent_fraction: 1.0,
            seed: 7,
        },
    )
    .unwrap();
    (db, dag.roots[0])
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("locking");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &n in &[4usize, 20, 84, 340] {
        let (mut db, root) = build(n);
        let composite = composite_lockset(&db, root, LockIntent::Write);
        let per_object = per_object_lockset(&mut db, root, true).unwrap();
        eprintln!(
            "locking/B3: components≈{n}: composite protocol = {} lock requests, \
             per-object = {} lock requests",
            composite.len(),
            per_object.len()
        );

        group.bench_with_input(BenchmarkId::new("composite", n), &n, |b, _| {
            let lm = LockManager::new();
            b.iter(|| {
                let t = lm.begin();
                composite.try_acquire(&lm, t).unwrap();
                lm.release_all(t);
            })
        });
        group.bench_with_input(BenchmarkId::new("per_object", n), &n, |b, _| {
            let lm = LockManager::new();
            b.iter(|| {
                let t = lm.begin();
                per_object.try_acquire(&lm, t).unwrap();
                lm.release_all(t);
            })
        });
    }
    group.finish();

    // Throughput under contention: disjoint writers with the composite
    // protocol proceed in parallel; per-object locking with the same mix
    // pays per-component acquisition on every transaction.
    let mut group = c.benchmark_group("locking_mix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut db = Database::new();
    let fleet = corion::workload::Fleet::generate(&mut db, 8, 6).unwrap();
    let mix = corion::workload::txmix::generate(corion::workload::TxMixParams {
        ops: 64,
        roots: fleet.vehicles.len(),
        write_fraction: 0.25,
        hot_fraction: 0.0,
        seed: 11,
    });
    let composite_sets: Vec<_> = fleet
        .vehicles
        .iter()
        .map(|&v| {
            (
                composite_lockset(&db, v, LockIntent::Read),
                composite_lockset(&db, v, LockIntent::Write),
            )
        })
        .collect();
    let per_object_sets: Vec<_> = fleet
        .vehicles
        .iter()
        .map(|&v| {
            (
                per_object_lockset(&mut db, v, false).unwrap(),
                per_object_lockset(&mut db, v, true).unwrap(),
            )
        })
        .collect();
    group.bench_function("composite_mix64", |b| {
        let lm = LockManager::new();
        b.iter(|| {
            for op in &mix {
                let t = lm.begin();
                let (r, w) = &composite_sets[op.root_index];
                let set = if op.kind == corion::workload::AccessKind::Write {
                    w
                } else {
                    r
                };
                set.try_acquire(&lm, t).unwrap();
                lm.release_all(t);
            }
        })
    });
    group.bench_function("per_object_mix64", |b| {
        let lm = LockManager::new();
        b.iter(|| {
            for op in &mix {
                let t = lm.begin();
                let (r, w) = &per_object_sets[op.root_index];
                let set = if op.kind == corion::workload::AccessKind::Write {
                    w
                } else {
                    r
                };
                set.try_acquire(&lm, t).unwrap();
                lm.release_all(t);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
