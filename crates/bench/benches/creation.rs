//! B9 (DESIGN.md §4): bottom-up vs top-down composite creation.
//!
//! [KIM87b] "forces a top-down creation of a composite object; that is,
//! before a component object may be created, its parent object must already
//! exist" (§1, second shortcoming). The revisited model supports both; this
//! bench shows they cost the same order — removing the restriction is free
//! — and measures the `make-component` assembly path against creation with
//! inline values.
//!
//! Reported series (per components n):
//!   * `top_down/n`   — parent first, children created with `:parent`
//!   * `bottom_up/n`  — children first, then one `make` with the set value
//!   * `assemble/n`   — children first, empty parent, n × `make-component`

use std::time::Duration;

use corion::{ClassBuilder, ClassId, CompositeSpec, Database, Domain, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn schema(db: &mut Database) -> (ClassId, ClassId) {
    let part = db.define_class(ClassBuilder::new("Part")).unwrap();
    let asm = db
        .define_class(
            ClassBuilder::new("Asm")
                .same_segment_as(part)
                .attr_composite(
                    "parts",
                    Domain::SetOf(Box::new(Domain::Class(part))),
                    CompositeSpec {
                        exclusive: true,
                        dependent: true,
                    },
                ),
        )
        .unwrap();
    (part, asm)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("creation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("top_down", n), &n, |b, &n| {
            b.iter_batched(
                Database::new,
                |mut db| {
                    let (part, asm) = schema(&mut db);
                    let root = db.make(asm, vec![], vec![]).unwrap();
                    for _ in 0..n {
                        db.make(part, vec![], vec![(root, "parts")]).unwrap();
                    }
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("bottom_up", n), &n, |b, &n| {
            b.iter_batched(
                Database::new,
                |mut db| {
                    let (part, asm) = schema(&mut db);
                    let parts: Vec<Value> = (0..n)
                        .map(|_| Value::Ref(db.make(part, vec![], vec![]).unwrap()))
                        .collect();
                    db.make(asm, vec![("parts", Value::Set(parts))], vec![])
                        .unwrap();
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("assemble", n), &n, |b, &n| {
            b.iter_batched(
                Database::new,
                |mut db| {
                    let (part, asm) = schema(&mut db);
                    let parts: Vec<corion::Oid> = (0..n)
                        .map(|_| db.make(part, vec![], vec![]).unwrap())
                        .collect();
                    let root = db.make(asm, vec![], vec![]).unwrap();
                    for p in parts {
                        db.make_component(p, root, "parts").unwrap();
                    }
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
