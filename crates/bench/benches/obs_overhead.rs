//! Instrumentation overhead: proof that observability is (nearly) free.
//!
//! The `corion-obs` facade promises that a disabled registry costs one
//! relaxed atomic load per instrumentation point, and that the
//! compiled-out path (`--no-default-features`) costs nothing at all. The
//! claim this bench locks in is the acceptance criterion: **with
//! recording off, instrumentation adds < 2% to the existing wal/clustering
//! workloads**.
//!
//! Wall-clock A/B runs of a ~2 ms workload are noisy at the ±4% level in a
//! shared container — far too noisy to assert a 2% bound — so the bound is
//! established arithmetically instead:
//!
//! 1. run the real workload (autocommit inserts + §3 traversals, the shape
//!    of the `wal` and `clustering` benches) with recording *enabled* and
//!    read the metric snapshot to learn exactly how many instrumentation
//!    events (counter bumps, gauge sets, timed sections) the workload
//!    executes;
//! 2. measure the *disabled-path* cost of each primitive directly, over
//!    millions of iterations (deterministic to well under a nanosecond);
//! 3. assert `events × disabled_cost < 2% × workload_time`.
//!
//! The compiled-out path does strictly less work than the disabled runtime
//! path, so the bound covers `--no-default-features` builds a fortiori.
//! Interleaved enabled/disabled medians are also printed for reference
//! (not asserted — see above).

use std::hint::black_box;
use std::time::{Duration, Instant};

use corion::workload::{Corpus, CorpusParams};
use corion::{Database, Filter};
use corion_obs::{Registry, LATENCY_BOUNDS_NS};

const WARMUP_ROUNDS: usize = 2;
const ROUNDS: usize = 9;
const PRIMITIVE_ITERS: u32 = 2_000_000;
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

/// One round: build a small document corpus (every `make` is an
/// autocommit batch → WAL append + flush per object) and traverse it
/// twice (cold then cached). Returns the elapsed time and the number of
/// instrumentation events the round executed, split into
/// (counter-or-gauge updates, timed sections).
fn round(enabled: bool) -> (Duration, u64, u64) {
    let mut db = Database::new();
    db.metrics_registry().set_enabled(enabled);
    let start = Instant::now();
    let corpus = Corpus::generate(
        &mut db,
        CorpusParams {
            documents: 6,
            ..CorpusParams::default()
        },
    )
    .expect("corpus generation");
    for _ in 0..2 {
        for &d in &corpus.documents {
            db.components_of(d, &Filter::all()).unwrap();
            db.roots_of(d).unwrap();
        }
        for &s in &corpus.sections {
            db.parents_of(s, &Filter::all()).unwrap();
            db.ancestors_of(s, &Filter::all()).unwrap();
        }
    }
    let elapsed = start.elapsed();
    let snap = db.metrics_snapshot();
    // Counter values ≈ update events, except the byte/page totals, where
    // one `add` call covers many units: count those as one event per
    // carrying record instead of one per byte/page.
    let counter_events: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| !name.ends_with("_bytes_total") && !name.ends_with("_pages_total"))
        .map(|(_, v)| v)
        .sum::<u64>()
        + snap.counter("corion_wal_append_records_total")
        + snap.counter("corion_storage_recoveries_total");
    // Every histogram observation is one RAII timer (two `Instant` reads
    // plus the bucket update when enabled; one relaxed load when not).
    let timer_events: u64 = snap.histograms.values().map(|h| h.count).sum();
    // The generation gauge is set once per hierarchy bump.
    let gauge_events = snap.gauge("corion_hierarchy_generation").max(0) as u64;
    (elapsed, counter_events + gauge_events, timer_events)
}

/// Disabled-path cost of one counter increment (the `live()` check), in
/// nanoseconds — fractional, since the real cost is sub-nanosecond.
fn disabled_counter_cost_ns() -> f64 {
    let registry = Registry::new();
    registry.set_enabled(false);
    let counter = registry.counter("bench_disabled_probe_total");
    let start = Instant::now();
    for _ in 0..PRIMITIVE_ITERS {
        black_box(&counter).inc();
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(PRIMITIVE_ITERS)
}

/// Disabled-path cost of one timed section (start + drop, no `Instant`),
/// in nanoseconds.
fn disabled_timer_cost_ns() -> f64 {
    let registry = Registry::new();
    registry.set_enabled(false);
    let histogram = registry.histogram("bench_disabled_probe_ns", LATENCY_BOUNDS_NS);
    let start = Instant::now();
    for _ in 0..PRIMITIVE_ITERS {
        black_box(black_box(&histogram).start_timer());
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(PRIMITIVE_ITERS)
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    for _ in 0..WARMUP_ROUNDS {
        round(false);
        round(true);
    }
    let mut disabled = Vec::with_capacity(ROUNDS);
    let mut enabled = Vec::with_capacity(ROUNDS);
    let (mut updates, mut timers) = (0, 0);
    for _ in 0..ROUNDS {
        disabled.push(round(false).0);
        let (t, u, s) = round(true);
        enabled.push(t);
        (updates, timers) = (u, s);
    }
    let disabled_med = median(&mut disabled);
    let enabled_med = median(&mut enabled);
    println!(
        "obs_overhead: workload medians over {ROUNDS} interleaved rounds — \
         recording off {disabled_med:?}, on {enabled_med:?} ({:+.2}%, informational)",
        (enabled_med.as_secs_f64() / disabled_med.as_secs_f64() - 1.0) * 100.0
    );

    let inc_ns = disabled_counter_cost_ns();
    let timer_ns = disabled_timer_cost_ns();
    let instr_ns = inc_ns * updates as f64 + timer_ns * timers as f64;
    let share = instr_ns / (disabled_med.as_secs_f64() * 1e9);
    println!(
        "obs_overhead: {updates} counter/gauge updates ({inc_ns:.2} ns each disabled) + \
         {timers} timed sections ({timer_ns:.2} ns each disabled) \
         = {:.1} µs per round, {:.4}% of the {disabled_med:?} workload",
        instr_ns / 1e3,
        share * 100.0
    );
    assert!(
        share < MAX_DISABLED_OVERHEAD,
        "disabled instrumentation must cost < {:.0}% of the workload \
         (measured {:.4}%); the compiled-out path costs strictly less",
        MAX_DISABLED_OVERHEAD * 100.0,
        share * 100.0
    );
}
