//! Ablation (DESIGN.md §5 / paper §7 closing): incremental locking for
//! long-duration transactions vs the composite protocol.
//!
//! The composite protocol is O(classes) locks regardless of how little of
//! the composite object a transaction touches; incremental locking pays
//! two locks per *touched* component. The crossover the granularity
//! trade-off predicts: composite wins when transactions touch most of the
//! object, incremental wins when they touch a few components — and
//! escalation bounds the worst case.
//!
//! Reported series (per touch count t out of 256 components):
//!   * `composite/t`            — full §7 lock set, regardless of t
//!   * `incremental/t`          — 2 locks per touched component
//!   * `incremental_escalate/t` — threshold 0.5, so high t escalates

use std::time::Duration;

use corion::lock::incremental::IncrementalAccess;
use corion::lock::protocol::composite_lockset;
use corion::workload::{DagParams, GeneratedDag};
use corion::{Database, LockIntent, LockManager, Oid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build() -> (Database, Oid, Vec<Oid>) {
    let mut db = Database::new();
    let dag = GeneratedDag::generate(
        &mut db,
        DagParams {
            depth: 4,
            fanout: 4,
            roots: 1,
            share_fraction: 0.0,
            dependent_fraction: 1.0,
            seed: 3,
        },
    )
    .unwrap();
    let root = dag.roots[0];
    let comps = db.components_of(root, &corion::Filter::all()).unwrap();
    (db, root, comps)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_locking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    let (db, root, comps) = build();
    eprintln!(
        "incremental_locking: composite object with {} components",
        comps.len()
    );
    let composite = composite_lockset(&db, root, LockIntent::Write);
    let db = std::cell::RefCell::new(db);

    for &touch in &[2usize, 16, 64, 256] {
        let touch = touch.min(comps.len());
        group.bench_with_input(BenchmarkId::new("composite", touch), &touch, |b, _| {
            let lm = LockManager::new();
            b.iter(|| {
                let t = lm.begin();
                composite.try_acquire(&lm, t).unwrap();
                lm.release_all(t);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("incremental", touch),
            &touch,
            |b, &touch| {
                let lm = LockManager::new();
                b.iter(|| {
                    let mut dbm = db.borrow_mut();
                    let t = lm.begin();
                    let mut acc =
                        IncrementalAccess::open(&mut dbm, &lm, t, root, true, 1.1).unwrap();
                    for &c in &comps[..touch] {
                        acc.touch(&mut dbm, &lm, t, c).unwrap();
                    }
                    lm.release_all(t);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_escalate", touch),
            &touch,
            |b, &touch| {
                let lm = LockManager::new();
                b.iter(|| {
                    let mut dbm = db.borrow_mut();
                    let t = lm.begin();
                    let mut acc =
                        IncrementalAccess::open(&mut dbm, &lm, t, root, true, 0.5).unwrap();
                    for &c in &comps[..touch] {
                        acc.touch(&mut dbm, &lm, t, c).unwrap();
                    }
                    lm.release_all(t);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
