//! B4 (DESIGN.md §4): composite objects as a unit of authorization.
//!
//! Paper claim (§6): "the user … needs to grant authorization on the
//! composite object as a single unit, rather than on each of the component
//! objects. Further, when a composite object is accessed, the system needs
//! to check only one authorization (for the entire composite object),
//! rather than authorizations on all component objects."
//!
//! Reported series (per components-per-object n):
//!   * `grant_composite/n`  — one grant on the root
//!   * `grant_per_object/n` — one grant per component (the baseline)
//!   * `check_root/n`       — access check at the root only
//!   * `check_components/n` — an access check at every component

use std::time::Duration;

use corion::workload::{DagParams, GeneratedDag};
use corion::{AuthObject, AuthStore, AuthType, Authorization, Database, Filter, Oid, UserId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: usize) -> (Database, Oid, Vec<Oid>) {
    let mut db = Database::new();
    let depth = ((n as f64).log(4.0).ceil() as usize).max(1);
    let dag = GeneratedDag::generate(
        &mut db,
        DagParams {
            depth,
            fanout: 4,
            roots: 1,
            share_fraction: 0.0,
            dependent_fraction: 1.0,
            seed: 5,
        },
    )
    .unwrap();
    let root = dag.roots[0];
    let comps = db.components_of(root, &Filter::all()).unwrap();
    (db, root, comps)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("authorization");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for &n in &[4usize, 20, 84] {
        let (db, root, comps) = build(n);
        eprintln!(
            "authorization/B4: root {root} with {} components",
            comps.len()
        );
        let db = std::cell::RefCell::new(db);

        group.bench_with_input(BenchmarkId::new("grant_composite", n), &n, |b, _| {
            b.iter(|| {
                let mut st = AuthStore::new();
                st.grant(
                    &mut db.borrow_mut(),
                    UserId(1),
                    AuthObject::Instance(root),
                    Authorization::SR,
                )
                .unwrap();
                st
            })
        });
        group.bench_with_input(BenchmarkId::new("grant_per_object", n), &n, |b, _| {
            b.iter(|| {
                let mut st = AuthStore::new();
                let mut dbm = db.borrow_mut();
                st.grant(
                    &mut dbm,
                    UserId(1),
                    AuthObject::Instance(root),
                    Authorization::SR,
                )
                .unwrap();
                for &c in &comps {
                    st.grant(
                        &mut dbm,
                        UserId(1),
                        AuthObject::Instance(c),
                        Authorization::SR,
                    )
                    .unwrap();
                }
                st
            })
        });

        // Checks: reading the whole composite object under each regime.
        let mut st_root = AuthStore::new();
        st_root
            .grant(
                &mut db.borrow_mut(),
                UserId(1),
                AuthObject::Instance(root),
                Authorization::SR,
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("check_root", n), &n, |b, _| {
            b.iter(|| {
                st_root
                    .check(&mut db.borrow_mut(), UserId(1), AuthType::Read, root)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("check_components", n), &n, |b, _| {
            b.iter(|| {
                let mut dbm = db.borrow_mut();
                for &c in &comps {
                    st_root
                        .check(&mut dbm, UserId(1), AuthType::Read, c)
                        .unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
