//! Engine-level concurrency tests: genuine writer overlap on disjoint
//! composites, snapshot isolation, strict 2PL conflict behaviour, and
//! recovery fencing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::Duration;

use corion_concurrent::ConcurrentDb;
use corion_core::{ClassBuilder, ClassId, CompositeSpec, DbError, Domain, Oid, Value};

/// Assembly --exclusive/dependent--> set-of Part, plus a string on each.
fn setup(cdb: &ConcurrentDb) -> (ClassId, ClassId) {
    cdb.with_exclusive(|db| {
        let part = db
            .define_class(ClassBuilder::new("Part").attr("tag", Domain::String))
            .unwrap();
        let asm = db
            .define_class(
                ClassBuilder::new("Asm")
                    .attr("label", Domain::String)
                    .attr_composite(
                        "parts",
                        Domain::SetOf(Box::new(Domain::Class(part))),
                        CompositeSpec {
                            exclusive: true,
                            dependent: true,
                        },
                    ),
            )
            .unwrap();
        (part, asm)
    })
}

fn mk_root(cdb: &ConcurrentDb, asm: ClassId, label: &str) -> Oid {
    cdb.run_write(|t| t.make(asm, vec![("label", Value::Str(label.into()))], vec![]))
        .unwrap()
}

#[test]
fn disjoint_composite_writers_overlap_in_time() {
    // Acceptance criterion: two writer threads on disjoint composites
    // commit concurrently — no serialization through a single `&mut`.
    // Txn A opens, writes, and *stays open* while txn B runs an entire
    // transaction (ops + commit) to completion on another thread.
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root_a = mk_root(&cdb, asm, "A");
    let root_b = mk_root(&cdb, asm, "B");

    let mut txn_a = cdb.begin_write();
    txn_a
        .make(
            part,
            vec![("tag", Value::Str("a1".into()))],
            vec![(root_a, "parts")],
        )
        .unwrap();

    // While A is open (holding X on root_a and IXO on Part), B must be
    // able to run start-to-finish on root_b.
    let cdb2 = cdb.clone();
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let r = cdb2.run_write(|t| {
            t.make(
                part,
                vec![("tag", Value::Str("b1".into()))],
                vec![(root_b, "parts")],
            )
        });
        tx.send(()).unwrap();
        r.unwrap()
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("writer B must not block behind open writer A on a disjoint composite");
    let b_part = handle.join().unwrap();

    txn_a.commit().unwrap();
    cdb.with_read(|db| {
        assert!(db.exists(b_part));
        assert_eq!(db.components_of_snapshot_free(root_a).len(), 1);
    });
}

/// Helper used by the test above via `with_read`.
trait ComponentsFree {
    fn components_of_snapshot_free(&self, root: Oid) -> Vec<Oid>;
}
impl ComponentsFree for corion_core::Database {
    fn components_of_snapshot_free(&self, root: Oid) -> Vec<Oid> {
        self.get(root)
            .map(|o| o.attrs.iter().flat_map(|v| v.refs()).collect::<Vec<_>>())
            .unwrap_or_default()
    }
}

#[test]
fn same_root_writers_serialize() {
    // Two transactions on the SAME root conflict at the root instance
    // (X vs X): the second blocks until the first commits.
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");

    let mut txn_a = cdb.begin_write();
    txn_a.make(part, vec![], vec![(root, "parts")]).unwrap();

    let started = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicBool::new(false));
    let cdb2 = cdb.clone();
    let (s2, f2) = (Arc::clone(&started), Arc::clone(&finished));
    let handle = thread::spawn(move || {
        s2.store(true, Ordering::SeqCst);
        cdb2.run_write(|t| t.make(part, vec![], vec![(root, "parts")]))
            .unwrap();
        f2.store(true, Ordering::SeqCst);
    });

    while !started.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    thread::sleep(Duration::from_millis(100));
    assert!(
        !finished.load(Ordering::SeqCst),
        "same-root writer must block until the first commits"
    );
    txn_a.commit().unwrap();
    handle.join().unwrap();
    assert!(finished.load(Ordering::SeqCst));
    cdb.with_read(|db| {
        let root_obj = db.get(root).unwrap();
        let n: usize = root_obj.attrs.iter().map(|v| v.refs().len()).sum();
        assert_eq!(n, 2);
    });
}

#[test]
fn snapshots_are_stable_and_never_see_partial_state() {
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");
    let p0 = cdb
        .run_write(|t| {
            t.make(
                part,
                vec![("tag", Value::Str("v0".into()))],
                vec![(root, "parts")],
            )
        })
        .unwrap();

    let snap = cdb.begin_read();
    assert_eq!(snap.get_attr(p0, "tag").unwrap(), Value::Str("v0".into()));

    // A multi-op transaction mutates tag AND adds a sibling.
    cdb.run_write(|t| {
        t.set_attr(p0, "tag", Value::Str("v1".into()))?;
        t.make(
            part,
            vec![("tag", Value::Str("new".into()))],
            vec![(root, "parts")],
        )
    })
    .unwrap();

    // The pinned snapshot still sees the old world, completely.
    assert_eq!(snap.get_attr(p0, "tag").unwrap(), Value::Str("v0".into()));
    assert_eq!(snap.components_of(root).unwrap().len(), 1);
    // A fresh snapshot sees the new world, completely.
    let now = cdb.begin_read();
    assert_eq!(now.get_attr(p0, "tag").unwrap(), Value::Str("v1".into()));
    assert_eq!(now.components_of(root).unwrap().len(), 2);
    assert!(now.lsn() > snap.lsn());
}

#[test]
fn snapshot_reads_do_not_block_on_an_open_writer() {
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");
    let p = cdb
        .run_write(|t| {
            t.make(
                part,
                vec![("tag", Value::Str("x".into()))],
                vec![(root, "parts")],
            )
        })
        .unwrap();

    let snap = cdb.begin_read();
    // Writer holds X on root + IXO on Part and stays open.
    let mut txn = cdb.begin_write();
    txn.set_attr(p, "tag", Value::Str("y".into())).unwrap();

    // Snapshot reads of the same objects complete immediately (they
    // take no lock-manager locks).
    let (tx, rx) = mpsc::channel();
    let cdb2 = cdb.clone();
    let handle = thread::spawn(move || {
        let snap2 = cdb2.begin_read();
        let v = snap2.get_attr(p, "tag").unwrap();
        tx.send(v).unwrap();
    });
    let v = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("snapshot read must not block behind an open writer");
    assert_eq!(v, Value::Str("x".into()));
    handle.join().unwrap();
    assert_eq!(snap.get_attr(p, "tag").unwrap(), Value::Str("x".into()));
    txn.abort();
}

#[test]
fn aborted_transactions_leave_no_trace() {
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");

    let mut txn = cdb.begin_write();
    let ghost = txn.make(part, vec![], vec![(root, "parts")]).unwrap();
    txn.abort();

    cdb.with_read(|db| assert!(!db.exists(ghost)));
    let snap = cdb.begin_read();
    assert!(!snap.exists(ghost).unwrap());
    assert_eq!(snap.components_of(root).unwrap().len(), 0);
}

#[test]
fn recover_fences_live_snapshots_and_transactions() {
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");

    let snap = cdb.begin_read();
    let mut txn = cdb.begin_write();
    txn.make(part, vec![], vec![(root, "parts")]).unwrap();

    cdb.recover().unwrap();

    assert!(matches!(
        snap.get(root),
        Err(DbError::TransactionState { .. })
    ));
    assert!(matches!(
        txn.make(part, vec![], vec![(root, "parts")]),
        Err(DbError::TransactionState { .. })
    ));
    // New work proceeds normally.
    cdb.run_write(|t| t.make(part, vec![], vec![(root, "parts")]))
        .unwrap();
}

#[test]
fn mvcc_and_txn_metrics_are_recorded() {
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");
    let snap = cdb.begin_read();
    cdb.run_write(|t| t.make(part, vec![], vec![(root, "parts")]))
        .unwrap();
    drop(snap);

    let m = cdb.metrics_snapshot();
    let counter = |name: &str| m.counters.get(name).copied().unwrap_or(0);
    assert!(counter("corion_mvcc_txn_commits_total") >= 2);
    assert!(counter("corion_mvcc_versions_published_total") >= 1);
    assert!(counter("corion_mvcc_snapshots_total") >= 1);
    assert!(counter("corion_lock_acquires_total") >= 1);
}

#[test]
fn vacuum_reclaims_unpinned_versions() {
    let cdb = ConcurrentDb::new();
    let (_, asm) = setup(&cdb);
    let root = mk_root(&cdb, asm, "R");
    for i in 0..10 {
        cdb.run_write(|t| t.set_attr(root, "label", Value::Str(format!("v{i}"))))
            .unwrap();
    }
    let reclaimed = cdb.vacuum();
    assert!(reclaimed > 0, "unpinned version chains must be reclaimed");
    // After vacuum with no pins, reads still answer from the base.
    let snap = cdb.begin_read();
    assert_eq!(
        snap.get_attr(root, "label").unwrap(),
        Value::Str("v9".into())
    );
}

#[test]
fn barrier_stress_smoke_disjoint_roots() {
    // 4 threads, each owning its own root, hammering concurrently.
    let cdb = ConcurrentDb::new();
    let (part, asm) = setup(&cdb);
    let roots: Vec<Oid> = (0..4)
        .map(|i| mk_root(&cdb, asm, &format!("R{i}")))
        .collect();
    let barrier = Arc::new(Barrier::new(roots.len()));

    let handles: Vec<_> = roots
        .iter()
        .map(|&root| {
            let cdb = cdb.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..20 {
                    cdb.run_write(|t| {
                        let p = t.make(
                            part,
                            vec![("tag", Value::Str(format!("p{i}")))],
                            vec![(root, "parts")],
                        )?;
                        t.set_attr(p, "tag", Value::Str(format!("p{i}')")))
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    cdb.with_read(|db| {
        for &root in &roots {
            let n: usize = db
                .get(root)
                .unwrap()
                .attrs
                .iter()
                .map(|v| v.refs().len())
                .sum();
            assert_eq!(n, 20);
        }
    });
}
