//! The concurrent engine handle: shared state, snapshots, write
//! transactions, recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use corion_core::{Database, DbConfig, DbResult};
use corion_lock::LockManager;
use corion_obs::{Counter, Registry};
use corion_storage::{Lsn, VersionStore};
use parking_lot::RwLock;

use crate::snapshot::Snapshot;
use crate::txn::WriteTxn;

/// Engine-level metric handles (`corion_mvcc_txn_*`). The lock manager's
/// `corion_lock_*` family and the version store's `corion_mvcc_*` family
/// are interned in the same registry.
pub(crate) struct EngineMetrics {
    /// `corion_mvcc_txn_begins_total`: write transactions opened.
    pub(crate) begins: Counter,
    /// `corion_mvcc_txn_commits_total`: write transactions committed.
    pub(crate) commits: Counter,
    /// `corion_mvcc_txn_aborts_total`: write transactions aborted
    /// (explicitly, on drop, or as deadlock victims).
    pub(crate) aborts: Counter,
    /// `corion_mvcc_txn_deadlocks_total`: transactions aborted as
    /// deadlock victims (also counted in `aborts`).
    pub(crate) deadlocks: Counter,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        EngineMetrics {
            begins: registry.counter("corion_mvcc_txn_begins_total"),
            commits: registry.counter("corion_mvcc_txn_commits_total"),
            aborts: registry.counter("corion_mvcc_txn_aborts_total"),
            deadlocks: registry.counter("corion_mvcc_txn_deadlocks_total"),
        }
    }
}

/// State shared by every handle, snapshot, and transaction of one engine.
pub(crate) struct Shared {
    /// The single-threaded engine behind a reader-writer latch. Readers
    /// (snapshot base fallbacks, lock planning) take the shared side;
    /// per-operation overlay execution and commit applies take the
    /// exclusive side *briefly* — transactions never hold it across lock
    /// waits or between operations.
    pub(crate) db: RwLock<Database>,
    /// The §7 lock manager. Lock waits block **outside** the latch.
    pub(crate) locks: LockManager,
    /// MVCC version chains + snapshot pins + visible-LSN watermark.
    pub(crate) versions: VersionStore,
    /// Bumped by [`ConcurrentDb::recover`]; snapshots and transactions
    /// capture it at begin and fail fast when it moves (their pinned
    /// state did not survive the crash-recovery rebuild).
    pub(crate) epoch: AtomicU64,
    /// Commits since the last automatic vacuum.
    pub(crate) commits_since_vacuum: AtomicU64,
    pub(crate) metrics: EngineMetrics,
}

/// How many commits between automatic version-store vacuums.
const VACUUM_INTERVAL: u64 = 64;

/// A thread-safe, cheaply cloneable handle to a CORION engine supporting
/// concurrent transactions. See the [crate docs](crate) for the
/// architecture.
#[derive(Clone)]
pub struct ConcurrentDb {
    pub(crate) shared: Arc<Shared>,
}

impl ConcurrentDb {
    /// Wrap an engine with default configuration.
    pub fn new() -> Self {
        Self::from_database(Database::new())
    }

    /// Wrap an engine with explicit configuration.
    pub fn with_config(config: DbConfig) -> Self {
        Self::from_database(Database::with_config(config))
    }

    /// Wrap an existing engine (e.g. one that already has a schema and
    /// data). The engine's metrics registry is reused, so the
    /// `corion_lock_*` / `corion_mvcc_*` families land beside the
    /// existing `corion_*` metrics.
    pub fn from_database(db: Database) -> Self {
        let registry = db.metrics_registry().clone();
        ConcurrentDb {
            shared: Arc::new(Shared {
                db: RwLock::new(db),
                locks: LockManager::with_registry(&registry),
                versions: VersionStore::with_registry(&registry),
                epoch: AtomicU64::new(0),
                commits_since_vacuum: AtomicU64::new(0),
                metrics: EngineMetrics::new(&registry),
            }),
        }
    }

    // ----------------------------------------------------------------
    // Transactions
    // ----------------------------------------------------------------

    /// Pin a read [`Snapshot`] at the current visible commit LSN. The
    /// snapshot observes exactly the transactions that committed at or
    /// below that LSN; its reads take no locks and never block on
    /// writers. Dropping it releases the pin (unblocking version GC).
    pub fn begin_read(&self) -> Snapshot {
        Snapshot::begin(Arc::clone(&self.shared))
    }

    /// Open a write transaction. Operations acquire §7 composite locks
    /// as they go; [`WriteTxn::commit`] applies the write set atomically
    /// and [`WriteTxn::abort`] (or drop) discards it.
    pub fn begin_write(&self) -> WriteTxn {
        self.shared.metrics.begins.inc();
        WriteTxn::begin(Arc::clone(&self.shared))
    }

    /// Run `body` in a write transaction with automatic commit and
    /// retry: a [retryable](corion_core::DbError::is_retryable) failure
    /// (deadlock victim, transient storage fault) aborts, backs off, and
    /// reruns `body` in a fresh transaction. Permanent errors abort and
    /// propagate.
    pub fn run_write<R>(&self, mut body: impl FnMut(&mut WriteTxn) -> DbResult<R>) -> DbResult<R> {
        const MAX_ATTEMPTS: u32 = 64;
        let mut attempt = 0;
        loop {
            let mut txn = self.begin_write();
            let result = body(&mut txn);
            let outcome = match result {
                Ok(value) => txn.commit().map(|_| value),
                Err(e) => {
                    txn.abort();
                    Err(e)
                }
            };
            match outcome {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() && attempt < MAX_ATTEMPTS => {
                    attempt += 1;
                    // Brief, attempt-scaled backoff so two colliding
                    // retry loops do not re-deadlock in lockstep.
                    for _ in 0..attempt {
                        std::thread::yield_now();
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ----------------------------------------------------------------
    // Escape hatches
    // ----------------------------------------------------------------

    /// Run `f` with shared read access to the underlying engine. The
    /// view is the *latest committed base state* (not a snapshot);
    /// concurrent commits are excluded for the duration. Intended for
    /// metrics, stats, and test assertions.
    pub fn with_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.shared.db.read())
    }

    /// Run `f` with exclusive access to the underlying engine —
    /// stop-the-world. This is the DDL and maintenance path (schema
    /// definition, checkpointing, bulk ingest via the single-threaded
    /// API): it bypasses locking **and** versioning, so run it before
    /// concurrent work starts or after it quiesces. Mutations made here
    /// are invisible to version chains; snapshots pinned across an
    /// exclusive mutation may observe it (the base fallback changes
    /// under them).
    pub fn with_exclusive<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.shared.db.write())
    }

    // ----------------------------------------------------------------
    // Recovery and maintenance
    // ----------------------------------------------------------------

    /// Crash-recover the underlying engine: replay the WAL, rebuild
    /// derived state, clear all version chains, and fence every live
    /// snapshot and transaction (their epoch check fails from now on).
    pub fn recover(&self) -> DbResult<corion_storage::RecoveryReport> {
        let mut db = self.shared.db.write();
        let report = db.recover()?;
        self.shared.versions.clear();
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(report)
    }

    /// Vacuum the version store now (commits are excluded while it
    /// runs). Returns the number of version entries reclaimed.
    pub fn vacuum(&self) -> u64 {
        let _guard = self.shared.db.write();
        self.shared.versions.vacuum()
    }

    /// Called by commit under the exclusive latch: periodic vacuum.
    pub(crate) fn maybe_vacuum_locked(shared: &Shared) {
        let n = shared.commits_since_vacuum.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(VACUUM_INTERVAL) {
            shared.versions.vacuum();
        }
    }

    // ----------------------------------------------------------------
    // Introspection
    // ----------------------------------------------------------------

    /// The highest fully committed (visible) LSN.
    pub fn visible_lsn(&self) -> Lsn {
        self.shared.versions.visible_lsn()
    }

    /// Number of live pinned snapshots.
    pub fn pinned_snapshots(&self) -> usize {
        self.shared.versions.pinned_snapshots()
    }

    /// Snapshot of every metric in the engine's registry (storage, core,
    /// lock, and MVCC families).
    pub fn metrics_snapshot(&self) -> corion_obs::MetricsSnapshot {
        self.with_read(|db| db.metrics_snapshot())
    }
}

impl Default for ConcurrentDb {
    fn default() -> Self {
        Self::new()
    }
}

/// The engine handle is shared across threads by design.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentDb>();
    assert_send_sync::<Snapshot>();
};
