//! Lock planning: from "this operation touches these objects" to the §7
//! composite lock set.
//!
//! The paper's protocol locks composite objects **from the root**: to
//! touch any part of a composite object, lock the root class in an
//! intention mode, the root instance in S/X, and every component class
//! of the composite class hierarchy in the matching O/OS mode. So the
//! planner's job is root discovery: walk the reverse composite
//! references up from each touched object (through the transaction's
//! own overlay, so freshly attached parents count) and emit
//! [`composite_lockset`] for every root found. An object outside any
//! composite degenerates to the direct-access protocol (class IS/IX +
//! instance S/X) because its hierarchy walk finds no components.
//!
//! Planning runs under the engine's shared latch *before* any lock is
//! taken; the caller then acquires the set blocking and **re-plans until
//! a fixpoint** — between planning and granting, another transaction may
//! have committed a topology change that moves a target under a new
//! root. Once every planned lock is held, the held X/IXO locks prevent
//! further movement of the targets (any mover would need locks we hold).

use std::collections::HashSet;

use corion_core::{ClassId, Database, Object, Oid, Overlay};
use corion_lock::protocol::composite_lockset;
use corion_lock::{LockIntent, LockMode, Lockable};

/// One object an operation is about to touch, from the lock planner's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTarget {
    /// An existing object (read or mutated, directly or via cascade).
    Object(Oid),
    /// A new instance of `class` is about to be created.
    NewInstance(ClassId),
}

/// Read one object through the overlay-then-base view. The overlay is
/// *not* installed during planning (planning holds only the shared
/// latch), so the layering is done by hand here.
fn view_get(db: &Database, overlay: &Overlay, oid: Oid) -> Option<Object> {
    match overlay.lookup(oid) {
        Some(img) => img.cloned(),
        None => db.get(oid).ok(),
    }
}

/// The composite roots above `oid`: walk reverse composite references
/// transitively; objects with no composite parent are their own root.
/// Unreadable objects (already deleted) answer themselves so the caller
/// still serialises on the instance before discovering the deletion.
pub fn roots_of_view(db: &Database, overlay: &Overlay, oid: Oid) -> Vec<Oid> {
    let mut roots = Vec::new();
    let mut visited: HashSet<Oid> = HashSet::new();
    let mut queue = vec![oid];
    while let Some(o) = queue.pop() {
        if !visited.insert(o) {
            continue;
        }
        let parents = match view_get(db, overlay, o) {
            Some(obj) => obj.composite_parents(),
            None => Vec::new(),
        };
        if parents.is_empty() {
            roots.push(o);
        } else {
            queue.extend(parents);
        }
    }
    roots.sort();
    roots
}

/// The components reachable *down* from `oid` through composite
/// attributes, `oid` included. Used for cascading operations (`delete`),
/// whose effects can touch shared components that also belong to other
/// composite objects — each of those roots must be locked too.
pub fn subtree_of_view(db: &Database, overlay: &Overlay, oid: Oid) -> Vec<Oid> {
    let mut out = Vec::new();
    let mut visited: HashSet<Oid> = HashSet::new();
    let mut queue = vec![oid];
    while let Some(o) = queue.pop() {
        if !visited.insert(o) {
            continue;
        }
        out.push(o);
        let Some(obj) = view_get(db, overlay, o) else {
            continue;
        };
        let Ok(class) = db.class(o.class) else {
            continue;
        };
        for (def, value) in class.attrs.iter().zip(obj.attrs.iter()) {
            if def.composite.is_some() {
                queue.extend(value.refs());
            }
        }
    }
    out
}

/// Compute the full lock set for an operation touching `targets` with
/// `intent`. Root discovery runs per target; the result keeps the
/// §7 acquisition order (root class, root instance, component classes)
/// within each root and may contain duplicates — the caller dedups
/// against its held set.
pub fn plan(
    db: &Database,
    overlay: &Overlay,
    targets: &[OpTarget],
    intent: LockIntent,
) -> Vec<(Lockable, LockMode)> {
    let mut locks: Vec<(Lockable, LockMode)> = Vec::new();
    let mut planned_roots: HashSet<Oid> = HashSet::new();
    for target in targets {
        match target {
            OpTarget::Object(oid) => {
                for root in roots_of_view(db, overlay, *oid) {
                    if planned_roots.insert(root) {
                        locks.extend(composite_lockset(db, root, intent).locks);
                    }
                }
            }
            OpTarget::NewInstance(class) => {
                let mode = match intent {
                    LockIntent::Read => LockMode::IS,
                    _ => LockMode::IX,
                };
                locks.push((Lockable::Class(*class), mode));
            }
        }
    }
    locks
}

#[cfg(test)]
mod tests {
    use super::*;
    use corion_core::{ClassBuilder, CompositeSpec, Domain, Value};

    fn tree_db() -> (Database, ClassId, ClassId) {
        let mut db = Database::new();
        let part = db.define_class(ClassBuilder::new("Part")).unwrap();
        let asm = db
            .define_class(ClassBuilder::new("Asm").attr_composite(
                "parts",
                Domain::SetOf(Box::new(Domain::Class(part))),
                CompositeSpec {
                    exclusive: true,
                    dependent: true,
                },
            ))
            .unwrap();
        (db, part, asm)
    }

    #[test]
    fn component_targets_lock_from_the_root() {
        let (mut db, part, asm) = tree_db();
        let root = db.make(asm, vec![], vec![]).unwrap();
        let child = db.make(part, vec![], vec![(root, "parts")]).unwrap();
        let _ = part;

        let ov = Overlay::new();
        let locks = plan(&db, &ov, &[OpTarget::Object(child)], LockIntent::Write);
        assert!(locks.contains(&(Lockable::Class(asm), LockMode::IX)));
        assert!(locks.contains(&(Lockable::Instance(root), LockMode::X)));
        assert!(!locks.contains(&(Lockable::Instance(child), LockMode::X)));
    }

    #[test]
    fn free_object_degenerates_to_direct_protocol() {
        let (mut db, part, _) = tree_db();
        let free = db.make(part, vec![], vec![]).unwrap();
        let ov = Overlay::new();
        let locks = plan(&db, &ov, &[OpTarget::Object(free)], LockIntent::Write);
        assert_eq!(locks[0], (Lockable::Class(part), LockMode::IX));
        assert_eq!(locks[1], (Lockable::Instance(free), LockMode::X));
    }

    #[test]
    fn overlay_attachment_is_visible_to_root_discovery() {
        let (mut db, part, asm) = tree_db();
        let root = db.make(asm, vec![], vec![]).unwrap();
        let free = db.make(part, vec![], vec![]).unwrap();

        // Attach `free` under `root` inside an overlay only.
        db.overlay_install(Overlay::new()).unwrap();
        db.make_component(free, root, "parts").unwrap();
        let ov = db.overlay_take().unwrap();

        let roots = roots_of_view(&db, &ov, free);
        assert_eq!(roots, vec![root]);
        // Without the overlay the object is still its own root.
        assert_eq!(roots_of_view(&db, &Overlay::new(), free), vec![free]);
    }

    #[test]
    fn subtree_walks_forward_composite_refs() {
        let (mut db, part, asm) = tree_db();
        let root = db.make(asm, vec![], vec![]).unwrap();
        let a = db.make(part, vec![], vec![(root, "parts")]).unwrap();
        let b = db.make(part, vec![], vec![(root, "parts")]).unwrap();
        let ov = Overlay::new();
        let mut sub = subtree_of_view(&db, &ov, root);
        sub.sort();
        let mut want = vec![root, a, b];
        want.sort();
        assert_eq!(sub, want);
        let _ = Value::Null;
    }
}
