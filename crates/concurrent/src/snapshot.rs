//! Lock-free snapshot reads.
//!
//! A [`Snapshot`] pins a commit LSN `S` and observes exactly the
//! transactions that committed with LSN ≤ `S`. Reads resolve against
//! the version store's chains first — entirely latch- and lock-free —
//! and fall back to the base store only for objects no concurrent
//! transaction has versioned. The fallback takes the engine's *shared*
//! latch and re-checks the chain under it, which closes the race with a
//! commit in flight: commits mutate the base only under the exclusive
//! latch, and they seed every pre-image before doing so, so "no chain
//! under the latch" proves the base value is the snapshot value.
//!
//! Snapshots never take lock-manager locks, so they can neither block a
//! writer nor deadlock; writers never wait for snapshots (only the
//! version-store vacuum does, by skipping pinned versions).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use corion_core::schema::lattice;
use corion_core::{ClassId, DbError, DbResult, Object, Oid, Value};
use corion_storage::{Lsn, Resolution, VersionKey};

use crate::db::Shared;

fn vkey(oid: Oid) -> VersionKey {
    VersionKey {
        class: oid.class.0,
        serial: oid.serial,
    }
}

/// A pinned, consistent read view of the database. Obtain with
/// [`ConcurrentDb::begin_read`](crate::ConcurrentDb::begin_read);
/// dropping releases the pin. Snapshots are `Send` and independent of
/// the handle that created them.
pub struct Snapshot {
    shared: Arc<Shared>,
    lsn: Lsn,
    epoch: u64,
}

impl Snapshot {
    pub(crate) fn begin(shared: Arc<Shared>) -> Self {
        let lsn = shared.versions.pin();
        let epoch = shared.epoch.load(Ordering::SeqCst);
        Snapshot { shared, lsn, epoch }
    }

    /// The commit LSN this snapshot observes: every transaction with
    /// commit LSN at or below this is visible, nothing else is.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    fn ensure_valid(&self) -> DbResult<()> {
        if self.shared.epoch.load(Ordering::SeqCst) != self.epoch {
            return Err(DbError::TransactionState {
                reason: "the engine recovered while this snapshot was pinned".into(),
            });
        }
        Ok(())
    }

    /// Resolve one object at the snapshot LSN: `Ok(None)` means "not
    /// visible" (never existed, unborn, or deleted by then).
    fn read(&self, oid: Oid) -> DbResult<Option<Object>> {
        self.ensure_valid()?;
        match self.shared.versions.resolve(vkey(oid), self.lsn) {
            Resolution::Image(bytes) => Ok(Some(Object::decode(&bytes).map_err(DbError::from)?)),
            Resolution::Deleted | Resolution::Unborn => Ok(None),
            Resolution::Base => {
                let db = self.shared.db.read();
                // Re-check under the latch: a commit may have seeded a
                // chain (and changed the base) since the lock-free probe.
                match self.shared.versions.resolve(vkey(oid), self.lsn) {
                    Resolution::Image(bytes) => {
                        Ok(Some(Object::decode(&bytes).map_err(DbError::from)?))
                    }
                    Resolution::Deleted | Resolution::Unborn => Ok(None),
                    Resolution::Base => match db.get(oid) {
                        Ok(obj) => Ok(Some(obj)),
                        Err(DbError::NoSuchObject(_)) => Ok(None),
                        Err(e) => Err(e),
                    },
                }
            }
        }
    }

    /// Load an object. Errors with `NoSuchObject` if it is not visible
    /// at this snapshot.
    pub fn get(&self, oid: Oid) -> DbResult<Object> {
        self.read(oid)?.ok_or(DbError::NoSuchObject(oid))
    }

    /// True if the object is visible at this snapshot.
    pub fn exists(&self, oid: Oid) -> DbResult<bool> {
        Ok(self.read(oid)?.is_some())
    }

    /// Read one attribute by name.
    pub fn get_attr(&self, oid: Oid, attr: &str) -> DbResult<Value> {
        let obj = self.get(oid)?;
        let db = self.shared.db.read();
        let class = db.class(oid.class)?;
        let idx = class
            .attr_index(attr)
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: oid.class,
                attr: attr.into(),
            })?;
        obj.attrs
            .get(idx)
            .cloned()
            .ok_or_else(|| DbError::NoSuchAttribute {
                class: oid.class,
                attr: attr.into(),
            })
    }

    /// Direct (or, with `deep`, subclass-inclusive) instances of `class`
    /// visible at this snapshot, sorted.
    pub fn instances_of(&self, class: ClassId, deep: bool) -> DbResult<Vec<Oid>> {
        self.ensure_valid()?;
        let (mut base, classes) = {
            let db = self.shared.db.read();
            let mut classes = vec![class];
            if deep {
                classes.extend(lattice::descendants(db.catalog(), class));
            }
            (db.instances_of(class, deep), classes)
        };
        base.sort();
        // Overlay the version chains: objects deleted after base-read
        // but visible at the snapshot come back; objects in the base
        // that are unborn or deleted at the snapshot drop out.
        for c in classes {
            for (key, res) in self.shared.versions.resolve_class(c.0, self.lsn) {
                let oid = Oid {
                    class: ClassId(key.class),
                    serial: key.serial,
                };
                match res {
                    Resolution::Image(_) => {
                        if base.binary_search(&oid).is_err() {
                            base.push(oid);
                            base.sort();
                        }
                    }
                    Resolution::Deleted | Resolution::Unborn => {
                        if let Ok(i) = base.binary_search(&oid) {
                            base.remove(i);
                        }
                    }
                    Resolution::Base => {}
                }
            }
        }
        Ok(base)
    }

    /// The direct components of `oid`: every reference held in one of
    /// its composite attributes, as visible at this snapshot.
    pub fn components_of(&self, oid: Oid) -> DbResult<Vec<Oid>> {
        let obj = self.get(oid)?;
        let db = self.shared.db.read();
        let class = db.class(oid.class)?;
        let mut out = Vec::new();
        for (def, value) in class.attrs.iter().zip(obj.attrs.iter()) {
            if def.composite.is_some() {
                out.extend(value.refs());
            }
        }
        Ok(out)
    }

    /// The composite parents of `oid` (from its reverse references).
    pub fn parents_of(&self, oid: Oid) -> DbResult<Vec<Oid>> {
        Ok(self.get(oid)?.composite_parents())
    }

    /// Every ancestor of `oid` reachable through composite parents
    /// (transitive closure, `oid` excluded), sorted.
    pub fn ancestors_of(&self, oid: Oid) -> DbResult<Vec<Oid>> {
        let mut seen = std::collections::HashSet::new();
        let mut queue = self.parents_of(oid)?;
        let mut out = Vec::new();
        while let Some(p) = queue.pop() {
            if !seen.insert(p) {
                continue;
            }
            out.push(p);
            if let Some(obj) = self.read(p)? {
                queue.extend(obj.composite_parents());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The full component subtree below `oid` (transitive closure,
    /// `oid` included), in discovery order.
    pub fn subtree_of(&self, oid: Oid) -> DbResult<Vec<Oid>> {
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![oid];
        let mut out = Vec::new();
        while let Some(o) = queue.pop() {
            if !seen.insert(o) {
                continue;
            }
            if self.read(o)?.is_none() {
                continue;
            }
            out.push(o);
            queue.extend(self.components_of(o)?);
        }
        Ok(out)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.shared.versions.unpin(self.lsn);
    }
}
