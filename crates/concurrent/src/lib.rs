//! # corion-concurrent
//!
//! Concurrent transactions for the CORION engine: the paper's §7
//! composite lock protocol on the write path, MVCC snapshots on the read
//! path, and commit-LSN ordering in between.
//!
//! The single-threaded engine (`corion-core`) mutates through
//! `&mut Database`, so one writer stalls every reader. This crate wraps
//! the engine in [`ConcurrentDb`], which is cheaply cloneable and fully
//! thread-safe:
//!
//! * [`ConcurrentDb::begin_read`] pins a [`Snapshot`] at the current
//!   commit LSN. Snapshot reads take **no lock-manager locks** and never
//!   block on writers: they resolve against the storage layer's
//!   copy-on-write version chains
//!   ([`corion_storage::VersionStore`]) and fall back to the base store
//!   only for objects no concurrent transaction has touched.
//! * [`ConcurrentDb::begin_write`] opens a [`WriteTxn`]. Every operation
//!   first acquires the §7 composite lock set for the objects it
//!   touches — intention modes down the granularity hierarchy
//!   (class → instance), root-locking for composite subtree mutations
//!   (IX on the root class, X on the root instance, IXO/IXOS on the
//!   component classes) — through `corion-lock`'s blocking manager with
//!   waits-for-graph deadlock detection. A deadlock victim surfaces as
//!   the typed, retryable [`corion_core::DbError::Deadlock`].
//! * Writes are buffered in a transaction-private
//!   [`corion_core::Overlay`]; the shared page store and the WAL are
//!   untouched until commit, which replays the overlay as **one** atomic
//!   WAL batch under the engine's exclusive latch, assigns the commit
//!   LSN, publishes after-images to the version store, and only then
//!   releases locks (strict two-phase locking).
//!
//! Two writers on disjoint composite objects of the same class hierarchy
//! hold compatible lock sets (IX+IX, X on different roots, IXO+IXO) and
//! proceed concurrently; their base applies serialise only for the short
//! page-store critical section. See `DESIGN.md` §14 and
//! `docs/CONCURRENCY.md` for the full protocol and the linearizability
//! harness that proves it.
//!
//! ```
//! use corion_concurrent::ConcurrentDb;
//! use corion_core::{ClassBuilder, Domain, Value};
//!
//! let cdb = ConcurrentDb::new();
//! let widget = cdb
//!     .with_exclusive(|db| db.define_class(ClassBuilder::new("Widget").attr("n", Domain::Integer)))
//!     .unwrap();
//! let oid = cdb
//!     .run_write(|txn| txn.make(widget, vec![("n", Value::Int(1))], vec![]))
//!     .unwrap();
//! let snap = cdb.begin_read();
//! cdb.run_write(|txn| txn.set_attr(oid, "n", Value::Int(2))).unwrap();
//! // The pinned snapshot still sees the old version; a new one sees the new.
//! assert_eq!(snap.get_attr(oid, "n").unwrap(), Value::Int(1));
//! assert_eq!(cdb.begin_read().get_attr(oid, "n").unwrap(), Value::Int(2));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod plan;
pub mod snapshot;
pub mod txn;

pub use db::ConcurrentDb;
pub use snapshot::Snapshot;
pub use txn::WriteTxn;
