//! Write transactions: §7 composite locking, overlay buffering, strict
//! two-phase commit.
//!
//! Every operation follows the same shape:
//!
//! 1. **Plan** the §7 lock set for the objects the operation touches,
//!    under the engine's shared latch (root discovery through the
//!    transaction's own overlay).
//! 2. **Acquire** the locks through the blocking manager, *outside* any
//!    latch, re-planning to a fixpoint (the topology may shift between
//!    plan and grant). A waits-for cycle aborts this transaction as the
//!    victim with the retryable [`DbError::Deadlock`].
//! 3. **Execute** the operation under the exclusive latch with the
//!    overlay installed — the full single-threaded semantics (topology
//!    rules, cascades, clustering hints) run unchanged, writing only the
//!    overlay. The latch is held for the duration of the operation, not
//!    the transaction, so transactions on disjoint composites interleave
//!    freely between operations.
//!
//! [`WriteTxn::commit`] is the only point where the shared page store
//! changes: under the exclusive latch it seeds pre-images into the
//! version store, replays the overlay as **one** atomic WAL batch,
//! allocates the commit LSN, publishes after-images, advances the
//! visible watermark — then drops the latch and releases every lock
//! (strict 2PL: nothing is released before commit/abort).

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use corion_core::{ClassId, Database};
use corion_core::{DbError, DbResult, Object, Oid, Overlay, Value};
use corion_lock::{LockError, LockIntent, LockMode, Lockable, TxnId};
use corion_storage::{Lsn, VersionKey};

use crate::db::{ConcurrentDb, Shared};
use crate::plan::{plan, subtree_of_view, OpTarget};

fn vkey(oid: Oid) -> VersionKey {
    VersionKey {
        class: oid.class.0,
        serial: oid.serial,
    }
}

fn encode_object(obj: &Object) -> Vec<u8> {
    let mut buf = Vec::new();
    obj.encode(&mut buf);
    buf
}

/// A concurrent write transaction. Obtain with
/// [`ConcurrentDb::begin_write`]; finish with [`commit`](WriteTxn::commit)
/// or [`abort`](WriteTxn::abort) (dropping aborts).
pub struct WriteTxn {
    shared: Arc<Shared>,
    txn: TxnId,
    epoch: u64,
    /// The private write set. `None` only transiently while installed
    /// into the engine, and permanently once the transaction is done.
    overlay: Option<Overlay>,
    held: HashSet<(Lockable, LockMode)>,
    /// Set when the transaction aborted (deadlock victim or explicit):
    /// every further operation fails fast.
    done: bool,
    /// Operations executed (for error messages only).
    ops: u64,
}

impl WriteTxn {
    pub(crate) fn begin(shared: Arc<Shared>) -> Self {
        let txn = shared.locks.begin();
        let epoch = shared.epoch.load(Ordering::SeqCst);
        WriteTxn {
            shared,
            txn,
            epoch,
            overlay: Some(Overlay::new()),
            held: HashSet::new(),
            done: false,
            ops: 0,
        }
    }

    /// The lock-manager transaction id (diagnostics).
    pub fn id(&self) -> TxnId {
        self.txn
    }

    fn ensure_open(&mut self) -> DbResult<()> {
        if self.done {
            return Err(DbError::TransactionState {
                reason: "the transaction is no longer open (committed or aborted)".into(),
            });
        }
        if self.shared.epoch.load(Ordering::SeqCst) != self.epoch {
            // A fenced transaction can never commit; holding its locks
            // any longer would only block post-recovery work.
            self.abort_internal();
            return Err(DbError::TransactionState {
                reason: "the engine recovered while this transaction was open".into(),
            });
        }
        Ok(())
    }

    /// Abort internally (release locks, drop the write set) and mark the
    /// transaction done. Idempotent.
    fn abort_internal(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.overlay = None;
        self.shared.locks.release_all(self.txn);
        self.shared.metrics.aborts.inc();
    }

    /// Acquire the §7 lock set for `targets`, re-planning to a fixpoint.
    fn acquire_for(&mut self, targets: &[OpTarget], intent: LockIntent) -> DbResult<()> {
        // Convergence bound: every iteration but the last acquires at
        // least one new lock, and plans are finite. The cap turns a
        // pathological plan/commit race into a retryable error instead
        // of a livelock.
        const MAX_ROUNDS: u32 = 64;
        for _ in 0..MAX_ROUNDS {
            let wanted: Vec<(Lockable, LockMode)> = {
                let db = self.shared.db.read();
                let overlay = self.overlay.as_ref().expect("open txn has an overlay");
                plan(&db, overlay, targets, intent)
            };
            let fresh: Vec<(Lockable, LockMode)> = wanted
                .into_iter()
                .filter(|l| !self.held.contains(l))
                .collect();
            if fresh.is_empty() {
                return Ok(());
            }
            for (resource, mode) in fresh {
                match self.shared.locks.lock(self.txn, resource, mode) {
                    Ok(()) => {
                        self.held.insert((resource, mode));
                    }
                    Err(LockError::Deadlock { cycle, .. }) => {
                        self.shared.metrics.deadlocks.inc();
                        self.abort_internal();
                        let cycle = cycle
                            .iter()
                            .map(|t| format!("t{}", t.0))
                            .collect::<Vec<_>>()
                            .join(" -> ");
                        return Err(DbError::Deadlock { cycle });
                    }
                    Err(e) => {
                        self.abort_internal();
                        return Err(DbError::TransactionState {
                            reason: format!("lock acquisition failed: {e}"),
                        });
                    }
                }
            }
        }
        self.abort_internal();
        Err(DbError::Deadlock {
            cycle: "lock planning did not converge (topology churn)".into(),
        })
    }

    /// Run `f` against the engine with this transaction's overlay
    /// installed, under the exclusive latch.
    fn with_overlay<R>(&mut self, f: impl FnOnce(&mut Database) -> DbResult<R>) -> DbResult<R> {
        let mut db = self.shared.db.write();
        if self.shared.epoch.load(Ordering::SeqCst) != self.epoch {
            drop(db);
            self.abort_internal();
            return Err(DbError::TransactionState {
                reason: "the engine recovered while this transaction was open".into(),
            });
        }
        let overlay = self.overlay.take().expect("open txn has an overlay");
        if let Err(e) = db.overlay_install(overlay) {
            // Can only happen if an exclusive-access user left the
            // engine in a transaction scope; surface it, keep the txn.
            self.overlay = Some(Overlay::new());
            return Err(e);
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut db)));
        self.overlay = Some(db.overlay_take().expect("overlay still installed"));
        drop(db);
        match result {
            Ok(r) => {
                self.ops += 1;
                r
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Plan + acquire + execute one operation.
    fn run_op<R>(
        &mut self,
        targets: &[OpTarget],
        intent: LockIntent,
        f: impl FnOnce(&mut Database) -> DbResult<R>,
    ) -> DbResult<R> {
        self.ensure_open()?;
        self.acquire_for(targets, intent)?;
        self.with_overlay(f)
    }

    // ----------------------------------------------------------------
    // Mutations
    // ----------------------------------------------------------------

    /// Create an instance — the concurrent `make` (§2.3). Locks the
    /// target class in IX plus the composite lock set of every parent's
    /// root, then runs the full single-threaded `make` semantics against
    /// the overlay.
    pub fn make(
        &mut self,
        class: ClassId,
        values: Vec<(&str, Value)>,
        parents: Vec<(Oid, &str)>,
    ) -> DbResult<Oid> {
        // A parentless make is *direct* access to the class (IX). A make
        // with composite parents creates the instance through the
        // composite path: the parents' root locksets already cover its
        // class in IXO, and a direct IX here would wrongly conflict with
        // other composite writers of the same hierarchy (§7: O-modes
        // exclude direct modes, not each other).
        let mut targets = Vec::new();
        if parents.is_empty() {
            targets.push(OpTarget::NewInstance(class));
        }
        for (p, _) in &parents {
            targets.push(OpTarget::Object(*p));
        }
        for (_, v) in &values {
            for r in v.refs() {
                targets.push(OpTarget::Object(r));
            }
        }
        self.run_op(&targets, LockIntent::Write, |db| {
            db.make(class, values, parents)
        })
    }

    /// Assign an attribute (composite semantics included: detached
    /// components are handled exactly as in the single-threaded engine).
    pub fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        let mut targets = vec![OpTarget::Object(oid)];
        for r in value.refs() {
            targets.push(OpTarget::Object(r));
        }
        self.run_op(&targets, LockIntent::Write, |db| {
            db.set_attr(oid, attr, value)
        })
    }

    /// Assign a weak (non-composite) reference attribute.
    pub fn set_attr_weak(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        let mut targets = vec![OpTarget::Object(oid)];
        for r in value.refs() {
            targets.push(OpTarget::Object(r));
        }
        self.run_op(&targets, LockIntent::Write, |db| {
            db.set_attr_weak(oid, attr, value)
        })
    }

    /// Delete an object and cascade per the Deletion Rule. The lock plan
    /// covers the whole subtree — shared components of the victim may
    /// belong to other composite objects, and dropping the reverse
    /// reference mutates them, so each such root is locked too.
    pub fn delete(&mut self, root: Oid) -> DbResult<Vec<Oid>> {
        self.ensure_open()?;
        let targets: Vec<OpTarget> = {
            let db = self.shared.db.read();
            let overlay = self.overlay.as_ref().expect("open txn has an overlay");
            subtree_of_view(&db, overlay, root)
                .into_iter()
                .map(OpTarget::Object)
                .collect()
        };
        self.run_op(&targets, LockIntent::Write, |db| db.delete(root))
    }

    /// Make `child` a component of `parent` through composite attribute
    /// `attr` (the Make-Component Rule applies unchanged).
    pub fn make_component(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        let targets = [OpTarget::Object(child), OpTarget::Object(parent)];
        self.run_op(&targets, LockIntent::Write, |db| {
            db.make_component(child, parent, attr)
        })
    }

    /// Remove `child` from `parent`'s composite attribute `attr`
    /// (orphan policy applies, possibly cascading into the child).
    pub fn remove_component(&mut self, child: Oid, parent: Oid, attr: &str) -> DbResult<()> {
        self.ensure_open()?;
        let targets: Vec<OpTarget> = {
            let db = self.shared.db.read();
            let overlay = self.overlay.as_ref().expect("open txn has an overlay");
            let mut t: Vec<OpTarget> = subtree_of_view(&db, overlay, child)
                .into_iter()
                .map(OpTarget::Object)
                .collect();
            t.push(OpTarget::Object(parent));
            t
        };
        self.run_op(&targets, LockIntent::Write, |db| {
            db.remove_component(child, parent, attr)
        })
    }

    // ----------------------------------------------------------------
    // Reads (locking reads — snapshots are the lock-free alternative)
    // ----------------------------------------------------------------

    /// Read an object, seeing this transaction's own writes. Takes the
    /// §7 Read lock set for the object's composite (IS/S/ISO…).
    pub fn get(&mut self, oid: Oid) -> DbResult<Object> {
        self.run_op(&[OpTarget::Object(oid)], LockIntent::Read, |db| db.get(oid))
    }

    /// Read one attribute.
    pub fn get_attr(&mut self, oid: Oid, attr: &str) -> DbResult<Value> {
        self.run_op(&[OpTarget::Object(oid)], LockIntent::Read, |db| {
            db.get_attr(oid, attr)
        })
    }

    /// Whether `oid` is live in this transaction's view.
    pub fn exists(&mut self, oid: Oid) -> DbResult<bool> {
        self.run_op(&[OpTarget::Object(oid)], LockIntent::Read, |db| {
            Ok(db.exists(oid))
        })
    }

    /// Acquire the §7 lock set for the composite rooted at `root` with
    /// an explicit intent — the scan-then-update entry point:
    /// `LockIntent::ReadAllWriteSome` takes SIX/SIXO/SIXOS up front so a
    /// scan that later updates some components needs no upgrades.
    pub fn lock_composite(&mut self, root: Oid, intent: LockIntent) -> DbResult<()> {
        self.ensure_open()?;
        self.acquire_for(&[OpTarget::Object(root)], intent)
    }

    /// Run an arbitrary closure against the engine with this
    /// transaction's overlay installed, after taking the §7 Read lock
    /// set for `roots`. Escape hatch for multi-object read logic
    /// (traversals, predicates) inside a write transaction.
    pub fn with_view<R>(
        &mut self,
        roots: &[Oid],
        f: impl FnOnce(&Database) -> DbResult<R>,
    ) -> DbResult<R> {
        let targets: Vec<OpTarget> = roots.iter().copied().map(OpTarget::Object).collect();
        self.run_op(&targets, LockIntent::Read, |db| f(db))
    }

    // ----------------------------------------------------------------
    // Commit / abort
    // ----------------------------------------------------------------

    /// Commit: apply the write set to the base store as one atomic WAL
    /// batch, publish versions at a freshly allocated commit LSN, then
    /// release every lock. Returns the commit LSN (the visible watermark
    /// if the transaction wrote nothing).
    ///
    /// On a storage fault the batch rolls back, the transaction aborts,
    /// and — as with any substrate failure — the engine must be
    /// [`ConcurrentDb::recover`]ed before further mutations.
    pub fn commit(mut self) -> DbResult<Lsn> {
        self.ensure_open()?;
        let overlay = self.overlay.take().expect("open txn has an overlay");
        if overlay.is_empty() {
            self.done = true;
            self.shared.locks.release_all(self.txn);
            self.shared.metrics.commits.inc();
            return Ok(self.shared.versions.visible_lsn());
        }

        let mut db = self.shared.db.write();
        if self.shared.epoch.load(Ordering::SeqCst) != self.epoch {
            drop(db);
            self.abort_internal();
            return Err(DbError::TransactionState {
                reason: "the engine recovered while this transaction was open".into(),
            });
        }

        // Capture pre-images (for first-writer seeding) and after-images
        // (for publication) before the base changes.
        let mut seeds: Vec<(VersionKey, Vec<u8>)> = Vec::new();
        let mut publishes: Vec<(VersionKey, Option<Vec<u8>>)> = Vec::new();
        for (oid, image, created) in overlay.write_set() {
            if created && image.is_none() {
                continue; // created-then-deleted: no trace anywhere
            }
            if !created {
                if let Ok(pre) = db.get(oid) {
                    seeds.push((vkey(oid), encode_object(&pre)));
                }
            }
            publishes.push((vkey(oid), image.map(encode_object)));
        }

        if let Err(e) = db.overlay_apply(overlay) {
            drop(db);
            self.abort_internal();
            return Err(e);
        }

        let lsn = self.shared.versions.allocate_lsn();
        for (key, image) in seeds {
            self.shared.versions.seed(key, image);
        }
        for (key, image) in publishes {
            self.shared.versions.publish(key, lsn, image);
        }
        self.shared.versions.advance(lsn);
        ConcurrentDb::maybe_vacuum_locked(&self.shared);
        drop(db);

        self.done = true;
        self.shared.locks.release_all(self.txn);
        self.shared.metrics.commits.inc();
        Ok(lsn)
    }

    /// Abort: discard the write set and release every lock. The base
    /// store was never touched. Idempotent (aborting a deadlock victim
    /// again is a no-op).
    pub fn abort(&mut self) {
        self.abort_internal();
    }
}

impl Drop for WriteTxn {
    fn drop(&mut self) {
        if !self.done {
            self.abort_internal();
        }
    }
}
