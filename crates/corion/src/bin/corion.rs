//! The `corion` command-line tool.
//!
//! ```text
//! corion stats [--prometheus | --text] [--docs N] [--no-crash]
//! corion dump <path> [--docs N]
//! corion fsck <path> [--repair]
//! ```
//!
//! `corion stats` drives a representative workload through one in-memory
//! engine — document-corpus generation (§2.3 Example 2), the §3 traversals
//! and predicates, a lock-manager exercise (§7), a crash/recover cycle
//! (DESIGN.md §10), and a round of concurrent MVCC transactions with a
//! pinned snapshot (DESIGN.md §14) — then prints every metric the engine
//! recorded. It is
//! the worked example for `docs/OBSERVABILITY.md`: run it to see the full
//! metric catalog with live values.
//!
//! Output formats:
//!
//! * default — a human-readable table (counters, gauges, histogram
//!   summaries with mean latency);
//! * `--prometheus` — the Prometheus text exposition format, one scrape's
//!   worth (`corion stats --prometheus | promtool check metrics` parses);
//! * `--text` — the snapshot serialisation format of
//!   `MetricsSnapshot::to_text` (parse it back with `parse_text`, merge
//!   shards with `merge`).
//!
//! `corion dump` writes a document-corpus database image to disk;
//! `corion fsck` loads an image, scrubs the storage substrate, and verifies
//! every composite-object invariant, optionally repairing what it can
//! (`docs/RESILIENCE.md`). Exit status is 0 only for a clean (or cleanly
//! repaired) database, so the pair works as a CI smoke test.

use std::process::ExitCode;

use corion::workload::{Corpus, CorpusParams};
use corion::{
    ConcurrentDb, Database, DbConfig, Filter, LockManager, LockMode, Lockable, MakeSpec, ParentRef,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => stats(&args[1..]),
        Some("dump") => dump(&args[1..]),
        Some("fsck") => fsck(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("corion: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
corion — the CORION composite-object database (SIGMOD 1989 reproduction)

USAGE:
    corion stats [--prometheus | --text] [--docs N] [--no-crash]
    corion dump <path> [--docs N]
    corion fsck <path> [--repair]
    corion help

SUBCOMMANDS:
    stats    Run a representative workload (documents, traversals, locks,
             crash+recover) and print the engine's metrics.
    dump     Generate a document corpus and save the database image to
             <path> (atomic write, fsynced).
    fsck     Load the image at <path>, scrub pages against their checksums,
             and verify Topology Rules 1-4, reverse-reference sync, and
             reference reachability. Exit 0 iff the database is clean.

OPTIONS (stats):
    --prometheus    Print in the Prometheus text exposition format.
    --text          Print the MetricsSnapshot text serialisation.
    --docs N        Corpus size in documents (default 10).
    --no-crash      Skip the crash/recover cycle (WAL recovery counters
                    will stay zero).

OPTIONS (dump):
    --docs N        Corpus size in documents (default 10).

OPTIONS (fsck):
    --repair        Repair what fsck finds — drop dangling composite
                    references, resolve topology conflicts, rebuild reverse
                    references, cascade-delete orphaned dependents — then
                    re-verify and write the repaired image back to <path>.
";

fn dump(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut docs = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--docs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => docs = n,
                None => {
                    eprintln!("corion dump: --docs needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("corion dump: unexpected argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("corion dump: missing <path>\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut db = Database::new();
    let corpus = match Corpus::generate(
        &mut db,
        CorpusParams {
            documents: docs,
            ..CorpusParams::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corion dump: corpus generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = db.save_to_file(path) {
        eprintln!("corion dump: saving `{path}` failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "corion dump: wrote {path} ({} documents, {} sections)",
        corpus.documents.len(),
        corpus.sections.len()
    );
    ExitCode::SUCCESS
}

fn fsck(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut repair = false;
    for arg in args {
        match arg.as_str() {
            "--repair" => repair = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("corion fsck: unexpected argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("corion fsck: missing <path>\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    // A dump that fails to load (truncated file, checksum mismatch from a
    // flipped bit, malformed records) is unconditionally an fsck failure:
    // there is no engine to repair.
    let mut db = match Database::load_from_file(path, DbConfig::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("corion fsck: `{path}` failed to load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scrub = match db.scrub() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("corion fsck: scrub of `{path}` failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "corion fsck: scrub checked {} pages ({} salvaged from the WAL, {} reset)",
        scrub.pages_checked, scrub.pages_salvaged, scrub.pages_reset
    );
    match db.verify_integrity() {
        Ok(report) => {
            println!(
                "corion fsck: clean — {} objects, {} composite edges, {} weak refs",
                report.objects, report.composite_edges, report.weak_refs
            );
            ExitCode::SUCCESS
        }
        Err(e) if repair => {
            println!("corion fsck: integrity violation: {e}; repairing");
            let report = match db.repair() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("corion fsck: repair failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "corion fsck: repair dropped {} dangling + {} conflicting edges, \
                 rewrote reverse refs on {} objects, deleted {} orphans",
                report.dangling_edges_dropped,
                report.conflicting_edges_dropped,
                report.reverse_refs_fixed,
                report.orphans_deleted
            );
            if let Err(e) = db.verify_integrity() {
                eprintln!("corion fsck: database still inconsistent after repair: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = db.save_to_file(path) {
                eprintln!("corion fsck: saving repaired image failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("corion fsck: repaired image written back to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("corion fsck: integrity violation: {e} (rerun with --repair)");
            ExitCode::FAILURE
        }
    }
}

#[derive(PartialEq)]
enum Format {
    Human,
    Prometheus,
    Text,
}

fn stats(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut docs = 10usize;
    let mut crash = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--prometheus" => format = Format::Prometheus,
            "--text" => format = Format::Text,
            "--no-crash" => crash = false,
            "--docs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => docs = n,
                None => {
                    eprintln!("corion stats: --docs needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("corion stats: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut db = Database::new();
    let corpus = match Corpus::generate(
        &mut db,
        CorpusParams {
            documents: docs,
            ..CorpusParams::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corion stats: corpus generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if run_workload(&mut db, &corpus, crash).is_err() {
        eprintln!("corion stats: workload failed");
        return ExitCode::FAILURE;
    }

    // Concurrent engine: wrap the same database (and registry) in the
    // MVCC + §7-locking spine and run writers against a pinned snapshot
    // so the `corion_mvcc_*` / `corion_mvcc_txn_*` families go live.
    let cdb = ConcurrentDb::from_database(db);
    if let Err(e) = run_concurrent(&cdb, &corpus) {
        eprintln!("corion stats: concurrent workload failed: {e}");
        return ExitCode::FAILURE;
    }

    let snapshot = cdb.with_read(|db| db.metrics_snapshot());
    match format {
        Format::Prometheus => print!("{}", snapshot.render_prometheus()),
        Format::Text => print!("{}", snapshot.to_text()),
        Format::Human => {
            println!(
                "# corion stats — {} documents, {} sections ({} shared refs){}",
                corpus.documents.len(),
                corpus.sections.len(),
                corpus.shared_section_refs,
                if crash {
                    ", one crash/recover cycle"
                } else {
                    ""
                }
            );
            print_human(&snapshot);
        }
    }
    ExitCode::SUCCESS
}

/// Traversals + predicates + locks + (optionally) a crash/recover cycle:
/// enough traffic to make every catalogued metric nonzero.
fn run_workload(db: &mut Database, corpus: &Corpus, crash: bool) -> Result<(), corion::DbError> {
    // §3 traversals, twice per document so the cache records both misses
    // and hits; batch variants fan out over scoped threads.
    for _ in 0..2 {
        for &d in &corpus.documents {
            db.components_of(d, &Filter::all())?;
            db.roots_of(d)?;
        }
        for &s in &corpus.sections {
            db.parents_of(s, &Filter::all())?;
            db.ancestors_of(s, &Filter::all())?;
        }
    }
    let _ = db.components_of_many(&corpus.documents, &Filter::all());
    // §3.2 predicates.
    for &s in &corpus.sections {
        db.compositep(corpus.schema.document, None)?;
        if let Some(&d) = corpus.documents.first() {
            db.component_of(s, d)?;
            db.child_of(s, d)?;
        }
    }
    // Write path: one grouped transaction, one clustered bulk ingest, and
    // one deliberate abort, so the corion_txn_* counters go live.
    let extra = db.transaction(|db| db.make(corpus.schema.document, vec![], vec![]))?;
    db.make_many(&[
        MakeSpec::new(corpus.schema.section).parent(ParentRef::Existing(extra), "Sections"),
        MakeSpec::new(corpus.schema.paragraph).parent(ParentRef::Created(0), "Content"),
    ])?;
    db.begin_transaction()?;
    db.make(corpus.schema.paragraph, vec![], vec![])?;
    db.abort_transaction()?;
    // §7 locks, sharing the engine's registry: one clean 2PL round and one
    // conflict.
    let lm = LockManager::with_registry(db.metrics_registry());
    let t1 = lm.begin();
    let t2 = lm.begin();
    let root = Lockable::Class(corpus.schema.document);
    lm.lock(t1, root, LockMode::IXO).ok();
    let _ = lm.try_lock(t2, root, LockMode::X); // conflicts with IXO
    lm.release_all(t1);
    lm.lock(t2, root, LockMode::X).ok();
    lm.release_all(t2);
    // Crash + recovery: exercises the WAL replay path so the
    // corion_storage_recover* counters go live.
    if crash {
        let victim = *corpus.documents.last().expect("nonempty corpus");
        db.delete(victim)?;
        db.simulate_crash();
        db.recover()?;
        db.checkpoint()?;
    }
    Ok(())
}

/// Concurrent MVCC transactions (DESIGN.md §14): two writer threads add
/// a section to different documents while a snapshot pinned beforehand
/// keeps observing the pre-write state, then a vacuum reclaims the
/// version chains the dropped snapshot no longer pins.
fn run_concurrent(cdb: &ConcurrentDb, corpus: &Corpus) -> Result<(), corion::DbError> {
    // The crash cycle in `run_workload` deletes the last document, so
    // pick targets from whatever is still alive.
    let live: Vec<_> = cdb.with_read(|db| {
        corpus
            .documents
            .iter()
            .copied()
            .filter(|&d| db.exists(d))
            .take(2)
            .collect()
    });
    let (doc_a, doc_b) = match live.as_slice() {
        [a, b] => (*a, *b),
        [a] => (*a, *a),
        _ => return Ok(()),
    };
    let section = corpus.schema.section;
    let pinned = cdb.begin_read();
    let before = pinned.components_of(doc_a)?.len();
    std::thread::scope(|s| {
        let writer = |doc| {
            let cdb = cdb.clone();
            s.spawn(move || cdb.run_write(|t| t.make(section, vec![], vec![(doc, "Sections")])))
        };
        let a = writer(doc_a);
        let b = writer(doc_b);
        a.join().expect("writer thread panicked")?;
        b.join().expect("writer thread panicked")?;
        Ok::<(), corion::DbError>(())
    })?;
    // The pinned snapshot still sees the pre-write component count; the
    // latest state sees one more.
    assert_eq!(pinned.components_of(doc_a)?.len(), before);
    drop(pinned);
    cdb.vacuum();
    Ok(())
}

fn print_human(snapshot: &corion::MetricsSnapshot) {
    println!("\ncounters:");
    for (name, value) in &snapshot.counters {
        println!("  {name:<45} {value}");
    }
    println!("\ngauges:");
    for (name, value) in &snapshot.gauges {
        println!("  {name:<45} {value}");
    }
    println!("\nhistograms (count / mean):");
    for (name, h) in &snapshot.histograms {
        let mean = h.mean().unwrap_or(0.0);
        println!("  {name:<45} {:>8} / {mean:.0} ns", h.count);
    }
}
