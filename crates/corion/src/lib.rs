//! # corion
//!
//! A from-scratch Rust reproduction of **“Composite Objects Revisited”**
//! (Won Kim, Elisa Bertino, Jorge F. Garza — SIGMOD 1989): an ORION-style
//! object-oriented database engine whose distinguishing feature is direct
//! system support for **composite objects** — sets of objects related by
//! the IS-PART-OF relationship — as a unit of semantic integrity, physical
//! clustering, versioning, authorization, and locking.
//!
//! This facade crate re-exports the whole public API:
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`core`] | §2–§4 | the object model, five reference types, topology & deletion rules, operations, schema evolution |
//! | [`storage`] | §2.3/§2.4 | slotted pages, buffer pool, segments, clustering |
//! | [`versions`] | §5 | versions of composite objects (CV rules, ref-counts) |
//! | [`authz`] | §6 | composite objects as a unit of authorization |
//! | [`lock`] | §7 | composite objects as a unit of locking (ISO…SIXOS) |
//! | [`concurrent`] | §7 | concurrent transactions: MVCC snapshots + composite lock protocol |
//! | [`lang`] | §2.3/§3 | the ORION message syntax as an s-expression language |
//! | [`workload`] | §1, §2.3 | vehicle / document / random-DAG generators |
//!
//! ```
//! use corion::{Database, ClassBuilder, CompositeSpec, Domain, Value};
//!
//! let mut db = Database::new();
//! let section = db.define_class(ClassBuilder::new("Section")).unwrap();
//! let document = db
//!     .define_class(ClassBuilder::new("Document").attr_composite(
//!         "Sections",
//!         Domain::SetOf(Box::new(Domain::Class(section))),
//!         CompositeSpec { exclusive: false, dependent: true },
//!     ))
//!     .unwrap();
//! // Bottom-up creation: the section exists before any document.
//! let s = db.make(section, vec![], vec![]).unwrap();
//! let d1 = db.make(document, vec![("Sections", Value::Set(vec![Value::Ref(s)]))], vec![]).unwrap();
//! let d2 = db.make(document, vec![("Sections", Value::Set(vec![Value::Ref(s)]))], vec![]).unwrap();
//! // The identical section is part of two different documents (§1).
//! assert!(db.component_of(s, d1).unwrap() && db.component_of(s, d2).unwrap());
//! ```

pub use corion_authz as authz;
pub use corion_concurrent as concurrent;
pub use corion_core as core;
pub use corion_lang as lang;
pub use corion_lock as lock;
pub use corion_obs as obs;
pub use corion_storage as storage;
pub use corion_versions as versions;
pub use corion_workload as workload;

pub use corion_authz::{AuthObject, AuthStore, AuthType, Authorization, Decision, UserId};
pub use corion_concurrent::{ConcurrentDb, Snapshot, WriteTxn};
pub use corion_core::composite::Filter;
pub use corion_core::query;
pub use corion_core::query::{Predicate, Query};
pub use corion_core::Overlay;
pub use corion_core::{
    AttributeDef, Class, ClassBuilder, ClassId, CompositeSpec, Database, DbConfig, DbError,
    DbResult, Domain, HealthState, IntegrityReport, MakeSpec, MetricsSnapshot, Object, Oid,
    OrphanPolicy, ParentRef, RefKind, Registry, RepairReport, ReverseRef, ScrubReport,
    TraversalCacheStats, Value,
};
pub use corion_lang::Interpreter;
pub use corion_lock::{
    CompositeLockSet, LockIntent, LockManager, LockMode, Lockable, Transaction, TxnId,
};
pub use corion_storage::CommitPolicy;
pub use corion_versions::VersionManager;
