//! # corion-lang
//!
//! The ORION message syntax of the paper, §2.3 and §3, as an executable
//! s-expression language over the CORION engine:
//!
//! ```text
//! (make-class 'Vehicle :superclasses nil
//!   :attributes '((Manufacturer :domain String)
//!                 (Body :domain AutoBody
//!                       :composite true :exclusive true :dependent nil)))
//! (define v1 (make Vehicle :Manufacturer "MCC"))
//! (components-of v1)
//! ```
//!
//! * [`lexer`] / [`parser`] — s-expression reader (symbols, keywords,
//!   numbers, strings, `'quote`, `;` comments);
//! * [`eval`] — the interpreter binding the messages of §2.3 (`make-class`,
//!   `make` with `:parent`) and §3 (`components-of`, `parents-of`,
//!   `ancestors-of`, the predicates) plus a few conveniences (`define`,
//!   `get`, `set!`, `delete`) to the engine.

//! ```
//! use corion_lang::{Interpreter, LangValue};
//!
//! let mut orion = Interpreter::new();
//! orion.eval_str("
//!     (make-class 'AutoBody)
//!     (make-class 'Vehicle
//!       :attributes ((Body :domain AutoBody :composite t :exclusive t :dependent nil)))
//!     (define b (make AutoBody))
//!     (define v (make Vehicle :Body b))
//! ").unwrap();
//! assert_eq!(orion.eval_str("(child-of b v)").unwrap(), LangValue::T);
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::SExpr;
pub use eval::{EvalError, Interpreter, LangValue};
pub use parser::{parse, parse_all, ParseError};
