//! S-expression AST.

use std::fmt;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// A bare symbol: `Vehicle`, `make-class`, `t`, `nil`.
    Sym(String),
    /// A keyword: `:domain`, `:composite`.
    Kw(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A parenthesised list.
    List(Vec<SExpr>),
    /// A quoted expression: `'Vehicle`, `'((a :domain X))`.
    Quote(Box<SExpr>),
}

impl SExpr {
    /// The symbol's name, if this is a symbol (quoted or not).
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            SExpr::Sym(s) => Some(s),
            SExpr::Quote(inner) => inner.as_sym(),
            _ => None,
        }
    }

    /// The list's items, if this is a list (quoted or not).
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(items) => Some(items),
            SExpr::Quote(inner) => inner.as_list(),
            _ => None,
        }
    }

    /// True for the symbol `nil` (Lisp false/empty).
    pub fn is_nil(&self) -> bool {
        matches!(self.as_sym(), Some("nil"))
    }

    /// True for the symbol `t` or `true`.
    pub fn is_true(&self) -> bool {
        matches!(self.as_sym(), Some("t" | "true"))
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Sym(s) => write!(f, "{s}"),
            SExpr::Kw(s) => write!(f, ":{s}"),
            SExpr::Int(i) => write!(f, "{i}"),
            SExpr::Float(x) => write!(f, "{x}"),
            SExpr::Str(s) => write!(f, "{s:?}"),
            SExpr::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            SExpr::Quote(inner) => write!(f, "'{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_see_through_quotes() {
        let q = SExpr::Quote(Box::new(SExpr::Sym("Vehicle".into())));
        assert_eq!(q.as_sym(), Some("Vehicle"));
        let ql = SExpr::Quote(Box::new(SExpr::List(vec![SExpr::Int(1)])));
        assert_eq!(ql.as_list().map(|l| l.len()), Some(1));
        assert!(SExpr::Sym("nil".into()).is_nil());
        assert!(SExpr::Sym("t".into()).is_true());
        assert!(!SExpr::Int(0).is_true());
    }

    #[test]
    fn display_round_shape() {
        let e = SExpr::List(vec![
            SExpr::Sym("make".into()),
            SExpr::Kw("domain".into()),
            SExpr::Quote(Box::new(SExpr::Sym("X".into()))),
            SExpr::Str("hi".into()),
        ]);
        assert_eq!(e.to_string(), "(make :domain 'X \"hi\")");
    }
}
