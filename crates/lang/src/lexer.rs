//! Tokeniser for the ORION message syntax.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `'`
    Quote,
    /// `:keyword`
    Keyword(String),
    /// A bare symbol.
    Symbol(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Quote => write!(f, "'"),
            Token::Keyword(k) => write!(f, ":{k}"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Lexer errors, with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A string literal was not closed before end of input.
    UnterminatedString {
        /// Offset of the opening quote.
        start: usize,
    },
    /// An unexpected character.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Its byte offset.
        at: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedString { start } => {
                write!(f, "unterminated string starting at byte {start}")
            }
            LexError::UnexpectedChar { ch, at } => {
                write!(f, "unexpected character {ch:?} at byte {at}")
            }
        }
    }
}

impl std::error::Error for LexError {}

fn is_symbol_char(c: char) -> bool {
    c.is_alphanumeric() || "-_!?*+/<>=.".contains(c)
}

/// Tokenises `input`; `;` starts a comment to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (at, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ';' => {
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '\'' => {
                out.push(Token::Quote);
                i += 1;
            }
            '"' => {
                let start = at;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError::UnterminatedString { start });
                    }
                    let (_, c) = chars[i];
                    i += 1;
                    match c {
                        '"' => break,
                        '\\' if i < chars.len() => {
                            let (_, esc) = chars[i];
                            i += 1;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => s.push(other),
                    }
                }
                out.push(Token::Str(s));
            }
            ':' => {
                i += 1;
                let mut s = String::new();
                while i < chars.len() && is_symbol_char(chars[i].1) {
                    s.push(chars[i].1);
                    i += 1;
                }
                if s.is_empty() {
                    return Err(LexError::UnexpectedChar { ch: ':', at });
                }
                out.push(Token::Keyword(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].1.is_ascii_digit()) =>
            {
                let mut s = String::new();
                s.push(c);
                i += 1;
                let mut is_float = false;
                while i < chars.len() && (chars[i].1.is_ascii_digit() || chars[i].1 == '.') {
                    if chars[i].1 == '.' {
                        is_float = true;
                    }
                    s.push(chars[i].1);
                    i += 1;
                }
                if is_float {
                    out.push(Token::Float(
                        s.parse()
                            .map_err(|_| LexError::UnexpectedChar { ch: '.', at })?,
                    ));
                } else {
                    out.push(Token::Int(
                        s.parse()
                            .map_err(|_| LexError::UnexpectedChar { ch: c, at })?,
                    ));
                }
            }
            c if is_symbol_char(c) => {
                let mut s = String::new();
                while i < chars.len() && is_symbol_char(chars[i].1) {
                    s.push(chars[i].1);
                    i += 1;
                }
                out.push(Token::Symbol(s));
            }
            other => return Err(LexError::UnexpectedChar { ch: other, at }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_make_class_shape() {
        let toks = lex("(make-class 'Vehicle :superclasses nil)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Symbol("make-class".into()),
                Token::Quote,
                Token::Symbol("Vehicle".into()),
                Token::Keyword("superclasses".into()),
                Token::Symbol("nil".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn numbers_strings_comments() {
        let toks = lex("42 -7 3.5 \"hi \\\"x\\\"\" ; comment\n next").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Str("hi \"x\"".into()),
                Token::Symbol("next".into()),
            ]
        );
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(
            lex("\"open"),
            Err(LexError::UnterminatedString { start: 0 })
        ));
        assert!(matches!(
            lex("a § b"),
            Err(LexError::UnexpectedChar { ch: '§', .. })
        ));
        assert!(matches!(
            lex(": x"),
            Err(LexError::UnexpectedChar { ch: ':', .. })
        ));
    }

    #[test]
    fn hyphenated_and_predicate_symbols() {
        let toks = lex("components-of exclusive-compositep set!").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[2], Token::Symbol("set!".into()));
    }
}
