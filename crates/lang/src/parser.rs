//! Parser: tokens → [`SExpr`].

use std::fmt;

use crate::ast::SExpr;
use crate::lexer::{lex, LexError, Token};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenisation failed.
    Lex(LexError),
    /// Input ended inside a list or after a quote.
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedClose,
    /// Extra tokens after a complete expression (single-expression parse).
    TrailingTokens,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseError::UnbalancedClose => write!(f, "unbalanced ')'"),
            ParseError::TrailingTokens => write!(f, "trailing tokens after expression"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<SExpr, ParseError> {
        match self.next().ok_or(ParseError::UnexpectedEof)? {
            Token::LParen => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        Some(Token::RParen) => {
                            self.pos += 1;
                            return Ok(SExpr::List(items));
                        }
                        Some(_) => items.push(self.expr()?),
                        None => return Err(ParseError::UnexpectedEof),
                    }
                }
            }
            Token::RParen => Err(ParseError::UnbalancedClose),
            Token::Quote => Ok(SExpr::Quote(Box::new(self.expr()?))),
            Token::Keyword(k) => Ok(SExpr::Kw(k)),
            Token::Symbol(s) => Ok(SExpr::Sym(s)),
            Token::Int(i) => Ok(SExpr::Int(i)),
            Token::Float(x) => Ok(SExpr::Float(x)),
            Token::Str(s) => Ok(SExpr::Str(s)),
        }
    }
}

/// Parses exactly one expression.
pub fn parse(input: &str) -> Result<SExpr, ParseError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    let e = p.expr()?;
    if p.peek().is_some() {
        return Err(ParseError::TrailingTokens);
    }
    Ok(e)
}

/// Parses a sequence of expressions (a program / REPL buffer).
pub fn parse_all(input: &str) -> Result<Vec<SExpr>, ParseError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.expr()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_quoted_structure() {
        let e = parse("(make-class 'Section :attributes '((Content :domain (set-of Paragraph))))")
            .unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items[0].as_sym(), Some("make-class"));
        assert_eq!(items[1].as_sym(), Some("Section"));
        let attrs = items[3].as_list().unwrap();
        let content = attrs[0].as_list().unwrap();
        assert_eq!(content[0].as_sym(), Some("Content"));
        let dom = content[2].as_list().unwrap();
        assert_eq!(dom[0].as_sym(), Some("set-of"));
    }

    #[test]
    fn parse_all_handles_programs() {
        let prog = parse_all("(a 1) ; mid comment\n(b 2.5 \"s\")").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse("(a"), Err(ParseError::UnexpectedEof)));
        assert!(matches!(parse(")"), Err(ParseError::UnbalancedClose)));
        assert!(matches!(parse("a b"), Err(ParseError::TrailingTokens)));
        assert!(matches!(parse("'"), Err(ParseError::UnexpectedEof)));
        assert!(matches!(parse("(\"x"), Err(ParseError::Lex(_))));
    }

    #[test]
    fn roundtrips_display() {
        let src = "(make Vehicle :Body b1 :Weight 42)";
        let e = parse(src).unwrap();
        assert_eq!(e.to_string(), src);
    }
}
