//! The message interpreter.
//!
//! Binds the ORION messages of §2.3 and §3 to the CORION engine (and the §5
//! version operations to the version manager). Object-valued results are
//! bound into a symbol environment with `define`, mirroring how the paper's
//! examples name instances (`Vi`, `Instance[j]`, …).

use std::collections::HashMap;
use std::fmt;

use corion_core::composite::Filter;
use corion_core::{
    AttributeDef, ClassBuilder, ClassId, CompositeSpec, Database, DbError, Domain, Oid, Value,
};
use corion_versions::{VersionError, VersionManager};

use crate::ast::SExpr;
use crate::parser::{parse_all, ParseError};

/// A value in the message language.
#[derive(Debug, Clone, PartialEq)]
pub enum LangValue {
    /// `nil` — false / absent.
    Nil,
    /// `t` — true.
    T,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// An object reference.
    Obj(Oid),
    /// A class.
    Class(ClassId),
    /// A list of values (also the result of set-valued attributes).
    List(Vec<LangValue>),
}

impl fmt::Display for LangValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangValue::Nil => write!(f, "nil"),
            LangValue::T => write!(f, "t"),
            LangValue::Int(i) => write!(f, "{i}"),
            LangValue::Float(x) => write!(f, "{x}"),
            LangValue::Str(s) => write!(f, "{s:?}"),
            LangValue::Obj(o) => write!(f, "#<{o}>"),
            LangValue::Class(c) => write!(f, "#<class {c}>"),
            LangValue::List(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl LangValue {
    fn truthy(b: bool) -> LangValue {
        if b {
            LangValue::T
        } else {
            LangValue::Nil
        }
    }
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Parse failure in `eval_str`.
    Parse(ParseError),
    /// Engine error.
    Db(DbError),
    /// Version-layer error.
    Version(VersionError),
    /// An unbound symbol was referenced.
    Unbound(String),
    /// A form was syntactically malformed.
    BadForm(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
            EvalError::Db(e) => write!(f, "{e}"),
            EvalError::Version(e) => write!(f, "{e}"),
            EvalError::Unbound(s) => write!(f, "unbound symbol {s}"),
            EvalError::BadForm(m) => write!(f, "bad form: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}
impl From<DbError> for EvalError {
    fn from(e: DbError) -> Self {
        EvalError::Db(e)
    }
}
impl From<VersionError> for EvalError {
    fn from(e: VersionError) -> Self {
        EvalError::Version(e)
    }
}

type R = Result<LangValue, EvalError>;

/// The interpreter: a version manager (wrapping the engine) plus a symbol
/// environment.
pub struct Interpreter {
    vm: VersionManager,
    env: HashMap<String, LangValue>,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter over a fresh database.
    pub fn new() -> Self {
        Interpreter {
            vm: VersionManager::new(Database::new()),
            env: HashMap::new(),
        }
    }

    /// Creates an interpreter over an existing database.
    pub fn with_db(db: Database) -> Self {
        Interpreter {
            vm: VersionManager::new(db),
            env: HashMap::new(),
        }
    }

    /// The underlying engine.
    pub fn db(&self) -> &Database {
        self.vm.db()
    }

    /// Mutable engine access.
    pub fn db_mut(&mut self) -> &mut Database {
        self.vm.db_mut()
    }

    /// Evaluates every expression in `src`, returning the last result.
    pub fn eval_str(&mut self, src: &str) -> R {
        let exprs = parse_all(src)?;
        let mut last = LangValue::Nil;
        for e in exprs {
            last = self.eval(&e)?;
        }
        Ok(last)
    }

    /// Evaluates one expression.
    pub fn eval(&mut self, expr: &SExpr) -> R {
        match expr {
            SExpr::Int(i) => Ok(LangValue::Int(*i)),
            SExpr::Float(x) => Ok(LangValue::Float(*x)),
            SExpr::Str(s) => Ok(LangValue::Str(s.clone())),
            SExpr::Kw(k) => Err(EvalError::BadForm(format!(
                "keyword :{k} outside a message"
            ))),
            SExpr::Quote(inner) => self.eval_quoted(inner),
            SExpr::Sym(s) => self.lookup(s),
            SExpr::List(items) => self.eval_form(items),
        }
    }

    fn eval_quoted(&mut self, inner: &SExpr) -> R {
        // Quoted symbols evaluate to class handles when a class of that name
        // exists, else to strings (symbols-as-data).
        match inner {
            SExpr::Sym(s) => {
                if let Ok(c) = self.vm.db().class_by_name(s) {
                    Ok(LangValue::Class(c))
                } else {
                    Ok(LangValue::Str(s.clone()))
                }
            }
            other => Err(EvalError::BadForm(format!(
                "cannot evaluate quoted {other}"
            ))),
        }
    }

    fn lookup(&mut self, s: &str) -> R {
        match s {
            "nil" => return Ok(LangValue::Nil),
            "t" | "true" => return Ok(LangValue::T),
            _ => {}
        }
        if let Some(v) = self.env.get(s) {
            return Ok(v.clone());
        }
        if let Ok(c) = self.vm.db().class_by_name(s) {
            return Ok(LangValue::Class(c));
        }
        Err(EvalError::Unbound(s.into()))
    }

    fn eval_form(&mut self, items: &[SExpr]) -> R {
        let head = items
            .first()
            .and_then(SExpr::as_sym)
            .ok_or_else(|| EvalError::BadForm("empty or non-symbol form".into()))?;
        let args = &items[1..];
        match head {
            "define" => self.f_define(args),
            "make-class" => self.f_make_class(args),
            "make" => self.f_make(args),
            "get" => self.f_get(args),
            "set!" => self.f_set(args),
            "delete" => self.f_delete(args),
            "instances-of" => self.f_instances_of(args),
            "make-component" => self.f_make_component(args),
            "remove-component" => self.f_remove_component(args),
            "components-of" => self.f_traverse(args, Traverse::Components),
            "parents-of" => self.f_traverse(args, Traverse::Parents),
            "ancestors-of" => self.f_traverse(args, Traverse::Ancestors),
            "compositep" => self.f_classpred(args, ClassPred::Composite),
            "exclusive-compositep" => self.f_classpred(args, ClassPred::Exclusive),
            "shared-compositep" => self.f_classpred(args, ClassPred::Shared),
            "dependent-compositep" => self.f_classpred(args, ClassPred::Dependent),
            "component-of" => self.f_instpred(args, InstPred::Component),
            "child-of" => self.f_instpred(args, InstPred::Child),
            "exclusive-component-of" => self.f_instpred(args, InstPred::ExclusiveComponent),
            "shared-component-of" => self.f_instpred(args, InstPred::SharedComponent),
            "select" => self.f_select(args),
            "describe" => self.f_describe(args),
            "save-database" => self.f_save_database(args),
            "verify-integrity" => self.f_verify(args),
            "drop-attribute" => self.f_drop_attribute(args),
            "add-attribute" => self.f_add_attribute(args),
            "add-superclass" => self.f_superclass_edge(args, true),
            "remove-superclass" => self.f_superclass_edge(args, false),
            "drop-class" => self.f_drop_class(args),
            "change-attribute-type" => self.f_change_attribute_type(args),
            "create-versioned" => self.f_create_versioned(args),
            "derive-version" => self.f_derive(args),
            "default-version" => self.f_default_version(args),
            "set-default-version" => self.f_set_default_version(args),
            "resolve" => self.f_resolve(args),
            "set" | "list" => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LangValue::List(vals))
            }
            other => Err(EvalError::BadForm(format!("unknown message {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    fn want_obj(&mut self, e: &SExpr) -> Result<Oid, EvalError> {
        match self.eval(e)? {
            LangValue::Obj(o) => Ok(o),
            other => Err(EvalError::BadForm(format!(
                "expected an object, got {other}"
            ))),
        }
    }

    fn want_class(&mut self, e: &SExpr) -> Result<ClassId, EvalError> {
        match self.eval(e)? {
            // Re-validate: the class may have been dropped since the symbol
            // was bound.
            LangValue::Class(c) => {
                self.vm.db().class(c)?;
                Ok(c)
            }
            LangValue::Str(s) => Ok(self.vm.db().class_by_name(&s)?),
            other => Err(EvalError::BadForm(format!("expected a class, got {other}"))),
        }
    }

    fn attr_name(e: &SExpr) -> Result<String, EvalError> {
        e.as_sym()
            .map(str::to_owned)
            .or_else(|| match e {
                SExpr::Str(s) => Some(s.clone()),
                SExpr::Kw(k) => Some(k.clone()),
                _ => None,
            })
            .ok_or_else(|| EvalError::BadForm(format!("expected an attribute name, got {e}")))
    }

    fn lang_to_db(&mut self, v: LangValue) -> Result<Value, EvalError> {
        Ok(match v {
            LangValue::Nil => Value::Null,
            LangValue::T => Value::Bool(true),
            LangValue::Int(i) => Value::Int(i),
            LangValue::Float(x) => Value::Float(x),
            LangValue::Str(s) => Value::Str(s),
            LangValue::Obj(o) => Value::Ref(o),
            LangValue::Class(c) => {
                return Err(EvalError::BadForm(format!(
                    "class {c} is not an attribute value"
                )))
            }
            LangValue::List(items) => Value::Set(
                items
                    .into_iter()
                    .map(|i| self.lang_to_db(i))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        })
    }

    fn from_db_value(v: Value) -> LangValue {
        match v {
            Value::Null => LangValue::Nil,
            Value::Int(i) => LangValue::Int(i),
            Value::Float(x) => LangValue::Float(x),
            Value::Bool(b) => LangValue::truthy(b),
            Value::Str(s) => LangValue::Str(s),
            Value::Ref(o) => LangValue::Obj(o),
            Value::Set(items) => {
                LangValue::List(items.into_iter().map(Self::from_db_value).collect())
            }
        }
    }

    fn parse_domain(&mut self, e: &SExpr) -> Result<Domain, EvalError> {
        if let Some(name) = e.as_sym() {
            return Ok(match name {
                "Integer" | "integer" => Domain::Integer,
                "Float" | "float" => Domain::Float,
                "String" | "string" => Domain::String,
                "Boolean" | "boolean" => Domain::Boolean,
                "Any" | "any" => Domain::Any,
                other => Domain::Class(self.vm.db().class_by_name(other)?),
            });
        }
        if let Some(list) = e.as_list() {
            if list.len() == 2 && list[0].as_sym() == Some("set-of") {
                return Ok(Domain::SetOf(Box::new(self.parse_domain(&list[1])?)));
            }
        }
        Err(EvalError::BadForm(format!("bad domain {e}")))
    }

    // ------------------------------------------------------------------
    // forms
    // ------------------------------------------------------------------

    fn f_define(&mut self, args: &[SExpr]) -> R {
        let [name, value] = args else {
            return Err(EvalError::BadForm("(define name expr)".into()));
        };
        let name = name
            .as_sym()
            .ok_or_else(|| EvalError::BadForm("define needs a symbol".into()))?
            .to_owned();
        let v = self.eval(value)?;
        self.env.insert(name, v.clone());
        Ok(v)
    }

    /// `(make-class 'Name [:superclasses (A B)|nil] [:versionable t]
    ///   [:attributes '((AttrName :domain D :composite t :exclusive nil
    ///                   :dependent t :init v) ...)])`
    fn f_make_class(&mut self, args: &[SExpr]) -> R {
        let name = args
            .first()
            .and_then(SExpr::as_sym)
            .ok_or_else(|| EvalError::BadForm("(make-class 'Name ...)".into()))?
            .to_owned();
        let mut builder = ClassBuilder::new(&name);
        let mut i = 1;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword, got {}",
                    args[i]
                )));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            match kw.as_str() {
                "superclasses" => {
                    if !value.is_nil() {
                        for sup in value.as_list().ok_or_else(|| {
                            EvalError::BadForm(":superclasses needs a list".into())
                        })? {
                            let sup_name = sup.as_sym().ok_or_else(|| {
                                EvalError::BadForm("superclass must be a symbol".into())
                            })?;
                            builder = builder.superclass(self.vm.db().class_by_name(sup_name)?);
                        }
                    }
                }
                "versionable" => {
                    if value.is_true() {
                        builder = builder.versionable();
                    }
                }
                "attributes" | "attribute" => {
                    let attrs = value
                        .as_list()
                        .ok_or_else(|| EvalError::BadForm(":attributes needs a list".into()))?;
                    for spec in attrs {
                        builder = builder.attr_def(self.parse_attr_spec(spec)?);
                    }
                }
                other => return Err(EvalError::BadForm(format!("unknown keyword :{other}"))),
            }
            i += 2;
        }
        let id = self.vm.db_mut().define_class(builder)?;
        self.env.insert(name, LangValue::Class(id));
        Ok(LangValue::Class(id))
    }

    fn parse_attr_spec(&mut self, spec: &SExpr) -> Result<AttributeDef, EvalError> {
        let list = spec.as_list().ok_or_else(|| {
            EvalError::BadForm(format!("attribute spec must be a list, got {spec}"))
        })?;
        let name = list
            .first()
            .and_then(SExpr::as_sym)
            .ok_or_else(|| EvalError::BadForm("attribute spec needs a name".into()))?
            .to_owned();
        let mut domain = Domain::Any;
        let mut composite = false;
        // §2.3: "The default value for both the exclusive and dependent
        // keywords is True."
        let mut exclusive = true;
        let mut dependent = true;
        let mut init = Value::Null;
        let mut i = 1;
        while i < list.len() {
            let SExpr::Kw(kw) = &list[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword in attribute spec, got {}",
                    list[i]
                )));
            };
            let value = list
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            match kw.as_str() {
                "domain" => domain = self.parse_domain(value)?,
                "composite" => composite = value.is_true(),
                "exclusive" => exclusive = value.is_true(),
                "dependent" => dependent = value.is_true(),
                "init" => {
                    let v = self.eval(value)?;
                    init = self.lang_to_db(v)?;
                }
                other => return Err(EvalError::BadForm(format!("unknown keyword :{other}"))),
            }
            i += 2;
        }
        let mut def = if composite {
            AttributeDef::composite(
                name,
                domain,
                CompositeSpec {
                    exclusive,
                    dependent,
                },
            )
        } else {
            AttributeDef::plain(name, domain)
        };
        def.init = init;
        Ok(def)
    }

    /// `(make Class [:parent ((p attr) ...)] :Attr value ...)`
    fn f_make(&mut self, args: &[SExpr]) -> R {
        let class = self.want_class(
            args.first()
                .ok_or_else(|| EvalError::BadForm("(make Class ...)".into()))?,
        )?;
        let mut parents: Vec<(Oid, String)> = Vec::new();
        let mut values: Vec<(String, Value)> = Vec::new();
        let mut i = 1;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword, got {}",
                    args[i]
                )));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            if kw == "parent" {
                let pairs = value
                    .as_list()
                    .ok_or_else(|| EvalError::BadForm(":parent needs a list of (obj attr)".into()))?
                    .to_vec();
                for pair in pairs {
                    let pl = pair.as_list().ok_or_else(|| {
                        EvalError::BadForm(":parent entries are (obj attr)".into())
                    })?;
                    let [pobj, pattr] = pl else {
                        return Err(EvalError::BadForm(":parent entries are (obj attr)".into()));
                    };
                    let o = self.want_obj(pobj)?;
                    parents.push((o, Self::attr_name(pattr)?));
                }
            } else {
                let v = self.eval(value)?;
                values.push((kw.clone(), self.lang_to_db(v)?));
            }
            i += 2;
        }
        let value_refs: Vec<(&str, Value)> = values
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let parent_refs: Vec<(Oid, &str)> = parents.iter().map(|(o, a)| (*o, a.as_str())).collect();
        let oid = self.vm.db_mut().make(class, value_refs, parent_refs)?;
        Ok(LangValue::Obj(oid))
    }

    fn f_get(&mut self, args: &[SExpr]) -> R {
        let [obj, attr] = args else {
            return Err(EvalError::BadForm("(get obj attr)".into()));
        };
        let o = self.want_obj(obj)?;
        let a = Self::attr_name(attr)?;
        Ok(Self::from_db_value(self.vm.db_mut().get_attr(o, &a)?))
    }

    fn f_set(&mut self, args: &[SExpr]) -> R {
        let [obj, attr, value] = args else {
            return Err(EvalError::BadForm("(set! obj attr value)".into()));
        };
        let o = self.want_obj(obj)?;
        let a = Self::attr_name(attr)?;
        let v = self.eval(value)?;
        let dv = self.lang_to_db(v)?;
        self.vm.db_mut().set_attr(o, &a, dv)?;
        Ok(LangValue::Obj(o))
    }

    fn f_delete(&mut self, args: &[SExpr]) -> R {
        let [obj] = args else {
            return Err(EvalError::BadForm("(delete obj)".into()));
        };
        let o = self.want_obj(obj)?;
        let deleted = self.vm.db_mut().delete(o)?;
        Ok(LangValue::List(
            deleted.into_iter().map(LangValue::Obj).collect(),
        ))
    }

    fn f_instances_of(&mut self, args: &[SExpr]) -> R {
        let class = self.want_class(
            args.first()
                .ok_or_else(|| EvalError::BadForm("(instances-of Class)".into()))?,
        )?;
        let deep = args.get(1).map(|e| e.is_true()).unwrap_or(true);
        Ok(LangValue::List(
            self.vm
                .db()
                .instances_of(class, deep)
                .into_iter()
                .map(LangValue::Obj)
                .collect(),
        ))
    }

    fn f_make_component(&mut self, args: &[SExpr]) -> R {
        let [child, parent, attr] = args else {
            return Err(EvalError::BadForm(
                "(make-component child parent attr)".into(),
            ));
        };
        let c = self.want_obj(child)?;
        let p = self.want_obj(parent)?;
        let a = Self::attr_name(attr)?;
        self.vm.db_mut().make_component(c, p, &a)?;
        Ok(LangValue::T)
    }

    fn f_remove_component(&mut self, args: &[SExpr]) -> R {
        let [child, parent, attr] = args else {
            return Err(EvalError::BadForm(
                "(remove-component child parent attr)".into(),
            ));
        };
        let c = self.want_obj(child)?;
        let p = self.want_obj(parent)?;
        let a = Self::attr_name(attr)?;
        self.vm.db_mut().remove_component(c, p, &a)?;
        Ok(LangValue::T)
    }

    fn f_traverse(&mut self, args: &[SExpr], which: Traverse) -> R {
        let obj = self.want_obj(
            args.first()
                .ok_or_else(|| EvalError::BadForm("traversal needs an object".into()))?,
        )?;
        let mut filter = Filter::all();
        let mut i = 1;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword, got {}",
                    args[i]
                )));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            match kw.as_str() {
                "classes" => {
                    let classes = value
                        .as_list()
                        .ok_or_else(|| EvalError::BadForm(":classes needs a list".into()))?
                        .iter()
                        .map(|e| self.want_class(e))
                        .collect::<Result<Vec<_>, _>>()?;
                    filter = filter.classes(classes);
                }
                "exclusive" => {
                    if value.is_true() {
                        filter = filter.exclusive();
                    }
                }
                "shared" => {
                    if value.is_true() {
                        filter = filter.shared();
                    }
                }
                "level" => {
                    if let SExpr::Int(n) = value {
                        filter = filter.level(*n as usize);
                    } else {
                        return Err(EvalError::BadForm(":level needs an integer".into()));
                    }
                }
                other => return Err(EvalError::BadForm(format!("unknown keyword :{other}"))),
            }
            i += 2;
        }
        let db = self.vm.db_mut();
        let out = match which {
            Traverse::Components => db.components_of(obj, &filter)?,
            Traverse::Parents => db.parents_of(obj, &filter)?,
            Traverse::Ancestors => db.ancestors_of(obj, &filter)?,
        };
        Ok(LangValue::List(
            out.into_iter().map(LangValue::Obj).collect(),
        ))
    }

    fn f_classpred(&mut self, args: &[SExpr], which: ClassPred) -> R {
        let class = self.want_class(
            args.first()
                .ok_or_else(|| EvalError::BadForm("predicate needs a class".into()))?,
        )?;
        let attr = args.get(1).map(Self::attr_name).transpose()?;
        let db = self.vm.db();
        let b = match which {
            ClassPred::Composite => db.compositep(class, attr.as_deref())?,
            ClassPred::Exclusive => db.exclusive_compositep(class, attr.as_deref())?,
            ClassPred::Shared => db.shared_compositep(class, attr.as_deref())?,
            ClassPred::Dependent => db.dependent_compositep(class, attr.as_deref())?,
        };
        Ok(LangValue::truthy(b))
    }

    fn f_instpred(&mut self, args: &[SExpr], which: InstPred) -> R {
        let [o1, o2] = args else {
            return Err(EvalError::BadForm(
                "instance predicate needs two objects".into(),
            ));
        };
        let a = self.want_obj(o1)?;
        let b = self.want_obj(o2)?;
        let db = self.vm.db_mut();
        let r = match which {
            InstPred::Component => db.component_of(a, b)?,
            InstPred::Child => db.child_of(a, b)?,
            InstPred::ExclusiveComponent => db.exclusive_component_of(a, b)?,
            InstPred::SharedComponent => db.shared_component_of(a, b)?,
        };
        Ok(LangValue::truthy(r))
    }

    /// `(select Class [:where pred] [:limit n] [:shallow t])` — associative
    /// queries over a class extension. Predicates:
    /// `(= attr v)`, `(!= attr v)`, `(< attr v)`, `(> attr v)`,
    /// `(references attr obj)`, `(component-of obj)`,
    /// `(has-composite-parent)`, `(has-component-of Class)`,
    /// `(and p ...)`, `(or p ...)`, `(not p)`.
    fn f_select(&mut self, args: &[SExpr]) -> R {
        use corion_core::query::Query;
        let class = self.want_class(
            args.first()
                .ok_or_else(|| EvalError::BadForm("(select Class [:where pred] ...)".into()))?,
        )?;
        let mut q = Query::over(class);
        let mut i = 1;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword, got {}",
                    args[i]
                )));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            match kw.as_str() {
                "where" => q = q.filter(self.parse_predicate(value)?),
                "limit" => {
                    let SExpr::Int(n) = value else {
                        return Err(EvalError::BadForm(":limit needs an integer".into()));
                    };
                    q = q.limit(*n as usize);
                }
                "shallow" => {
                    if value.is_true() {
                        q = q.shallow();
                    }
                }
                other => return Err(EvalError::BadForm(format!("unknown keyword :{other}"))),
            }
            i += 2;
        }
        let out = q.run(self.vm.db_mut())?;
        Ok(LangValue::List(
            out.into_iter().map(LangValue::Obj).collect(),
        ))
    }

    fn parse_predicate(&mut self, e: &SExpr) -> Result<corion_core::query::Predicate, EvalError> {
        use corion_core::query::Predicate as P;
        let list = e
            .as_list()
            .ok_or_else(|| EvalError::BadForm(format!("predicate must be a list, got {e}")))?;
        let head = list
            .first()
            .and_then(SExpr::as_sym)
            .ok_or_else(|| EvalError::BadForm("predicate needs an operator".into()))?;
        let rest = &list[1..];
        Ok(match head {
            "=" | "!=" | "<" | ">" => {
                let [attr, value] = rest else {
                    return Err(EvalError::BadForm(format!("({head} attr value)")));
                };
                let attr = Self::attr_name(attr)?;
                let v = self.eval(value)?;
                let v = self.lang_to_db(v)?;
                match head {
                    "=" => P::eq(attr, v),
                    "!=" => P::ne(attr, v),
                    "<" => P::lt(attr, v),
                    _ => P::gt(attr, v),
                }
            }
            "references" => {
                let [attr, obj] = rest else {
                    return Err(EvalError::BadForm("(references attr obj)".into()));
                };
                P::References(Self::attr_name(attr)?, self.want_obj(obj)?)
            }
            "component-of" => {
                let [obj] = rest else {
                    return Err(EvalError::BadForm("(component-of obj)".into()));
                };
                P::ComponentOf(self.want_obj(obj)?)
            }
            "has-composite-parent" => P::HasCompositeParent,
            "has-component-of" => {
                let [class] = rest else {
                    return Err(EvalError::BadForm("(has-component-of Class)".into()));
                };
                P::HasComponentOfClass(self.want_class(class)?)
            }
            "and" => P::And(
                rest.iter()
                    .map(|p| self.parse_predicate(p))
                    .collect::<Result<_, _>>()?,
            ),
            "or" => P::Or(
                rest.iter()
                    .map(|p| self.parse_predicate(p))
                    .collect::<Result<_, _>>()?,
            ),
            "not" => {
                let [p] = rest else {
                    return Err(EvalError::BadForm("(not pred)".into()));
                };
                self.parse_predicate(p)?.not()
            }
            other => return Err(EvalError::BadForm(format!("unknown predicate {other}"))),
        })
    }

    /// `(describe Class)` — regenerates the §2.3 `make-class` form for a
    /// class from the live catalog (a pretty-printer for schemas).
    fn f_describe(&mut self, args: &[SExpr]) -> R {
        let [class] = args else {
            return Err(EvalError::BadForm("(describe Class)".into()));
        };
        let c = self.want_class(class)?;
        let def = self.vm.db().class(c).map_err(EvalError::Db)?.clone();
        let mut out = format!("(make-class '{}", def.name);
        if !def.superclasses.is_empty() {
            out.push_str(" :superclasses (");
            for (i, s) in def.superclasses.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(
                    &self
                        .vm
                        .db()
                        .class(*s)
                        .map(|c| c.name.clone())
                        .unwrap_or_else(|_| s.to_string()),
                );
            }
            out.push(')');
        }
        if def.versionable {
            out.push_str(" :versionable t");
        }
        if !def.attrs.is_empty() {
            out.push_str("\n  :attributes (");
            for a in &def.attrs {
                out.push_str(&format!(
                    "\n    ({} :domain {}",
                    a.name,
                    self.describe_domain(&a.domain)
                ));
                if let Some(spec) = a.composite {
                    out.push_str(&format!(
                        " :composite t :exclusive {} :dependent {}",
                        if spec.exclusive { "t" } else { "nil" },
                        if spec.dependent { "t" } else { "nil" }
                    ));
                }
                if a.inherited_from.is_some() {
                    out.push_str(" ; inherited");
                }
                out.push(')');
            }
            out.push(')');
        }
        out.push(')');
        Ok(LangValue::Str(out))
    }

    fn describe_domain(&self, d: &Domain) -> String {
        match d {
            Domain::Integer => "Integer".into(),
            Domain::Float => "Float".into(),
            Domain::Boolean => "Boolean".into(),
            Domain::String => "String".into(),
            Domain::Any => "Any".into(),
            Domain::Class(c) => self
                .vm
                .db()
                .class(*c)
                .map(|c| c.name.clone())
                .unwrap_or_else(|_| c.to_string()),
            Domain::SetOf(inner) => format!("(set-of {})", self.describe_domain(inner)),
        }
    }

    /// `(save-database "path")` — dumps the database image to a file.
    fn f_save_database(&mut self, args: &[SExpr]) -> R {
        let [path] = args else {
            return Err(EvalError::BadForm("(save-database \"path\")".into()));
        };
        let LangValue::Str(path) = self.eval(path)? else {
            return Err(EvalError::BadForm("path must be a string".into()));
        };
        self.vm.db_mut().save_to_file(&path)?;
        Ok(LangValue::T)
    }

    /// `(verify-integrity)` — runs the whole-database audit.
    fn f_verify(&mut self, args: &[SExpr]) -> R {
        if !args.is_empty() {
            return Err(EvalError::BadForm("(verify-integrity)".into()));
        }
        let report = self.vm.db_mut().verify_integrity()?;
        Ok(LangValue::List(vec![
            LangValue::Int(report.objects as i64),
            LangValue::Int(report.composite_edges as i64),
            LangValue::Int(report.weak_refs as i64),
        ]))
    }

    // ------------------------------------------------------------------
    // schema evolution messages (§4)
    // ------------------------------------------------------------------

    /// `(drop-attribute Class AttrName)` — §4.1 (1).
    fn f_drop_attribute(&mut self, args: &[SExpr]) -> R {
        let [class, attr] = args else {
            return Err(EvalError::BadForm("(drop-attribute Class attr)".into()));
        };
        let c = self.want_class(class)?;
        let a = Self::attr_name(attr)?;
        self.vm.db_mut().drop_attribute(c, &a)?;
        Ok(LangValue::T)
    }

    /// `(add-attribute Class (Name :domain D [:composite ...] [:init v]))`.
    fn f_add_attribute(&mut self, args: &[SExpr]) -> R {
        let [class, spec] = args else {
            return Err(EvalError::BadForm(
                "(add-attribute Class (Name :domain D ...))".into(),
            ));
        };
        let c = self.want_class(class)?;
        let def = self.parse_attr_spec(spec)?;
        self.vm.db_mut().add_attribute(c, def)?;
        Ok(LangValue::T)
    }

    /// `(add-superclass Class Super)` / `(remove-superclass Class Super)` —
    /// §4.1 (3).
    fn f_superclass_edge(&mut self, args: &[SExpr], add: bool) -> R {
        let [class, sup] = args else {
            return Err(EvalError::BadForm(
                "(add/remove-superclass Class Super)".into(),
            ));
        };
        let c = self.want_class(class)?;
        let s = self.want_class(sup)?;
        if add {
            self.vm.db_mut().add_superclass(c, s)?;
        } else {
            self.vm.db_mut().remove_superclass(c, s)?;
        }
        Ok(LangValue::T)
    }

    /// `(drop-class Class)` — §4.1 (4).
    fn f_drop_class(&mut self, args: &[SExpr]) -> R {
        let [class] = args else {
            return Err(EvalError::BadForm("(drop-class Class)".into()));
        };
        let c = self.want_class(class)?;
        self.vm.db_mut().drop_class(c)?;
        Ok(LangValue::T)
    }

    /// `(change-attribute-type Class attr Change [:deferred t])` — §4.2.
    /// Change is one of: to-non-composite, exclusive-to-shared,
    /// to-independent, to-dependent, weak-to-exclusive, weak-to-shared,
    /// shared-to-exclusive; the weak-to-* forms accept `:dependent t/nil`.
    fn f_change_attribute_type(&mut self, args: &[SExpr]) -> R {
        use corion_core::evolution::{AttrTypeChange, Maintenance};
        if args.len() < 3 {
            return Err(EvalError::BadForm(
                "(change-attribute-type Class attr change [:deferred t] [:dependent t])".into(),
            ));
        }
        let c = self.want_class(&args[0])?;
        let a = Self::attr_name(&args[1])?;
        let change_name = args[2]
            .as_sym()
            .ok_or_else(|| EvalError::BadForm("change must be a symbol".into()))?;
        let mut deferred = false;
        let mut dependent = true;
        let mut i = 3;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm(format!(
                    "expected keyword, got {}",
                    args[i]
                )));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            match kw.as_str() {
                "deferred" => deferred = value.is_true(),
                "dependent" => dependent = value.is_true(),
                other => return Err(EvalError::BadForm(format!("unknown keyword :{other}"))),
            }
            i += 2;
        }
        let change = match change_name {
            "to-non-composite" => AttrTypeChange::ToNonComposite,
            "exclusive-to-shared" => AttrTypeChange::ExclusiveToShared,
            "to-independent" => AttrTypeChange::ToIndependent,
            "to-dependent" => AttrTypeChange::ToDependent,
            "weak-to-exclusive" => AttrTypeChange::WeakToExclusive { dependent },
            "weak-to-shared" => AttrTypeChange::WeakToShared { dependent },
            "shared-to-exclusive" => AttrTypeChange::SharedToExclusive,
            other => return Err(EvalError::BadForm(format!("unknown change {other}"))),
        };
        let maintenance = if deferred {
            Maintenance::Deferred
        } else {
            Maintenance::Immediate
        };
        self.vm
            .db_mut()
            .change_attribute_type(c, &a, change, maintenance)?;
        Ok(LangValue::T)
    }

    fn f_create_versioned(&mut self, args: &[SExpr]) -> R {
        let class = self
            .want_class(args.first().ok_or_else(|| {
                EvalError::BadForm("(create-versioned Class :Attr v ...)".into())
            })?)?;
        let mut values: Vec<(String, Value)> = Vec::new();
        let mut i = 1;
        while i < args.len() {
            let SExpr::Kw(kw) = &args[i] else {
                return Err(EvalError::BadForm("expected keyword".into()));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| EvalError::BadForm(format!("missing value for :{kw}")))?;
            let v = self.eval(value)?;
            values.push((kw.clone(), self.lang_to_db(v)?));
            i += 2;
        }
        let value_refs: Vec<(&str, Value)> = values
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let (generic, v1) = self.vm.create(class, value_refs)?;
        Ok(LangValue::List(vec![
            LangValue::Obj(generic),
            LangValue::Obj(v1),
        ]))
    }

    fn f_derive(&mut self, args: &[SExpr]) -> R {
        let [from] = args else {
            return Err(EvalError::BadForm("(derive-version v)".into()));
        };
        let v = self.want_obj(from)?;
        Ok(LangValue::Obj(self.vm.derive(v)?))
    }

    fn f_default_version(&mut self, args: &[SExpr]) -> R {
        let [g] = args else {
            return Err(EvalError::BadForm("(default-version g)".into()));
        };
        let g = self.want_obj(g)?;
        Ok(LangValue::Obj(self.vm.default_version(g)?))
    }

    fn f_set_default_version(&mut self, args: &[SExpr]) -> R {
        let [g, v] = args else {
            return Err(EvalError::BadForm("(set-default-version g v)".into()));
        };
        let g = self.want_obj(g)?;
        let v = self.want_obj(v)?;
        self.vm.set_default_version(g, v)?;
        Ok(LangValue::T)
    }

    fn f_resolve(&mut self, args: &[SExpr]) -> R {
        let [o] = args else {
            return Err(EvalError::BadForm("(resolve o)".into()));
        };
        let o = self.want_obj(o)?;
        Ok(LangValue::Obj(self.vm.resolve(o)?))
    }
}

enum Traverse {
    Components,
    Parents,
    Ancestors,
}

enum ClassPred {
    Composite,
    Exclusive,
    Shared,
    Dependent,
}

enum InstPred {
    Component,
    Child,
    ExclusiveComponent,
    SharedComponent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp_with_vehicle() -> Interpreter {
        let mut it = Interpreter::new();
        // The paper's Example 1 (§2.3), verbatim modulo reader syntax.
        it.eval_str(
            r#"
            (make-class 'Company)
            (make-class 'AutoBody)
            (make-class 'AutoDrivetrain)
            (make-class 'AutoTires)
            (make-class 'Vehicle :superclasses nil
              :attributes ((Manufacturer :domain Company)
                           (Body :domain AutoBody
                                 :composite t :exclusive t :dependent nil)
                           (Drivetrain :domain AutoDrivetrain
                                 :composite t :exclusive t :dependent nil)
                           (Tires :domain (set-of AutoTires)
                                 :composite t :exclusive t :dependent nil)
                           (Color :domain String)))
            "#,
        )
        .unwrap();
        it
    }

    #[test]
    fn example1_vehicle_class_definition() {
        let it = interp_with_vehicle();
        let vehicle = it.db().class_by_name("Vehicle").unwrap();
        assert!(it.db().compositep(vehicle, Some("Body")).unwrap());
        assert!(it.db().exclusive_compositep(vehicle, Some("Body")).unwrap());
        assert!(!it.db().dependent_compositep(vehicle, Some("Body")).unwrap());
        assert!(!it.db().compositep(vehicle, Some("Color")).unwrap());
    }

    #[test]
    fn make_with_components_and_traversals() {
        let mut it = interp_with_vehicle();
        let out = it
            .eval_str(
                r#"
                (define b (make AutoBody))
                (define d (make AutoDrivetrain))
                (define v (make Vehicle :Body b :Drivetrain d :Color "red"))
                (components-of v)
                "#,
            )
            .unwrap();
        let LangValue::List(comps) = out else {
            panic!("expected list")
        };
        assert_eq!(comps.len(), 2);
        assert_eq!(it.eval_str("(child-of b v)").unwrap(), LangValue::T);
        assert_eq!(
            it.eval_str("(exclusive-component-of b v)").unwrap(),
            LangValue::T
        );
        assert_eq!(
            it.eval_str("(shared-component-of b v)").unwrap(),
            LangValue::Nil
        );
        assert_eq!(
            it.eval_str("(get v Color)").unwrap(),
            LangValue::Str("red".into())
        );
    }

    #[test]
    fn parent_clause_in_make() {
        let mut it = interp_with_vehicle();
        it.eval_str("(define v (make Vehicle))").unwrap();
        it.eval_str("(define b (make AutoBody :parent ((v Body))))")
            .unwrap();
        assert_eq!(it.eval_str("(child-of b v)").unwrap(), LangValue::T);
    }

    #[test]
    fn defaults_for_exclusive_and_dependent_are_true() {
        // §2.3: omitted :exclusive/:dependent default to True.
        let mut it = Interpreter::new();
        it.eval_str(
            "(make-class 'Leaf) (make-class 'Node :attributes ((kid :domain Leaf :composite t)))",
        )
        .unwrap();
        let node = it.db().class_by_name("Node").unwrap();
        assert!(it.db().exclusive_compositep(node, Some("kid")).unwrap());
        assert!(it.db().dependent_compositep(node, Some("kid")).unwrap());
    }

    #[test]
    fn delete_cascades_are_reported() {
        let mut it = Interpreter::new();
        it.eval_str(
            "(make-class 'Leaf) (make-class 'Node :attributes ((kid :domain Leaf :composite t)))",
        )
        .unwrap();
        let out = it
            .eval_str("(define l (make Leaf)) (define n (make Node :kid l)) (delete n)")
            .unwrap();
        let LangValue::List(deleted) = out else {
            panic!()
        };
        assert_eq!(deleted.len(), 2, "dependent exclusive child cascades");
    }

    #[test]
    fn set_bang_maintains_composite_semantics() {
        let mut it = interp_with_vehicle();
        it.eval_str("(define v (make Vehicle)) (define b (make AutoBody))")
            .unwrap();
        it.eval_str("(set! v Body b)").unwrap();
        assert_eq!(it.eval_str("(component-of b v)").unwrap(), LangValue::T);
        it.eval_str("(set! v Body nil)").unwrap();
        assert_eq!(it.eval_str("(component-of b v)").unwrap(), LangValue::Nil);
        // Independent exclusive: b survives the dismantling for reuse.
        assert_eq!(
            it.eval_str("(instances-of AutoBody)").unwrap(),
            LangValue::List(vec![it.eval_str("b").unwrap()])
        );
    }

    #[test]
    fn versioned_objects_through_the_language() {
        let mut it = Interpreter::new();
        it.eval_str("(make-class 'Design :versionable t :attributes ((name :domain String)))")
            .unwrap();
        it.eval_str(r#"(define gv (create-versioned Design :name "d0"))"#)
            .unwrap();
        let LangValue::List(pair) = it.eval_str("gv").unwrap() else {
            panic!()
        };
        assert_eq!(pair.len(), 2);
        // Bind the pieces and derive.
        it.env.insert("g".into(), pair[0].clone());
        it.env.insert("v1".into(), pair[1].clone());
        it.eval_str("(define v2 (derive-version v1))").unwrap();
        assert_eq!(
            it.eval_str("(default-version g)").unwrap(),
            it.eval_str("v2").unwrap()
        );
        it.eval_str("(set-default-version g v1)").unwrap();
        assert_eq!(
            it.eval_str("(resolve g)").unwrap(),
            it.eval_str("v1").unwrap()
        );
    }

    #[test]
    fn errors_are_informative() {
        let mut it = Interpreter::new();
        assert!(matches!(
            it.eval_str("(frobnicate 1)"),
            Err(EvalError::BadForm(_))
        ));
        assert!(matches!(
            it.eval_str("unknown-sym"),
            Err(EvalError::Unbound(_))
        ));
        assert!(matches!(
            it.eval_str("(make NoSuchClass)"),
            Err(EvalError::Unbound(_))
        ));
        it.eval_str("(make-class 'C)").unwrap();
        assert!(matches!(
            it.eval_str("(make C :nope 1)"),
            Err(EvalError::Db(_))
        ));
        assert!(matches!(
            it.eval_str("(define)"),
            Err(EvalError::BadForm(_))
        ));
    }

    #[test]
    fn filters_in_components_of() {
        let mut it = interp_with_vehicle();
        it.eval_str(
            r#"
            (define b (make AutoBody))
            (define t1 (make AutoTires))
            (define v (make Vehicle :Body b :Tires (set t1)))
            "#,
        )
        .unwrap();
        let out = it
            .eval_str("(components-of v :classes (AutoTires))")
            .unwrap();
        let LangValue::List(comps) = out else {
            panic!()
        };
        assert_eq!(comps.len(), 1);
        let out = it.eval_str("(components-of v :level 1)").unwrap();
        let LangValue::List(comps) = out else {
            panic!()
        };
        assert_eq!(comps.len(), 2);
    }
}

#[cfg(test)]
mod evolution_message_tests {
    use super::*;

    fn world() -> Interpreter {
        let mut it = Interpreter::new();
        it.eval_str(
            r#"
            (make-class 'Item)
            (make-class 'Holder
              :attributes ((slot :domain Item :composite t :exclusive t :dependent t)
                           (tag  :domain String)))
            (define i (make Item))
            (define h (make Holder :slot i :tag "x"))
            "#,
        )
        .unwrap();
        it
    }

    #[test]
    fn change_attribute_type_messages() {
        let mut it = world();
        it.eval_str("(change-attribute-type Holder slot exclusive-to-shared)")
            .unwrap();
        assert_eq!(
            it.eval_str("(shared-compositep Holder slot)").unwrap(),
            LangValue::T
        );
        it.eval_str("(change-attribute-type Holder slot to-independent :deferred t)")
            .unwrap();
        assert_eq!(
            it.eval_str("(dependent-compositep Holder slot)").unwrap(),
            LangValue::Nil
        );
        it.eval_str("(change-attribute-type Holder slot shared-to-exclusive)")
            .unwrap();
        assert_eq!(
            it.eval_str("(exclusive-compositep Holder slot)").unwrap(),
            LangValue::T
        );
        assert!(it
            .eval_str("(change-attribute-type Holder slot frobnicate)")
            .is_err());
    }

    #[test]
    fn drop_and_add_attribute_messages() {
        let mut it = world();
        it.eval_str("(drop-attribute Holder slot)").unwrap();
        assert!(it.eval_str("(get h slot)").is_err());
        // The dependent target cascaded away with the attribute.
        assert!(it.eval_str("(parents-of i)").is_err());
        it.eval_str("(add-attribute Holder (rank :domain Integer :init 5))")
            .unwrap();
        assert_eq!(it.eval_str("(get h rank)").unwrap(), LangValue::Int(5));
    }

    #[test]
    fn superclass_and_drop_class_messages() {
        let mut it = world();
        it.eval_str("(make-class 'Base :attributes ((extra :domain Integer)))")
            .unwrap();
        it.eval_str("(add-superclass Holder Base)").unwrap();
        assert_eq!(it.eval_str("(get h extra)").unwrap(), LangValue::Nil);
        it.eval_str("(remove-superclass Holder Base)").unwrap();
        assert!(it.eval_str("(get h extra)").is_err());
        it.eval_str("(drop-class Holder)").unwrap();
        assert!(it.eval_str("(instances-of Holder)").is_err());
    }

    #[test]
    fn weak_to_composite_message_with_dependence() {
        let mut it = Interpreter::new();
        it.eval_str(
            r#"
            (make-class 'Item)
            (make-class 'Holder :attributes ((w :domain Item)))
            (define i (make Item))
            (define h (make Holder :w i))
            (change-attribute-type Holder w weak-to-shared :dependent nil)
            "#,
        )
        .unwrap();
        assert_eq!(
            it.eval_str("(shared-compositep Holder w)").unwrap(),
            LangValue::T
        );
        assert_eq!(
            it.eval_str("(dependent-compositep Holder w)").unwrap(),
            LangValue::Nil
        );
        assert_eq!(it.eval_str("(component-of i h)").unwrap(), LangValue::T);
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn describe_regenerates_make_class_shape() {
        let mut it = Interpreter::new();
        it.eval_str(
            r#"
            (make-class 'AutoBody)
            (make-class 'Vehicle
              :attributes ((Body :domain AutoBody :composite t :exclusive t :dependent nil)
                           (Color :domain String)))
            "#,
        )
        .unwrap();
        let LangValue::Str(s) = it.eval_str("(describe Vehicle)").unwrap() else {
            panic!()
        };
        assert!(s.contains("(make-class 'Vehicle"));
        assert!(s.contains("(Body :domain AutoBody :composite t :exclusive t :dependent nil)"));
        assert!(s.contains("(Color :domain String)"));
    }

    #[test]
    fn describe_marks_inherited_attributes_and_supers() {
        let mut it = Interpreter::new();
        it.eval_str(
            "(make-class 'Base :attributes ((x :domain Integer)))
             (make-class 'Derived :superclasses (Base) :versionable t)",
        )
        .unwrap();
        let LangValue::Str(s) = it.eval_str("(describe Derived)").unwrap() else {
            panic!()
        };
        assert!(s.contains(":superclasses (Base)"));
        assert!(s.contains(":versionable t"));
        assert!(s.contains("; inherited"));
    }

    #[test]
    fn verify_integrity_message_reports_census() {
        let mut it = Interpreter::new();
        it.eval_str(
            "(make-class 'Leaf)
             (make-class 'Node :attributes ((kid :domain Leaf :composite t)))
             (define l (make Leaf)) (define n (make Node :kid l))",
        )
        .unwrap();
        assert_eq!(
            it.eval_str("(verify-integrity)").unwrap(),
            LangValue::List(vec![
                LangValue::Int(2),
                LangValue::Int(1),
                LangValue::Int(0)
            ])
        );
    }

    #[test]
    fn save_database_writes_a_loadable_image() {
        let mut it = Interpreter::new();
        it.eval_str("(make-class 'Leaf) (define l (make Leaf))")
            .unwrap();
        let dir = std::env::temp_dir().join(format!("corion_lang_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repl.corion");
        it.eval_str(&format!("(save-database {:?})", path.to_str().unwrap()))
            .unwrap();
        let mut back = Database::load_from_file(&path, corion_core::DbConfig::default()).unwrap();
        assert_eq!(back.object_count(), 1);
        back.verify_integrity().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;

    fn world() -> Interpreter {
        let mut it = Interpreter::new();
        it.eval_str(
            r#"
            (make-class 'Part :attributes ((n :domain Integer) (tag :domain String)))
            (make-class 'Asm
              :attributes ((parts :domain (set-of Part)
                                  :composite t :exclusive nil :dependent nil)))
            (define p0 (make Part :n 0 :tag "even"))
            (define p1 (make Part :n 1 :tag "odd"))
            (define p2 (make Part :n 2 :tag "even"))
            (define p3 (make Part :n 3 :tag "odd"))
            (define a (make Asm :parts (set p0 p1)))
            "#,
        )
        .unwrap();
        it
    }

    #[test]
    fn select_with_comparisons_and_combinators() {
        let mut it = world();
        let LangValue::List(r) = it.eval_str("(select Part :where (> n 1))").unwrap() else {
            panic!()
        };
        assert_eq!(r.len(), 2);
        let LangValue::List(r) = it
            .eval_str(r#"(select Part :where (and (= tag "even") (< n 2)))"#)
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 1);
        let LangValue::List(r) = it
            .eval_str("(select Part :where (or (= n 0) (= n 3)) :limit 1)")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_with_composite_predicates() {
        let mut it = world();
        let LangValue::List(r) = it
            .eval_str("(select Part :where (component-of a))")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 2);
        let LangValue::List(r) = it
            .eval_str("(select Part :where (not (has-composite-parent)))")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 2, "p2 and p3 are free");
        let LangValue::List(r) = it
            .eval_str("(select Asm :where (has-component-of Part))")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 1);
        let LangValue::List(r) = it
            .eval_str("(select Asm :where (references parts p0))")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_errors_are_reported() {
        let mut it = world();
        assert!(it.eval_str("(select Part :where (= missing 1))").is_err());
        assert!(it.eval_str("(select Part :where (frob n 1))").is_err());
        assert!(it.eval_str("(select Part :limit x)").is_err());
    }
}
