use corion_storage::{ObjectStore, StoreConfig, CP_COMMIT_FLUSH};

#[test]
fn committed_batch_after_torn_recovery_survives_second_recovery() {
    // Measure the pending bytes of the batch we will tear.
    let mut probe = ObjectStore::new(StoreConfig::default());
    let seg = probe.create_segment().unwrap();
    let a = probe.insert(seg, b"A", None).unwrap();
    let before = probe.wal_stats().durable_bytes;
    probe.update(a, b"B").unwrap();
    let batch_bytes = probe.wal_stats().durable_bytes - before;

    for keep in 0..batch_bytes {
        let mut st = ObjectStore::new(StoreConfig::default());
        let seg = st.create_segment().unwrap();
        let a = st.insert(seg, b"A", None).unwrap();
        st.arm_torn_crash(CP_COMMIT_FLUSH, 1, keep);
        let _ = st.update(a, b"B");
        st.heal_crash_points();
        let rep1 = st.recover().unwrap();
        let c = st.insert(seg, b"C", None).unwrap();
        st.simulate_crash();
        let rep2 = st.recover().unwrap();
        assert!(!rep2.torn_tail,
            "keep={keep}/{batch_bytes}: second recovery saw torn tail (rep1={rep1:?}, rep2={rep2:?})");
        assert_eq!(st.read(c).unwrap(), b"C", "keep={keep}: committed C lost");
    }
}
