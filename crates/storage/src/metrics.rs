//! Metric handles for the storage layer, interned once per store.
//!
//! The WAL itself stays metric-free (it is a pure in-memory log the
//! crash-matrix tests reason about byte-exactly); everything is counted
//! at the [`crate::store::ObjectStore`] boundary, which is where the
//! paper-visible events happen: a commit's durability point, a recovery
//! replay, a checkpoint truncation. See `docs/OBSERVABILITY.md` for the
//! full catalog.

use corion_obs::{Registry, LATENCY_BOUNDS_NS};

/// Handles to every storage-layer metric. One instance per
/// [`crate::store::ObjectStore`]; cloning a handle is cheap and all
/// clones share the registry's values.
pub struct StoreMetrics {
    /// `corion_wal_append_records_total`: WAL records appended (page
    /// images, commit markers, segment ops).
    pub wal_append_records: corion_obs::Counter,
    /// `corion_wal_append_bytes_total`: encoded bytes appended to the
    /// WAL (pending; they become durable at the next flush).
    pub wal_append_bytes: corion_obs::Counter,
    /// `corion_wal_flushes_total`: durability points — one per committed
    /// batch.
    pub wal_flushes: corion_obs::Counter,
    /// `corion_wal_group_commits_total`: commits absorbed into a deferred
    /// group-commit window instead of flushing individually.
    pub wal_group_commits: corion_obs::Counter,
    /// `corion_wal_group_seals_total`: group-commit windows sealed (one
    /// flush each, covering `group_commits / group_seals` commits on
    /// average).
    pub wal_group_seals: corion_obs::Counter,
    /// `corion_wal_delta_records_total`: page records logged as byte-range
    /// deltas against the last logged image rather than full images.
    pub wal_delta_records: corion_obs::Counter,
    /// `corion_wal_delta_bytes_saved_total`: payload bytes the delta
    /// records above avoided logging (full image minus encoded delta).
    pub wal_delta_bytes_saved: corion_obs::Counter,
    /// `corion_wal_dedup_skips_total`: page records skipped entirely
    /// because the after-image was byte-identical to the last logged one.
    pub wal_dedup_skips: corion_obs::Counter,
    /// `corion_wal_flush_latency_ns`: time spent in the log flush.
    pub wal_flush_latency: corion_obs::Histogram,
    /// `corion_wal_checkpoints_total`: log truncations (manual or
    /// automatic).
    pub wal_checkpoints: corion_obs::Counter,
    /// `corion_wal_checkpoint_latency_ns`: time per checkpoint,
    /// including the defensive pool flush.
    pub wal_checkpoint_latency: corion_obs::Histogram,
    /// `corion_storage_commits_total`: atomic batches committed.
    pub commits: corion_obs::Counter,
    /// `corion_storage_aborts_total`: atomic batches rolled back
    /// (explicit aborts and error-path autocommit rollbacks).
    pub aborts: corion_obs::Counter,
    /// `corion_storage_commit_latency_ns`: full `commit_atomic` time —
    /// image snapshot, log append, flush, and page apply.
    pub commit_latency: corion_obs::Histogram,
    /// `corion_storage_recoveries_total`: `recover()` runs.
    pub recoveries: corion_obs::Counter,
    /// `corion_storage_recovery_latency_ns`: time per recovery (scan,
    /// truncate, rebuild, replay).
    pub recovery_latency: corion_obs::Histogram,
    /// `corion_storage_recovered_pages_total`: committed page images
    /// written back by recovery.
    pub recovered_pages: corion_obs::Counter,
    /// `corion_storage_discarded_records_total`: torn/uncommitted tail
    /// records dropped by recovery.
    pub discarded_records: corion_obs::Counter,
    /// `corion_storage_retry_attempts_total`: transient-fault retries
    /// performed (one per re-attempt, not per operation).
    pub retry_attempts: corion_obs::Counter,
    /// `corion_storage_retry_success_total`: operations that succeeded
    /// after at least one retry.
    pub retry_success: corion_obs::Counter,
    /// `corion_storage_retry_exhausted_total`: operations whose transient
    /// error surfaced because the retry budget ran out.
    pub retry_exhausted: corion_obs::Counter,
    /// `corion_storage_retry_backoff_us_total`: simulated backoff
    /// microseconds accumulated across all retries.
    pub retry_backoff_us: corion_obs::Counter,
    /// `corion_db_health`: current [`crate::store::HealthState`] as a
    /// gauge — 0 healthy, 1 degraded (read-only), 2 poisoned.
    pub health: corion_obs::Gauge,
    /// `corion_scrub_runs_total`: scrub passes completed.
    pub scrub_runs: corion_obs::Counter,
    /// `corion_scrub_pages_checked_total`: pages whose checksum a scrub
    /// pass verified.
    pub scrub_pages_checked: corion_obs::Counter,
    /// `corion_scrub_pages_salvaged_total`: corrupt pages restored from a
    /// committed WAL after-image.
    pub scrub_pages_salvaged: corion_obs::Counter,
    /// `corion_scrub_pages_reset_total`: corrupt pages with no salvageable
    /// image, reset to empty (their records are lost).
    pub scrub_pages_reset: corion_obs::Counter,
}

impl StoreMetrics {
    /// Intern every storage metric in `registry`.
    pub fn new(registry: &Registry) -> Self {
        StoreMetrics {
            wal_append_records: registry.counter("corion_wal_append_records_total"),
            wal_append_bytes: registry.counter("corion_wal_append_bytes_total"),
            wal_flushes: registry.counter("corion_wal_flushes_total"),
            wal_group_commits: registry.counter("corion_wal_group_commits_total"),
            wal_group_seals: registry.counter("corion_wal_group_seals_total"),
            wal_delta_records: registry.counter("corion_wal_delta_records_total"),
            wal_delta_bytes_saved: registry.counter("corion_wal_delta_bytes_saved_total"),
            wal_dedup_skips: registry.counter("corion_wal_dedup_skips_total"),
            wal_flush_latency: registry.histogram("corion_wal_flush_latency_ns", LATENCY_BOUNDS_NS),
            wal_checkpoints: registry.counter("corion_wal_checkpoints_total"),
            wal_checkpoint_latency: registry
                .histogram("corion_wal_checkpoint_latency_ns", LATENCY_BOUNDS_NS),
            commits: registry.counter("corion_storage_commits_total"),
            aborts: registry.counter("corion_storage_aborts_total"),
            commit_latency: registry
                .histogram("corion_storage_commit_latency_ns", LATENCY_BOUNDS_NS),
            recoveries: registry.counter("corion_storage_recoveries_total"),
            recovery_latency: registry
                .histogram("corion_storage_recovery_latency_ns", LATENCY_BOUNDS_NS),
            recovered_pages: registry.counter("corion_storage_recovered_pages_total"),
            discarded_records: registry.counter("corion_storage_discarded_records_total"),
            retry_attempts: registry.counter("corion_storage_retry_attempts_total"),
            retry_success: registry.counter("corion_storage_retry_success_total"),
            retry_exhausted: registry.counter("corion_storage_retry_exhausted_total"),
            retry_backoff_us: registry.counter("corion_storage_retry_backoff_us_total"),
            health: registry.gauge("corion_db_health"),
            scrub_runs: registry.counter("corion_scrub_runs_total"),
            scrub_pages_checked: registry.counter("corion_scrub_pages_checked_total"),
            scrub_pages_salvaged: registry.counter("corion_scrub_pages_salvaged_total"),
            scrub_pages_reset: registry.counter("corion_scrub_pages_reset_total"),
        }
    }

    /// Borrowed view of the retry counters for [`crate::retry::run`].
    pub fn retry(&self) -> crate::retry::RetryMetrics<'_> {
        crate::retry::RetryMetrics {
            attempts: &self.retry_attempts,
            successes: &self.retry_success,
            exhausted: &self.retry_exhausted,
            backoff_us: &self.retry_backoff_us,
        }
    }
}
