//! Deterministic bounded-backoff retry for transient storage faults.
//!
//! The error taxonomy ([`crate::StorageError::is_transient`]) splits faults into
//! *transient* (the device failed this attempt but may succeed if asked
//! again — a bus hiccup, a firmware stall) and *permanent* (retrying cannot
//! help). The store's hot paths wrap their physical I/O in [`run`], which
//! retries transient faults up to a fixed budget with exponentially growing
//! delays, and hands everything else straight back to the caller.
//!
//! Delays are *simulated*: the policy computes each backoff deterministically
//! and reports it to an injectable [`Clock`] instead of sleeping. The default
//! clock only accumulates the total (exposed through the
//! `corion_storage_retry_backoff_us_total` counter); tests install a
//! recording clock and assert the exact delay schedule. No wall time, no
//! jitter, no flaky tests.

use std::sync::Arc;

use crate::error::StorageResult;

/// Where simulated backoff delays are reported. The closure receives each
/// delay in microseconds; implementations may record it, accumulate it, or
/// (outside of tests) actually sleep.
pub type Clock = Arc<dyn Fn(u64) + Send + Sync>;

/// A bounded exponential-backoff retry policy.
///
/// Attempt `k` (zero-based) that fails transiently is retried after
/// `min(base_delay_us << k, max_delay_us)` simulated microseconds, up to
/// `max_retries` retries; the transient error surfaces to the caller only
/// once the budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated microseconds.
    pub base_delay_us: u64,
    /// Ceiling on any single backoff, in simulated microseconds.
    pub max_delay_us: u64,
}

impl Default for RetryPolicy {
    /// Three retries at 100µs/200µs/400µs — enough to ride out the
    /// short fault windows the simulator models, small enough that a
    /// permanent fault is not masked for long.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_us: 100,
            max_delay_us: 10_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempt 0 is the only attempt).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_us: 0,
            max_delay_us: 0,
        }
    }

    /// Simulated backoff before retrying after failed attempt `attempt`
    /// (zero-based): `min(base << attempt, max)`, saturating.
    pub fn delay_for(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.min(63);
        self.base_delay_us
            .saturating_mul(factor)
            .min(self.max_delay_us)
    }
}

/// Counters the retry loop feeds; a subset of
/// [`StoreMetrics`](crate::metrics::StoreMetrics).
pub struct RetryMetrics<'a> {
    /// Incremented once per retry (not per attempt).
    pub attempts: &'a corion_obs::Counter,
    /// Incremented when an operation succeeds after at least one retry.
    pub successes: &'a corion_obs::Counter,
    /// Incremented when the retry budget is exhausted and the transient
    /// error surfaces.
    pub exhausted: &'a corion_obs::Counter,
    /// Accumulates simulated backoff microseconds.
    pub backoff_us: &'a corion_obs::Counter,
}

/// Runs `op`, retrying transient failures per `policy`. Permanent errors
/// and successes return immediately; each transient failure costs one
/// retry and one simulated backoff reported to `clock`, until the budget
/// is spent and the last transient error surfaces.
pub fn run<T>(
    policy: &RetryPolicy,
    metrics: &RetryMetrics<'_>,
    clock: &Clock,
    mut op: impl FnMut() -> StorageResult<T>,
) -> StorageResult<T> {
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Ok(v) => {
                if attempt > 0 {
                    metrics.successes.inc();
                }
                return Ok(v);
            }
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                metrics.attempts.inc();
                let delay = policy.delay_for(attempt);
                metrics.backoff_us.add(delay);
                clock(delay);
                attempt += 1;
            }
            Err(e) => {
                if e.is_transient() {
                    metrics.exhausted.inc();
                }
                return Err(e);
            }
        }
    }
}

/// The default clock: does nothing per delay (totals are already
/// accumulated by the metrics counter). Simulated time never sleeps.
pub fn noop_clock() -> Clock {
    Arc::new(|_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;
    use corion_obs::Registry;
    use parking_lot::Mutex;

    fn metrics_on(reg: &Registry) -> [corion_obs::Counter; 4] {
        [
            reg.counter("attempts"),
            reg.counter("successes"),
            reg.counter("exhausted"),
            reg.counter("backoff"),
        ]
    }

    fn recording_clock() -> (Clock, Arc<Mutex<Vec<u64>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let clock: Clock = Arc::new(move |us| sink.lock().push(us));
        (clock, seen)
    }

    #[test]
    fn delay_schedule_is_bounded_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay_us: 100,
            max_delay_us: 1000,
        };
        assert_eq!(p.delay_for(0), 100);
        assert_eq!(p.delay_for(1), 200);
        assert_eq!(p.delay_for(2), 400);
        assert_eq!(p.delay_for(3), 800);
        assert_eq!(p.delay_for(4), 1000); // capped
        assert_eq!(p.delay_for(63), 1000); // shift overflow saturates
        assert_eq!(p.delay_for(64), 1000);
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let reg = Registry::new();
        let [attempts, successes, exhausted, backoff] = metrics_on(&reg);
        let m = RetryMetrics {
            attempts: &attempts,
            successes: &successes,
            exhausted: &exhausted,
            backoff_us: &backoff,
        };
        let (clock, seen) = recording_clock();
        let mut failures_left = 2;
        let out = run(&RetryPolicy::default(), &m, &clock, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(StorageError::TransientFault { op: "read" })
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        // Deterministic schedule: 100µs then 200µs (clock recording does
        // not depend on the obs feature).
        assert_eq!(*seen.lock(), vec![100, 200]);
        if cfg!(feature = "obs") {
            assert_eq!(attempts.get(), 2);
            assert_eq!(successes.get(), 1);
            assert_eq!(exhausted.get(), 0);
            assert_eq!(backoff.get(), 300);
        }
    }

    #[test]
    fn budget_exhaustion_surfaces_the_transient_error() {
        let reg = Registry::new();
        let [attempts, successes, exhausted, backoff] = metrics_on(&reg);
        let m = RetryMetrics {
            attempts: &attempts,
            successes: &successes,
            exhausted: &exhausted,
            backoff_us: &backoff,
        };
        let clock = noop_clock();
        let out: StorageResult<()> = run(&RetryPolicy::default(), &m, &clock, || {
            Err(StorageError::TransientFault { op: "write" })
        });
        assert!(matches!(out, Err(StorageError::TransientFault { .. })));
        if cfg!(feature = "obs") {
            assert_eq!(attempts.get(), 3);
            assert_eq!(exhausted.get(), 1);
            assert_eq!(successes.get(), 0);
        }
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let reg = Registry::new();
        let [attempts, successes, exhausted, backoff] = metrics_on(&reg);
        let m = RetryMetrics {
            attempts: &attempts,
            successes: &successes,
            exhausted: &exhausted,
            backoff_us: &backoff,
        };
        let clock = noop_clock();
        let mut calls = 0;
        let out: StorageResult<()> = run(&RetryPolicy::default(), &m, &clock, || {
            calls += 1;
            Err(StorageError::InjectedFault { op: "write" })
        });
        assert!(matches!(out, Err(StorageError::InjectedFault { .. })));
        assert_eq!(calls, 1);
        assert_eq!(attempts.get(), 0);
        assert_eq!(exhausted.get(), 0);
        let _ = (successes, backoff);
    }

    #[test]
    fn no_retries_policy_fails_immediately() {
        let reg = Registry::new();
        let [attempts, successes, exhausted, backoff] = metrics_on(&reg);
        let m = RetryMetrics {
            attempts: &attempts,
            successes: &successes,
            exhausted: &exhausted,
            backoff_us: &backoff,
        };
        let clock = noop_clock();
        let mut calls = 0;
        let out: StorageResult<()> = run(&RetryPolicy::no_retries(), &m, &clock, || {
            calls += 1;
            Err(StorageError::TransientFault { op: "read" })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert_eq!(attempts.get(), 0);
        let _ = (successes, exhausted, backoff);
    }
}
