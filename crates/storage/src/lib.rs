//! # corion-storage
//!
//! Page-based storage substrate for the CORION object-oriented database,
//! a reproduction of *Composite Objects Revisited* (Kim, Bertino, Garza,
//! SIGMOD 1989).
//!
//! ORION stored objects in segments on disk and clustered composite objects
//! by placing components near their parents (the `:parent` keyword of the
//! `make` message doubles as a clustering directive, paper §2.3). This crate
//! provides the equivalent substrate:
//!
//! * [`page`] — 4 KiB slotted pages with a slot directory, in-page
//!   compaction, and tombstoned deletes;
//! * [`disk`] — a simulated disk that counts physical reads and writes, so
//!   clustering experiments report I/O counts instead of 1989 wall-clock;
//! * [`buffer`] — a pinning LRU buffer pool over the simulated disk;
//! * [`segment`] — growable page collections with a free-space map; each
//!   class (or group of co-clustered classes) maps to one segment, as in
//!   ORION where clustering "is only performed if the classes of the two
//!   objects are stored in the same physical segment";
//! * [`store`] — record-level CRUD with *cluster-near* placement hints and
//!   relocation on growth, grouped into atomic batches;
//! * [`wal`] — a checksummed, sequence-numbered write-ahead log (page-image
//!   redo + commit markers) behind the store's `begin_atomic` /
//!   `commit_atomic` / `recover` boundary;
//! * [`fault`] — named crash points with countdowns and torn-write
//!   injection, for deterministic crash-recovery testing;
//! * [`version`] — copy-on-write object-image version chains keyed by
//!   commit LSN, with snapshot pins and watermark GC, so the concurrent
//!   engine's readers never block on writers;
//! * [`codec`] — little-endian primitive readers/writers used by the object
//!   serializer in `corion-core`.
//!
//! The substrate is deliberately synchronous and single-node: the paper's
//! claims about clustering and locking are about algorithmic shape (page
//! I/Os saved, locks acquired), which this layer makes observable.

//! ```
//! use corion_storage::{ObjectStore, StoreConfig};
//!
//! let mut store = ObjectStore::new(StoreConfig::default());
//! let seg = store.create_segment().unwrap();
//! let parent = store.insert(seg, b"assembly", None).unwrap();
//! // The `near` hint is the paper's `:parent` clustering directive.
//! let child = store.insert(seg, b"component", Some(parent)).unwrap();
//! assert_eq!(parent.page, child.page);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod page;
pub mod retry;
pub mod segment;
pub mod store;
pub mod version;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use disk::{DiskStats, SimDisk};
pub use error::{StorageError, StorageResult};
pub use fault::{CrashPoints, FireOutcome};
pub use metrics::StoreMetrics;
pub use page::{Page, SlotId, PAGE_SIZE};
pub use retry::{Clock, RetryPolicy};
pub use segment::{Segment, SegmentId};
pub use store::{
    CommitPolicy, HealthState, ObjectStore, PhysId, RecoveryReport, ScrubReport, StoreConfig,
    CP_COMMIT_APPLY, CP_COMMIT_DONE, CP_COMMIT_FLUSH, CP_COMMIT_LOG, CP_GROUP_SEAL, CP_PAGE_WRITE,
    CRASH_POINTS,
};
pub use version::{Resolution, VersionKey, VersionStore};
pub use wal::{
    apply_delta, delta_encoded_len, diff_pages, fnv1a64, Lsn, Wal, WalMark, WalRecord, WalStats,
};
