//! # corion-storage
//!
//! Page-based storage substrate for the CORION object-oriented database,
//! a reproduction of *Composite Objects Revisited* (Kim, Bertino, Garza,
//! SIGMOD 1989).
//!
//! ORION stored objects in segments on disk and clustered composite objects
//! by placing components near their parents (the `:parent` keyword of the
//! `make` message doubles as a clustering directive, paper §2.3). This crate
//! provides the equivalent substrate:
//!
//! * [`page`] — 4 KiB slotted pages with a slot directory, in-page
//!   compaction, and tombstoned deletes;
//! * [`disk`] — a simulated disk that counts physical reads and writes, so
//!   clustering experiments report I/O counts instead of 1989 wall-clock;
//! * [`buffer`] — a pinning LRU buffer pool over the simulated disk;
//! * [`segment`] — growable page collections with a free-space map; each
//!   class (or group of co-clustered classes) maps to one segment, as in
//!   ORION where clustering "is only performed if the classes of the two
//!   objects are stored in the same physical segment";
//! * [`store`] — record-level CRUD with *cluster-near* placement hints and
//!   relocation on growth;
//! * [`codec`] — little-endian primitive readers/writers used by the object
//!   serializer in `corion-core`.
//!
//! The substrate is deliberately synchronous and single-node: the paper's
//! claims about clustering and locking are about algorithmic shape (page
//! I/Os saved, locks acquired), which this layer makes observable.

//! ```
//! use corion_storage::{ObjectStore, StoreConfig};
//!
//! let mut store = ObjectStore::new(StoreConfig::default());
//! let seg = store.create_segment();
//! let parent = store.insert(seg, b"assembly", None).unwrap();
//! // The `near` hint is the paper's `:parent` clustering directive.
//! let child = store.insert(seg, b"component", Some(parent)).unwrap();
//! assert_eq!(parent.page, child.page);
//! ```

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod page;
pub mod segment;
pub mod store;

pub use buffer::{BufferPool, BufferStats};
pub use disk::{DiskStats, SimDisk};
pub use error::{StorageError, StorageResult};
pub use page::{Page, SlotId, PAGE_SIZE};
pub use segment::{Segment, SegmentId};
pub use store::{ObjectStore, PhysId, StoreConfig};
