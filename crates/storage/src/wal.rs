//! Write-ahead log: checksummed, sequence-numbered redo records.
//!
//! Atomicity in CORION is page-granular physical redo. Every atomic batch
//! appends the *after-image* of each page it dirtied, then a commit marker;
//! only once those records are durable are the pages themselves written to
//! disk (`store.rs` enforces the matching *no-steal* buffer policy, so the
//! disk never holds uncommitted data and recovery never needs undo).
//!
//! ## Record format
//!
//! ```text
//! +-----------+---------+--------+---------+-------------+
//! | len: u32  | lsn:u64 | kind:u8| payload | checksum:u64|
//! +-----------+---------+--------+---------+-------------+
//!              \_________ checksummed ____/
//! ```
//!
//! `len` counts every byte after the length field (so a reader can skip a
//! record it cannot parse), `lsn` is a strictly increasing log sequence
//! number, and `checksum` is FNV-1a 64 over `lsn‖kind‖payload`. Record
//! kinds: page after-image, page *delta* (byte-range diff against the last
//! logged image of the same page — cuts log volume on update-heavy mixes),
//! commit marker, segment create/adopt (metadata redo), and checkpoint (a
//! segment-directory snapshot that lets the log be truncated).
//!
//! ## Crash model
//!
//! The log has two regions, mirroring the volatile/durable split of the
//! simulated disk: `pending` bytes (appended but not yet flushed — lost in
//! a crash, possibly *partially* flushed in a torn crash) and `durable`
//! bytes (survive any crash). [`Wal::scan`] walks the durable region and
//! stops at the first record that is truncated, checksum-corrupt, or out of
//! LSN sequence; records after the last commit marker belong to an
//! uncommitted batch. Both tails are reported so recovery can truncate them
//! instead of replaying garbage.

use std::collections::BTreeMap;

use crate::codec::{put_bytes, put_u32, put_u64, put_u8, put_varint, Reader};
use crate::page::{Page, PAGE_SIZE};
use crate::segment::SegmentId;

/// Log sequence number of a record.
pub type Lsn = u64;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_SEG_CREATE: u8 = 3;
const KIND_SEG_ADOPT: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;
const KIND_PAGE_DELTA: u8 = 6;

/// Bytes of a record that are not payload: length field, lsn, kind,
/// trailing checksum.
const RECORD_OVERHEAD: usize = 4 + 8 + 1 + 8;

/// Upper bound on a sane record length — anything larger is corruption
/// masquerading as a length field. The largest legitimate payload is a
/// checkpoint snapshot, which grows with the database; page images are the
/// largest *fixed-size* records. Scans treat this as a plausibility filter
/// only for non-checkpoint kinds, so it is deliberately generous.
const MAX_SANE_RECORD: usize = 64 * 1024 * 1024;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Complete after-image of a page, applied on redo.
    PageImage {
        /// Global page number.
        page: u64,
        /// The page contents at commit time.
        image: Box<Page>,
    },
    /// Byte-range diff of a page against its *last logged* image (the most
    /// recent `PageImage`/`PageDelta` for the same page in this log, which
    /// a well-formed log always contains — `store.rs` logs a full image
    /// whenever it has no base). Replay applies the ranges on top of the
    /// reconstructed base; a delta whose base is missing is skipped, which
    /// can only happen in a hand-built log.
    PageDelta {
        /// Global page number.
        page: u64,
        /// Differing byte runs: `(offset, replacement bytes)`, ascending,
        /// non-overlapping, within [`PAGE_SIZE`].
        ranges: Vec<(u32, Vec<u8>)>,
    },
    /// Marks every record since the previous commit as one durable batch.
    Commit,
    /// A segment came into existence.
    SegCreate {
        /// The new segment's id.
        segment: SegmentId,
    },
    /// A freshly allocated page joined a segment.
    SegAdopt {
        /// Owning segment.
        segment: SegmentId,
        /// Global page number adopted.
        page: u64,
    },
    /// Snapshot of the segment directory, written when the log is
    /// truncated. Replay starts from the most recent one.
    Checkpoint {
        /// `ObjectStore::next_segment` at checkpoint time.
        next_segment: u32,
        /// Every segment with its pages in adoption order.
        segments: Vec<(SegmentId, Vec<u64>)>,
    },
}

/// FNV-1a 64-bit — the record checksum. Hand-rolled (like every on-disk
/// codec here, DESIGN.md §6); not cryptographic, but it reliably catches
/// the torn writes and bit flips the crash model produces.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Differing byte runs between two page images, in the representation
/// [`WalRecord::PageDelta`] logs. Runs closer than a few bytes are merged
/// so the per-range framing overhead never exceeds the bytes it saves.
pub fn diff_pages(base: &Page, new: &Page) -> Vec<(u32, Vec<u8>)> {
    /// Equal-byte gaps shorter than this are absorbed into the surrounding
    /// run (each separate range costs ~4 bytes of framing).
    const MERGE_GAP: usize = 8;
    let a = base.as_bytes();
    let b = new.as_bytes();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < PAGE_SIZE {
        if a[i] == b[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1;
        let mut j = i + 1;
        let mut run_of_equal = 0usize;
        while j < PAGE_SIZE && run_of_equal < MERGE_GAP {
            if a[j] == b[j] {
                run_of_equal += 1;
            } else {
                end = j + 1;
                run_of_equal = 0;
            }
            j += 1;
        }
        ranges.push((start as u32, b[start..end].to_vec()));
        i = end;
    }
    ranges
}

/// Applies a [`WalRecord::PageDelta`] range list on top of `base`,
/// producing the after-image. Ranges are validated at decode time, so this
/// never reads out of bounds on a scanned record.
pub fn apply_delta(base: &Page, ranges: &[(u32, Vec<u8>)]) -> Page {
    let mut raw = *base.as_bytes();
    for (offset, bytes) in ranges {
        let start = (*offset as usize).min(PAGE_SIZE);
        let end = (start + bytes.len()).min(PAGE_SIZE);
        raw[start..end].copy_from_slice(&bytes[..end - start]);
    }
    Page::from_bytes(&raw)
}

/// Encoded payload size of a delta with these ranges — what `store.rs`
/// compares against a full image before choosing the record kind.
pub fn delta_encoded_len(ranges: &[(u32, Vec<u8>)]) -> usize {
    // page u64 + range count varint + per range (offset varint ≤ 2 bytes
    // for PAGE_SIZE, length varint ≤ 2, bytes). Slightly conservative.
    8 + 2 + ranges.iter().map(|(_, b)| 4 + b.len()).sum::<usize>()
}

/// A position in the pending region plus the LSN counter at that point.
/// [`Wal::rollback_to`] restores both, so an aborted batch leaves no LSN
/// gap behind — a gap would make a later scan reject every record after it
/// as out-of-sequence, silently losing committed batches.
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    pending_len: usize,
    next_lsn: Lsn,
}

/// Counters describing the log, surfaced through
/// `ObjectStore::wal_stats` next to the buffer/disk counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes that would survive a crash right now.
    pub durable_bytes: usize,
    /// Bytes appended but not yet flushed.
    pub pending_bytes: usize,
    /// Records appended over the log's lifetime.
    pub records_appended: u64,
    /// Successful flushes (durability points reached).
    pub flushes: u64,
    /// Checkpoints installed (log truncations).
    pub checkpoints: u64,
    /// The next LSN to be assigned.
    pub next_lsn: Lsn,
}

/// Result of scanning the durable log at recovery time.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Fully committed batches, oldest first; each ends at a commit marker
    /// (the marker itself is not included).
    pub committed: Vec<Vec<WalRecord>>,
    /// Length of the durable prefix covered by committed batches; recovery
    /// truncates the log here.
    pub valid_len: usize,
    /// Whole records discarded past `valid_len` (an uncommitted tail).
    pub discarded_records: usize,
    /// True when the scan stopped at a torn or corrupt record rather than
    /// the clean end of the log.
    pub torn_tail: bool,
    /// The LSN after the last record *retained* by recovery, i.e. the end
    /// of the committed prefix at `valid_len`. Recovery truncates the log
    /// to `valid_len` and must continue numbering contiguously from the
    /// last retained record — counting discarded-tail records here would
    /// leave an LSN gap that a later scan rejects as out-of-sequence,
    /// losing every batch committed after the gap.
    pub next_lsn: Lsn,
}

/// The in-memory write-ahead log.
///
/// Durability is simulated the same way [`crate::disk::SimDisk`] simulates
/// a disk: `durable` is the byte vector that survives a crash, `pending`
/// the not-yet-flushed tail that a crash loses (or, torn, partially keeps).
pub struct Wal {
    durable: Vec<u8>,
    pending: Vec<u8>,
    next_lsn: Lsn,
    records_appended: u64,
    flushes: u64,
    checkpoints: u64,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Wal {
    /// Creates an empty log; LSNs start at 1.
    pub fn new() -> Self {
        Wal {
            durable: Vec::new(),
            pending: Vec::new(),
            next_lsn: 1,
            records_appended: 0,
            flushes: 0,
            checkpoints: 0,
        }
    }

    /// Appends `record` to the pending region, assigning the next LSN.
    pub fn append(&mut self, record: &WalRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records_appended += 1;
        encode_record(&mut self.pending, lsn, record);
        lsn
    }

    /// The durability point: all pending bytes survive any later crash.
    pub fn flush(&mut self) {
        self.durable.extend_from_slice(&self.pending);
        self.pending.clear();
        self.flushes += 1;
    }

    /// A torn flush: only the first `keep` pending bytes reach durable
    /// storage before the crash; the rest are lost.
    pub fn flush_torn(&mut self, keep: usize) {
        let keep = keep.min(self.pending.len());
        self.durable.extend_from_slice(&self.pending[..keep]);
        self.pending.clear();
    }

    /// Drops the pending region (a crash, or an aborted batch).
    pub fn drop_pending(&mut self) {
        self.pending.clear();
    }

    /// Captures the current end of the pending region and the LSN counter.
    /// Invalidated by any flush; only [`Wal::rollback_to`] consumes it.
    pub fn mark(&self) -> WalMark {
        WalMark {
            pending_len: self.pending.len(),
            next_lsn: self.next_lsn,
        }
    }

    /// Rewinds the pending region and the LSN counter to `mark`, erasing
    /// every record appended since. Used by batch abort: unlike
    /// [`Wal::drop_pending`] it keeps earlier unflushed records (a group
    /// window) intact and reuses the erased LSNs, so the durable sequence
    /// stays contiguous without a recovery in between.
    pub fn rollback_to(&mut self, mark: WalMark) {
        debug_assert!(
            mark.pending_len <= self.pending.len() && mark.next_lsn <= self.next_lsn,
            "mark does not precede the current log position"
        );
        self.pending.truncate(mark.pending_len);
        self.next_lsn = mark.next_lsn;
    }

    /// Atomically replaces the whole log with a checkpoint batch. Real
    /// systems achieve this by writing a fresh log file and renaming it
    /// over the old one, which is why no crash point exists *inside* a
    /// checkpoint: the swap is a single atomic step in this model too.
    pub fn install_checkpoint(&mut self, next_segment: u32, segments: Vec<(SegmentId, Vec<u64>)>) {
        self.pending.clear();
        self.durable.clear();
        let lsn = self.next_lsn;
        self.next_lsn += 2;
        self.records_appended += 2;
        encode_record(
            &mut self.durable,
            lsn,
            &WalRecord::Checkpoint {
                next_segment,
                segments,
            },
        );
        encode_record(&mut self.durable, lsn + 1, &WalRecord::Commit);
        self.checkpoints += 1;
    }

    /// Truncates the durable region to `len` bytes (discarding a torn or
    /// uncommitted tail found by [`Wal::scan`]).
    pub fn truncate_durable(&mut self, len: usize) {
        self.durable.truncate(len);
    }

    /// Forces the LSN counter (recovery sets it from [`WalScan::next_lsn`]).
    pub fn set_next_lsn(&mut self, lsn: Lsn) {
        self.next_lsn = lsn;
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            durable_bytes: self.durable.len(),
            pending_bytes: self.pending.len(),
            records_appended: self.records_appended,
            flushes: self.flushes,
            checkpoints: self.checkpoints,
            next_lsn: self.next_lsn,
        }
    }

    /// XORs one durable byte with `mask` — the bit-flip injection hook for
    /// checksum-rejection tests.
    pub fn corrupt_durable_byte(&mut self, offset: usize, mask: u8) {
        if let Some(b) = self.durable.get_mut(offset) {
            *b ^= mask;
        }
    }

    /// Walks the durable region, collecting committed batches and locating
    /// the torn/uncommitted tail. Never fails: corruption terminates the
    /// scan instead of propagating.
    pub fn scan(&self) -> WalScan {
        let buf = &self.durable;
        let mut committed = Vec::new();
        let mut batch = Vec::new();
        let mut discarded = 0usize;
        let mut valid_len = 0usize;
        let mut torn_tail = false;
        let mut offset = 0usize;
        let mut expect_lsn: Option<Lsn> = None;
        let mut next_lsn = self.next_lsn.max(1);

        while offset < buf.len() {
            match decode_record(&buf[offset..], expect_lsn) {
                Ok((lsn, record, consumed)) => {
                    expect_lsn = Some(lsn + 1);
                    offset += consumed;
                    match record {
                        WalRecord::Commit => {
                            committed.push(std::mem::take(&mut batch));
                            valid_len = offset;
                            // Only commits advance the reported next LSN:
                            // recovery truncates everything past the last
                            // commit, so LSNs of discarded records must be
                            // reused to keep the sequence contiguous.
                            next_lsn = lsn + 1;
                        }
                        rec => batch.push(rec),
                    }
                }
                Err(_) => {
                    torn_tail = true;
                    break;
                }
            }
        }
        // Records past the last commit marker — a batch whose durability
        // point was never reached — are discarded along with any torn tail.
        discarded += batch.len();
        WalScan {
            committed,
            valid_len,
            discarded_records: discarded,
            torn_tail,
            next_lsn,
        }
    }
}

fn encode_record(buf: &mut Vec<u8>, lsn: Lsn, record: &WalRecord) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    let body_at = buf.len();
    put_u64(buf, lsn);
    match record {
        WalRecord::PageImage { page, image } => {
            put_u8(buf, KIND_PAGE_IMAGE);
            put_u64(buf, *page);
            buf.extend_from_slice(&image.as_bytes()[..]);
        }
        WalRecord::PageDelta { page, ranges } => {
            put_u8(buf, KIND_PAGE_DELTA);
            put_u64(buf, *page);
            put_varint(buf, ranges.len() as u64);
            for (offset, bytes) in ranges {
                put_varint(buf, u64::from(*offset));
                put_bytes(buf, bytes);
            }
        }
        WalRecord::Commit => put_u8(buf, KIND_COMMIT),
        WalRecord::SegCreate { segment } => {
            put_u8(buf, KIND_SEG_CREATE);
            put_u32(buf, segment.0);
        }
        WalRecord::SegAdopt { segment, page } => {
            put_u8(buf, KIND_SEG_ADOPT);
            put_u32(buf, segment.0);
            put_u64(buf, *page);
        }
        WalRecord::Checkpoint {
            next_segment,
            segments,
        } => {
            put_u8(buf, KIND_CHECKPOINT);
            put_u32(buf, *next_segment);
            put_varint(buf, segments.len() as u64);
            for (seg, pages) in segments {
                put_u32(buf, seg.0);
                put_varint(buf, pages.len() as u64);
                for &p in pages {
                    put_u64(buf, p);
                }
            }
        }
    }
    let checksum = fnv1a64(&buf[body_at..]);
    put_u64(buf, checksum);
    let total = (buf.len() - body_at) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&total.to_le_bytes());
}

/// Decodes one record from the front of `buf`. `expect_lsn` enforces the
/// strictly-increasing sequence (`None` accepts any starting LSN, for the
/// first record after a checkpoint truncation). Returns the LSN, the
/// record, and the total bytes consumed.
fn decode_record(
    buf: &[u8],
    expect_lsn: Option<Lsn>,
) -> Result<(Lsn, WalRecord, usize), &'static str> {
    if buf.len() < 4 {
        return Err("truncated length");
    }
    let total = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if !(RECORD_OVERHEAD - 4..=MAX_SANE_RECORD).contains(&total) {
        return Err("implausible length");
    }
    if buf.len() < 4 + total {
        return Err("truncated record");
    }
    let body = &buf[4..4 + total - 8];
    let stored = u64::from_le_bytes(buf[4 + total - 8..4 + total].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err("checksum mismatch");
    }
    let mut r = Reader::new(body);
    let lsn = r.u64("wal lsn").map_err(|_| "short body")?;
    if let Some(want) = expect_lsn {
        if lsn != want {
            return Err("lsn out of sequence");
        }
    }
    let kind = r.u8("wal kind").map_err(|_| "short body")?;
    let record = match kind {
        KIND_PAGE_IMAGE => {
            let page = r.u64("wal page").map_err(|_| "short body")?;
            if r.remaining() != PAGE_SIZE {
                return Err("bad image size");
            }
            let mut raw = [0u8; PAGE_SIZE];
            raw.copy_from_slice(&body[body.len() - PAGE_SIZE..]);
            WalRecord::PageImage {
                page,
                image: Box::new(Page::from_bytes(&raw)),
            }
        }
        KIND_PAGE_DELTA => {
            let page = r.u64("wal page").map_err(|_| "short body")?;
            let nranges = r.varint("wal delta").map_err(|_| "short body")? as usize;
            if nranges > PAGE_SIZE {
                return Err("implausible delta range count");
            }
            let mut ranges = Vec::with_capacity(nranges);
            for _ in 0..nranges {
                let offset = r.varint("wal delta").map_err(|_| "short body")? as usize;
                let bytes = r.bytes("wal delta").map_err(|_| "short body")?;
                if offset + bytes.len() > PAGE_SIZE {
                    return Err("delta range out of bounds");
                }
                ranges.push((offset as u32, bytes.to_vec()));
            }
            WalRecord::PageDelta { page, ranges }
        }
        KIND_COMMIT => WalRecord::Commit,
        KIND_SEG_CREATE => WalRecord::SegCreate {
            segment: SegmentId(r.u32("wal seg").map_err(|_| "short body")?),
        },
        KIND_SEG_ADOPT => WalRecord::SegAdopt {
            segment: SegmentId(r.u32("wal seg").map_err(|_| "short body")?),
            page: r.u64("wal page").map_err(|_| "short body")?,
        },
        KIND_CHECKPOINT => {
            let next_segment = r.u32("wal ckpt").map_err(|_| "short body")?;
            let nsegs = r.varint("wal ckpt").map_err(|_| "short body")? as usize;
            let mut segments = Vec::with_capacity(nsegs.min(1024));
            for _ in 0..nsegs {
                let seg = SegmentId(r.u32("wal ckpt").map_err(|_| "short body")?);
                let npages = r.varint("wal ckpt").map_err(|_| "short body")? as usize;
                let mut pages = Vec::with_capacity(npages.min(1024));
                for _ in 0..npages {
                    pages.push(r.u64("wal ckpt").map_err(|_| "short body")?);
                }
                segments.push((seg, pages));
            }
            WalRecord::Checkpoint {
                next_segment,
                segments,
            }
        }
        _ => return Err("unknown kind"),
    };
    Ok((lsn, record, 4 + total))
}

/// Replays a scan's committed batches into a fresh view of the world:
/// the final image of every page plus the rebuilt segment directory.
/// `store.rs` uses this for recovery proper; it is exposed so tests can
/// check replay semantics without a store.
pub fn replay(scan: &WalScan) -> ReplayState {
    let mut state = ReplayState::default();
    for batch in &scan.committed {
        for rec in batch {
            match rec {
                WalRecord::PageImage { page, image } => {
                    state.pages.insert(*page, (**image).clone());
                }
                WalRecord::PageDelta { page, ranges } => {
                    // A well-formed log always logs a full image before the
                    // first delta of a page (and checkpoints truncate both
                    // together), so the base is present; a delta without
                    // one is a hand-built log and is skipped.
                    if let Some(base) = state.pages.get(page) {
                        let after = apply_delta(base, ranges);
                        state.pages.insert(*page, after);
                    }
                }
                WalRecord::Commit => {}
                WalRecord::SegCreate { segment } => {
                    state.segments.insert(*segment, Vec::new());
                    state.next_segment = state.next_segment.max(segment.0 + 1);
                }
                WalRecord::SegAdopt { segment, page } => {
                    state.segments.entry(*segment).or_default().push(*page);
                }
                WalRecord::Checkpoint {
                    next_segment,
                    segments,
                } => {
                    state.segments.clear();
                    for (seg, pages) in segments {
                        state.segments.insert(*seg, pages.clone());
                    }
                    state.next_segment = *next_segment;
                }
            }
        }
    }
    state
}

/// The world according to the committed log: what [`replay`] produces.
#[derive(Debug, Default)]
pub struct ReplayState {
    /// Final committed image of every page the log mentions.
    pub pages: BTreeMap<u64, Page>,
    /// Segment directory (pages in adoption order).
    pub segments: BTreeMap<SegmentId, Vec<u64>>,
    /// Lowest safe value for `ObjectStore::next_segment`.
    pub next_segment: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with_byte(b: u8) -> Page {
        let mut raw = [0u8; PAGE_SIZE];
        raw[100] = b;
        Page::from_bytes(&raw)
    }

    fn committed_batch(wal: &mut Wal, pages: &[(u64, u8)]) {
        for &(p, b) in pages {
            wal.append(&WalRecord::PageImage {
                page: p,
                image: Box::new(page_with_byte(b)),
            });
        }
        wal.append(&WalRecord::Commit);
        wal.flush();
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::SegCreate {
            segment: SegmentId(3),
        });
        wal.append(&WalRecord::SegAdopt {
            segment: SegmentId(3),
            page: 9,
        });
        wal.append(&WalRecord::PageImage {
            page: 9,
            image: Box::new(page_with_byte(0xaa)),
        });
        wal.append(&WalRecord::Checkpoint {
            next_segment: 4,
            segments: vec![(SegmentId(3), vec![9, 10])],
        });
        wal.append(&WalRecord::Commit);
        wal.flush();

        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.discarded_records, 0);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, wal.stats().durable_bytes);
        assert_eq!(scan.next_lsn, 6);
        let batch = &scan.committed[0];
        assert_eq!(batch.len(), 4);
        assert!(matches!(
            batch[0],
            WalRecord::SegCreate {
                segment: SegmentId(3)
            }
        ));
        assert!(
            matches!(&batch[2], WalRecord::PageImage { page: 9, image } if image.as_bytes()[100] == 0xaa)
        );
    }

    #[test]
    fn pending_bytes_are_lost_without_flush() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.append(&WalRecord::Commit);
        // No flush: the crash loses the second batch entirely.
        wal.drop_pending();
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn uncommitted_tail_is_discarded_not_replayed() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        // A batch whose images were flushed but whose commit never was.
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.flush();
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.discarded_records, 1);
        assert!(!scan.torn_tail, "well-formed records, just uncommitted");
        assert!(scan.valid_len < wal.stats().durable_bytes);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn torn_flush_keeps_only_a_prefix() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        let before = wal.stats().durable_bytes;
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.append(&WalRecord::Commit);
        wal.flush_torn(10); // a few bytes of the image record
        let scan = wal.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, before);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn every_torn_prefix_of_a_batch_preserves_the_previous_commit() {
        let mut reference = Wal::new();
        reference.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        reference.append(&WalRecord::Commit);
        let full = reference.stats().pending_bytes;

        for keep in 0..full {
            let mut wal = Wal::new();
            committed_batch(&mut wal, &[(0, 1)]);
            wal.append(&WalRecord::PageImage {
                page: 0,
                image: Box::new(page_with_byte(2)),
            });
            wal.append(&WalRecord::Commit);
            wal.flush_torn(keep);
            let scan = wal.scan();
            assert_eq!(scan.committed.len(), 1, "keep={keep}");
            assert_eq!(
                replay(&scan).pages[&0].as_bytes()[100],
                1,
                "keep={keep}: must see the previous commit only"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_in_a_record_is_rejected() {
        // Flip one bit in each interesting region of the last record:
        // length field, lsn, kind, payload, checksum.
        let mut base = Wal::new();
        committed_batch(&mut base, &[(0, 1)]);
        let first_len = base.stats().durable_bytes;
        committed_batch(&mut base, &[(0, 2)]);
        let total = base.stats().durable_bytes;

        for offset in first_len..total {
            let mut wal = Wal::new();
            committed_batch(&mut wal, &[(0, 1)]);
            committed_batch(&mut wal, &[(0, 2)]);
            wal.corrupt_durable_byte(offset, 0x40);
            let scan = wal.scan();
            assert!(scan.torn_tail, "offset {offset} not detected");
            assert_eq!(scan.committed.len(), 1, "offset {offset}");
            assert_eq!(scan.valid_len, first_len, "offset {offset}");
            assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
        }
    }

    #[test]
    fn lsn_regression_terminates_the_scan() {
        // Splice a stale-but-valid record after a newer one by rebuilding
        // durable bytes out of order.
        let mut a = Wal::new();
        committed_batch(&mut a, &[(0, 1)]); // lsn 1,2
        let mut b = Wal::new();
        committed_batch(&mut b, &[(0, 9)]); // lsn 1,2 again
        let mut spliced = Wal::new();
        committed_batch(&mut spliced, &[(0, 1)]);
        // Append a replayed copy of b's bytes: checksums pass, LSNs repeat.
        let stale = b.durable.clone();
        spliced.durable.extend_from_slice(&stale);
        let scan = spliced.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn checkpoint_resets_replay_state() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1), (1, 2)]);
        wal.install_checkpoint(2, vec![(SegmentId(0), vec![0, 1])]);
        committed_batch(&mut wal, &[(1, 3)]);
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 2, "checkpoint batch + one more");
        let state = replay(&scan);
        assert_eq!(state.next_segment, 2);
        assert_eq!(state.segments[&SegmentId(0)], vec![0, 1]);
        // Page 0's image predates the checkpoint: the checkpoint guarantees
        // the *disk* already holds it, so replay has nothing for it.
        assert!(!state.pages.contains_key(&0));
        assert_eq!(state.pages[&1].as_bytes()[100], 3);
    }

    #[test]
    fn stats_track_appends_flushes_checkpoints() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        wal.install_checkpoint(1, vec![]);
        let s = wal.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.records_appended, 4);
        assert_eq!(s.pending_bytes, 0);
        assert_eq!(s.next_lsn, 5);
    }

    #[test]
    fn next_lsn_skips_discarded_tail_so_recovery_stays_contiguous() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]); // lsn 1 (image), 2 (commit)
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        }); // lsn 3: flushed but never committed
        wal.flush();

        let scan = wal.scan();
        assert_eq!(scan.discarded_records, 1);
        assert_eq!(
            scan.next_lsn, 3,
            "next_lsn must follow the retained prefix, not the discarded tail"
        );

        // Recovery truncates the tail and renumbers from the scan; the
        // next committed batch must survive a second scan with no gap.
        wal.truncate_durable(scan.valid_len);
        wal.set_next_lsn(scan.next_lsn);
        committed_batch(&mut wal, &[(1, 9)]);
        let rescan = wal.scan();
        assert!(!rescan.torn_tail, "LSN gap after recovery");
        assert_eq!(rescan.committed.len(), 2);
        assert_eq!(replay(&rescan).pages[&1].as_bytes()[100], 9);
    }

    /// Deterministic byte-mutator for the delta tests (no external RNG in
    /// unit tests): a xorshift walk over offsets and values.
    fn mutate(page: &mut Page, seed: u64, edits: usize) {
        let mut raw = *page.as_bytes();
        let mut s = seed | 1;
        for _ in 0..edits {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let at = (s as usize) % PAGE_SIZE;
            raw[at] = raw[at].wrapping_add((s >> 32) as u8).wrapping_add(1);
        }
        *page = Page::from_bytes(&raw);
    }

    #[test]
    fn diff_apply_roundtrips_arbitrary_mutations() {
        let mut base = page_with_byte(1);
        for round in 0..64u64 {
            let mut next = base.clone();
            mutate(&mut next, round * 7 + 3, (round as usize % 40) + 1);
            let ranges = diff_pages(&base, &next);
            assert_eq!(apply_delta(&base, &ranges), next, "round {round}");
            assert!(
                delta_encoded_len(&ranges) < PAGE_SIZE,
                "a {}-edit delta must beat a full image",
                round % 40 + 1
            );
            base = next;
        }
        // Identical pages diff to nothing.
        assert!(diff_pages(&base, &base.clone()).is_empty());
    }

    #[test]
    fn delta_record_roundtrips_through_the_log() {
        let mut wal = Wal::new();
        let base = page_with_byte(1);
        let mut next = base.clone();
        mutate(&mut next, 42, 5);
        wal.append(&WalRecord::PageImage {
            page: 3,
            image: Box::new(base.clone()),
        });
        wal.append(&WalRecord::PageDelta {
            page: 3,
            ranges: diff_pages(&base, &next),
        });
        wal.append(&WalRecord::Commit);
        wal.flush();
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert!(!scan.torn_tail);
        assert_eq!(replay(&scan).pages[&3], next);
    }

    #[test]
    fn delta_replay_is_equivalent_to_full_image_replay() {
        // The same mutation history logged twice — full images vs
        // image-then-deltas — must replay to identical final pages.
        let mut full = Wal::new();
        let mut delta = Wal::new();
        let mut pages: Vec<Page> = (0..4).map(|i| page_with_byte(i as u8)).collect();
        for (i, p) in pages.iter().enumerate() {
            for w in [&mut full, &mut delta] {
                w.append(&WalRecord::PageImage {
                    page: i as u64,
                    image: Box::new(p.clone()),
                });
            }
        }
        for w in [&mut full, &mut delta] {
            w.append(&WalRecord::Commit);
            w.flush();
        }
        for round in 0..32u64 {
            let target = (round as usize) % pages.len();
            let before = pages[target].clone();
            mutate(&mut pages[target], round + 99, (round as usize % 20) + 1);
            full.append(&WalRecord::PageImage {
                page: target as u64,
                image: Box::new(pages[target].clone()),
            });
            delta.append(&WalRecord::PageDelta {
                page: target as u64,
                ranges: diff_pages(&before, &pages[target]),
            });
            for w in [&mut full, &mut delta] {
                w.append(&WalRecord::Commit);
                w.flush();
            }
        }
        let full_state = replay(&full.scan());
        let delta_state = replay(&delta.scan());
        assert_eq!(full_state.pages, delta_state.pages);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(&full_state.pages[&(i as u64)], p);
        }
        assert!(
            delta.stats().durable_bytes < full.stats().durable_bytes / 2,
            "deltas must at least halve the log volume on this mix \
             ({} vs {} bytes)",
            delta.stats().durable_bytes,
            full.stats().durable_bytes
        );
    }

    #[test]
    fn torn_flush_of_a_delta_batch_preserves_the_base_commit() {
        let base = page_with_byte(1);
        let mut next = base.clone();
        mutate(&mut next, 7, 3);
        let ranges = diff_pages(&base, &next);

        let mut probe = Wal::new();
        probe.append(&WalRecord::PageDelta {
            page: 0,
            ranges: ranges.clone(),
        });
        probe.append(&WalRecord::Commit);
        let full = probe.stats().pending_bytes;

        for keep in 0..full {
            let mut wal = Wal::new();
            wal.append(&WalRecord::PageImage {
                page: 0,
                image: Box::new(base.clone()),
            });
            wal.append(&WalRecord::Commit);
            wal.flush();
            wal.append(&WalRecord::PageDelta {
                page: 0,
                ranges: ranges.clone(),
            });
            wal.append(&WalRecord::Commit);
            wal.flush_torn(keep);
            let scan = wal.scan();
            assert_eq!(scan.committed.len(), 1, "keep={keep}");
            assert_eq!(replay(&scan).pages[&0], base, "keep={keep}");
        }
    }

    #[test]
    fn delta_without_a_base_is_skipped_not_misapplied() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::PageDelta {
            page: 5,
            ranges: vec![(100, vec![9])],
        });
        wal.append(&WalRecord::Commit);
        wal.flush();
        let state = replay(&wal.scan());
        assert!(!state.pages.contains_key(&5));
    }

    #[test]
    fn rollback_to_mark_reuses_lsns_and_keeps_earlier_pending() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]); // durable: lsn 1,2
        wal.append(&WalRecord::SegCreate {
            segment: SegmentId(1),
        }); // pending group window: lsn 3
        let mark = wal.mark();
        wal.append(&WalRecord::SegAdopt {
            segment: SegmentId(1),
            page: 7,
        }); // lsn 4, about to be aborted
        wal.rollback_to(mark);
        assert_eq!(wal.stats().next_lsn, 4, "aborted LSN is reused");
        // The earlier pending record survived the abort; commit it.
        wal.append(&WalRecord::Commit); // lsn 4
        wal.flush();
        let scan = wal.scan();
        assert!(!scan.torn_tail, "no LSN gap after an abort");
        assert_eq!(scan.committed.len(), 2);
        assert!(matches!(
            scan.committed[1][0],
            WalRecord::SegCreate {
                segment: SegmentId(1)
            }
        ));
        assert_eq!(scan.committed[1].len(), 1, "aborted record not replayed");
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = Wal::new().scan();
        assert!(scan.committed.is_empty());
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.next_lsn, 1);
    }
}
