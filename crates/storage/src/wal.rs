//! Write-ahead log: checksummed, sequence-numbered redo records.
//!
//! Atomicity in CORION is page-granular physical redo. Every atomic batch
//! appends the *after-image* of each page it dirtied, then a commit marker;
//! only once those records are durable are the pages themselves written to
//! disk (`store.rs` enforces the matching *no-steal* buffer policy, so the
//! disk never holds uncommitted data and recovery never needs undo).
//!
//! ## Record format
//!
//! ```text
//! +-----------+---------+--------+---------+-------------+
//! | len: u32  | lsn:u64 | kind:u8| payload | checksum:u64|
//! +-----------+---------+--------+---------+-------------+
//!              \_________ checksummed ____/
//! ```
//!
//! `len` counts every byte after the length field (so a reader can skip a
//! record it cannot parse), `lsn` is a strictly increasing log sequence
//! number, and `checksum` is FNV-1a 64 over `lsn‖kind‖payload`. Record
//! kinds: page after-image, commit marker, segment create/adopt (metadata
//! redo), and checkpoint (a segment-directory snapshot that lets the log be
//! truncated).
//!
//! ## Crash model
//!
//! The log has two regions, mirroring the volatile/durable split of the
//! simulated disk: `pending` bytes (appended but not yet flushed — lost in
//! a crash, possibly *partially* flushed in a torn crash) and `durable`
//! bytes (survive any crash). [`Wal::scan`] walks the durable region and
//! stops at the first record that is truncated, checksum-corrupt, or out of
//! LSN sequence; records after the last commit marker belong to an
//! uncommitted batch. Both tails are reported so recovery can truncate them
//! instead of replaying garbage.

use std::collections::BTreeMap;

use crate::codec::{put_u32, put_u64, put_u8, put_varint, Reader};
use crate::page::{Page, PAGE_SIZE};
use crate::segment::SegmentId;

/// Log sequence number of a record.
pub type Lsn = u64;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_SEG_CREATE: u8 = 3;
const KIND_SEG_ADOPT: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;

/// Bytes of a record that are not payload: length field, lsn, kind,
/// trailing checksum.
const RECORD_OVERHEAD: usize = 4 + 8 + 1 + 8;

/// Upper bound on a sane record length — anything larger is corruption
/// masquerading as a length field. The largest legitimate payload is a
/// checkpoint snapshot, which grows with the database; page images are the
/// largest *fixed-size* records. Scans treat this as a plausibility filter
/// only for non-checkpoint kinds, so it is deliberately generous.
const MAX_SANE_RECORD: usize = 64 * 1024 * 1024;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Complete after-image of a page, applied on redo.
    PageImage {
        /// Global page number.
        page: u64,
        /// The page contents at commit time.
        image: Box<Page>,
    },
    /// Marks every record since the previous commit as one durable batch.
    Commit,
    /// A segment came into existence.
    SegCreate {
        /// The new segment's id.
        segment: SegmentId,
    },
    /// A freshly allocated page joined a segment.
    SegAdopt {
        /// Owning segment.
        segment: SegmentId,
        /// Global page number adopted.
        page: u64,
    },
    /// Snapshot of the segment directory, written when the log is
    /// truncated. Replay starts from the most recent one.
    Checkpoint {
        /// `ObjectStore::next_segment` at checkpoint time.
        next_segment: u32,
        /// Every segment with its pages in adoption order.
        segments: Vec<(SegmentId, Vec<u64>)>,
    },
}

/// FNV-1a 64-bit — the record checksum. Hand-rolled (like every on-disk
/// codec here, DESIGN.md §6); not cryptographic, but it reliably catches
/// the torn writes and bit flips the crash model produces.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counters describing the log, surfaced through
/// `ObjectStore::wal_stats` next to the buffer/disk counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes that would survive a crash right now.
    pub durable_bytes: usize,
    /// Bytes appended but not yet flushed.
    pub pending_bytes: usize,
    /// Records appended over the log's lifetime.
    pub records_appended: u64,
    /// Successful flushes (durability points reached).
    pub flushes: u64,
    /// Checkpoints installed (log truncations).
    pub checkpoints: u64,
    /// The next LSN to be assigned.
    pub next_lsn: Lsn,
}

/// Result of scanning the durable log at recovery time.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Fully committed batches, oldest first; each ends at a commit marker
    /// (the marker itself is not included).
    pub committed: Vec<Vec<WalRecord>>,
    /// Length of the durable prefix covered by committed batches; recovery
    /// truncates the log here.
    pub valid_len: usize,
    /// Whole records discarded past `valid_len` (an uncommitted tail).
    pub discarded_records: usize,
    /// True when the scan stopped at a torn or corrupt record rather than
    /// the clean end of the log.
    pub torn_tail: bool,
    /// The LSN after the last record *retained* by recovery, i.e. the end
    /// of the committed prefix at `valid_len`. Recovery truncates the log
    /// to `valid_len` and must continue numbering contiguously from the
    /// last retained record — counting discarded-tail records here would
    /// leave an LSN gap that a later scan rejects as out-of-sequence,
    /// losing every batch committed after the gap.
    pub next_lsn: Lsn,
}

/// The in-memory write-ahead log.
///
/// Durability is simulated the same way [`crate::disk::SimDisk`] simulates
/// a disk: `durable` is the byte vector that survives a crash, `pending`
/// the not-yet-flushed tail that a crash loses (or, torn, partially keeps).
pub struct Wal {
    durable: Vec<u8>,
    pending: Vec<u8>,
    next_lsn: Lsn,
    records_appended: u64,
    flushes: u64,
    checkpoints: u64,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Wal {
    /// Creates an empty log; LSNs start at 1.
    pub fn new() -> Self {
        Wal {
            durable: Vec::new(),
            pending: Vec::new(),
            next_lsn: 1,
            records_appended: 0,
            flushes: 0,
            checkpoints: 0,
        }
    }

    /// Appends `record` to the pending region, assigning the next LSN.
    pub fn append(&mut self, record: &WalRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records_appended += 1;
        encode_record(&mut self.pending, lsn, record);
        lsn
    }

    /// The durability point: all pending bytes survive any later crash.
    pub fn flush(&mut self) {
        self.durable.extend_from_slice(&self.pending);
        self.pending.clear();
        self.flushes += 1;
    }

    /// A torn flush: only the first `keep` pending bytes reach durable
    /// storage before the crash; the rest are lost.
    pub fn flush_torn(&mut self, keep: usize) {
        let keep = keep.min(self.pending.len());
        self.durable.extend_from_slice(&self.pending[..keep]);
        self.pending.clear();
    }

    /// Drops the pending region (a crash, or an aborted batch).
    pub fn drop_pending(&mut self) {
        self.pending.clear();
    }

    /// Atomically replaces the whole log with a checkpoint batch. Real
    /// systems achieve this by writing a fresh log file and renaming it
    /// over the old one, which is why no crash point exists *inside* a
    /// checkpoint: the swap is a single atomic step in this model too.
    pub fn install_checkpoint(&mut self, next_segment: u32, segments: Vec<(SegmentId, Vec<u64>)>) {
        self.pending.clear();
        self.durable.clear();
        let lsn = self.next_lsn;
        self.next_lsn += 2;
        self.records_appended += 2;
        encode_record(
            &mut self.durable,
            lsn,
            &WalRecord::Checkpoint {
                next_segment,
                segments,
            },
        );
        encode_record(&mut self.durable, lsn + 1, &WalRecord::Commit);
        self.checkpoints += 1;
    }

    /// Truncates the durable region to `len` bytes (discarding a torn or
    /// uncommitted tail found by [`Wal::scan`]).
    pub fn truncate_durable(&mut self, len: usize) {
        self.durable.truncate(len);
    }

    /// Forces the LSN counter (recovery sets it from [`WalScan::next_lsn`]).
    pub fn set_next_lsn(&mut self, lsn: Lsn) {
        self.next_lsn = lsn;
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            durable_bytes: self.durable.len(),
            pending_bytes: self.pending.len(),
            records_appended: self.records_appended,
            flushes: self.flushes,
            checkpoints: self.checkpoints,
            next_lsn: self.next_lsn,
        }
    }

    /// XORs one durable byte with `mask` — the bit-flip injection hook for
    /// checksum-rejection tests.
    pub fn corrupt_durable_byte(&mut self, offset: usize, mask: u8) {
        if let Some(b) = self.durable.get_mut(offset) {
            *b ^= mask;
        }
    }

    /// Walks the durable region, collecting committed batches and locating
    /// the torn/uncommitted tail. Never fails: corruption terminates the
    /// scan instead of propagating.
    pub fn scan(&self) -> WalScan {
        let buf = &self.durable;
        let mut committed = Vec::new();
        let mut batch = Vec::new();
        let mut discarded = 0usize;
        let mut valid_len = 0usize;
        let mut torn_tail = false;
        let mut offset = 0usize;
        let mut expect_lsn: Option<Lsn> = None;
        let mut next_lsn = self.next_lsn.max(1);

        while offset < buf.len() {
            match decode_record(&buf[offset..], expect_lsn) {
                Ok((lsn, record, consumed)) => {
                    expect_lsn = Some(lsn + 1);
                    offset += consumed;
                    match record {
                        WalRecord::Commit => {
                            committed.push(std::mem::take(&mut batch));
                            valid_len = offset;
                            // Only commits advance the reported next LSN:
                            // recovery truncates everything past the last
                            // commit, so LSNs of discarded records must be
                            // reused to keep the sequence contiguous.
                            next_lsn = lsn + 1;
                        }
                        rec => batch.push(rec),
                    }
                }
                Err(_) => {
                    torn_tail = true;
                    break;
                }
            }
        }
        // Records past the last commit marker — a batch whose durability
        // point was never reached — are discarded along with any torn tail.
        discarded += batch.len();
        WalScan {
            committed,
            valid_len,
            discarded_records: discarded,
            torn_tail,
            next_lsn,
        }
    }
}

fn encode_record(buf: &mut Vec<u8>, lsn: Lsn, record: &WalRecord) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    let body_at = buf.len();
    put_u64(buf, lsn);
    match record {
        WalRecord::PageImage { page, image } => {
            put_u8(buf, KIND_PAGE_IMAGE);
            put_u64(buf, *page);
            buf.extend_from_slice(&image.as_bytes()[..]);
        }
        WalRecord::Commit => put_u8(buf, KIND_COMMIT),
        WalRecord::SegCreate { segment } => {
            put_u8(buf, KIND_SEG_CREATE);
            put_u32(buf, segment.0);
        }
        WalRecord::SegAdopt { segment, page } => {
            put_u8(buf, KIND_SEG_ADOPT);
            put_u32(buf, segment.0);
            put_u64(buf, *page);
        }
        WalRecord::Checkpoint {
            next_segment,
            segments,
        } => {
            put_u8(buf, KIND_CHECKPOINT);
            put_u32(buf, *next_segment);
            put_varint(buf, segments.len() as u64);
            for (seg, pages) in segments {
                put_u32(buf, seg.0);
                put_varint(buf, pages.len() as u64);
                for &p in pages {
                    put_u64(buf, p);
                }
            }
        }
    }
    let checksum = fnv1a64(&buf[body_at..]);
    put_u64(buf, checksum);
    let total = (buf.len() - body_at) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&total.to_le_bytes());
}

/// Decodes one record from the front of `buf`. `expect_lsn` enforces the
/// strictly-increasing sequence (`None` accepts any starting LSN, for the
/// first record after a checkpoint truncation). Returns the LSN, the
/// record, and the total bytes consumed.
fn decode_record(
    buf: &[u8],
    expect_lsn: Option<Lsn>,
) -> Result<(Lsn, WalRecord, usize), &'static str> {
    if buf.len() < 4 {
        return Err("truncated length");
    }
    let total = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if !(RECORD_OVERHEAD - 4..=MAX_SANE_RECORD).contains(&total) {
        return Err("implausible length");
    }
    if buf.len() < 4 + total {
        return Err("truncated record");
    }
    let body = &buf[4..4 + total - 8];
    let stored = u64::from_le_bytes(buf[4 + total - 8..4 + total].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err("checksum mismatch");
    }
    let mut r = Reader::new(body);
    let lsn = r.u64("wal lsn").map_err(|_| "short body")?;
    if let Some(want) = expect_lsn {
        if lsn != want {
            return Err("lsn out of sequence");
        }
    }
    let kind = r.u8("wal kind").map_err(|_| "short body")?;
    let record = match kind {
        KIND_PAGE_IMAGE => {
            let page = r.u64("wal page").map_err(|_| "short body")?;
            if r.remaining() != PAGE_SIZE {
                return Err("bad image size");
            }
            let mut raw = [0u8; PAGE_SIZE];
            raw.copy_from_slice(&body[body.len() - PAGE_SIZE..]);
            WalRecord::PageImage {
                page,
                image: Box::new(Page::from_bytes(&raw)),
            }
        }
        KIND_COMMIT => WalRecord::Commit,
        KIND_SEG_CREATE => WalRecord::SegCreate {
            segment: SegmentId(r.u32("wal seg").map_err(|_| "short body")?),
        },
        KIND_SEG_ADOPT => WalRecord::SegAdopt {
            segment: SegmentId(r.u32("wal seg").map_err(|_| "short body")?),
            page: r.u64("wal page").map_err(|_| "short body")?,
        },
        KIND_CHECKPOINT => {
            let next_segment = r.u32("wal ckpt").map_err(|_| "short body")?;
            let nsegs = r.varint("wal ckpt").map_err(|_| "short body")? as usize;
            let mut segments = Vec::with_capacity(nsegs.min(1024));
            for _ in 0..nsegs {
                let seg = SegmentId(r.u32("wal ckpt").map_err(|_| "short body")?);
                let npages = r.varint("wal ckpt").map_err(|_| "short body")? as usize;
                let mut pages = Vec::with_capacity(npages.min(1024));
                for _ in 0..npages {
                    pages.push(r.u64("wal ckpt").map_err(|_| "short body")?);
                }
                segments.push((seg, pages));
            }
            WalRecord::Checkpoint {
                next_segment,
                segments,
            }
        }
        _ => return Err("unknown kind"),
    };
    Ok((lsn, record, 4 + total))
}

/// Replays a scan's committed batches into a fresh view of the world:
/// the final image of every page plus the rebuilt segment directory.
/// `store.rs` uses this for recovery proper; it is exposed so tests can
/// check replay semantics without a store.
pub fn replay(scan: &WalScan) -> ReplayState {
    let mut state = ReplayState::default();
    for batch in &scan.committed {
        for rec in batch {
            match rec {
                WalRecord::PageImage { page, image } => {
                    state.pages.insert(*page, (**image).clone());
                }
                WalRecord::Commit => {}
                WalRecord::SegCreate { segment } => {
                    state.segments.insert(*segment, Vec::new());
                    state.next_segment = state.next_segment.max(segment.0 + 1);
                }
                WalRecord::SegAdopt { segment, page } => {
                    state.segments.entry(*segment).or_default().push(*page);
                }
                WalRecord::Checkpoint {
                    next_segment,
                    segments,
                } => {
                    state.segments.clear();
                    for (seg, pages) in segments {
                        state.segments.insert(*seg, pages.clone());
                    }
                    state.next_segment = *next_segment;
                }
            }
        }
    }
    state
}

/// The world according to the committed log: what [`replay`] produces.
#[derive(Debug, Default)]
pub struct ReplayState {
    /// Final committed image of every page the log mentions.
    pub pages: BTreeMap<u64, Page>,
    /// Segment directory (pages in adoption order).
    pub segments: BTreeMap<SegmentId, Vec<u64>>,
    /// Lowest safe value for `ObjectStore::next_segment`.
    pub next_segment: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with_byte(b: u8) -> Page {
        let mut raw = [0u8; PAGE_SIZE];
        raw[100] = b;
        Page::from_bytes(&raw)
    }

    fn committed_batch(wal: &mut Wal, pages: &[(u64, u8)]) {
        for &(p, b) in pages {
            wal.append(&WalRecord::PageImage {
                page: p,
                image: Box::new(page_with_byte(b)),
            });
        }
        wal.append(&WalRecord::Commit);
        wal.flush();
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::SegCreate {
            segment: SegmentId(3),
        });
        wal.append(&WalRecord::SegAdopt {
            segment: SegmentId(3),
            page: 9,
        });
        wal.append(&WalRecord::PageImage {
            page: 9,
            image: Box::new(page_with_byte(0xaa)),
        });
        wal.append(&WalRecord::Checkpoint {
            next_segment: 4,
            segments: vec![(SegmentId(3), vec![9, 10])],
        });
        wal.append(&WalRecord::Commit);
        wal.flush();

        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.discarded_records, 0);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, wal.stats().durable_bytes);
        assert_eq!(scan.next_lsn, 6);
        let batch = &scan.committed[0];
        assert_eq!(batch.len(), 4);
        assert!(matches!(
            batch[0],
            WalRecord::SegCreate {
                segment: SegmentId(3)
            }
        ));
        assert!(
            matches!(&batch[2], WalRecord::PageImage { page: 9, image } if image.as_bytes()[100] == 0xaa)
        );
    }

    #[test]
    fn pending_bytes_are_lost_without_flush() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.append(&WalRecord::Commit);
        // No flush: the crash loses the second batch entirely.
        wal.drop_pending();
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn uncommitted_tail_is_discarded_not_replayed() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        // A batch whose images were flushed but whose commit never was.
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.flush();
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.discarded_records, 1);
        assert!(!scan.torn_tail, "well-formed records, just uncommitted");
        assert!(scan.valid_len < wal.stats().durable_bytes);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn torn_flush_keeps_only_a_prefix() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        let before = wal.stats().durable_bytes;
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        wal.append(&WalRecord::Commit);
        wal.flush_torn(10); // a few bytes of the image record
        let scan = wal.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, before);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn every_torn_prefix_of_a_batch_preserves_the_previous_commit() {
        let mut reference = Wal::new();
        reference.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        });
        reference.append(&WalRecord::Commit);
        let full = reference.stats().pending_bytes;

        for keep in 0..full {
            let mut wal = Wal::new();
            committed_batch(&mut wal, &[(0, 1)]);
            wal.append(&WalRecord::PageImage {
                page: 0,
                image: Box::new(page_with_byte(2)),
            });
            wal.append(&WalRecord::Commit);
            wal.flush_torn(keep);
            let scan = wal.scan();
            assert_eq!(scan.committed.len(), 1, "keep={keep}");
            assert_eq!(
                replay(&scan).pages[&0].as_bytes()[100],
                1,
                "keep={keep}: must see the previous commit only"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_in_a_record_is_rejected() {
        // Flip one bit in each interesting region of the last record:
        // length field, lsn, kind, payload, checksum.
        let mut base = Wal::new();
        committed_batch(&mut base, &[(0, 1)]);
        let first_len = base.stats().durable_bytes;
        committed_batch(&mut base, &[(0, 2)]);
        let total = base.stats().durable_bytes;

        for offset in first_len..total {
            let mut wal = Wal::new();
            committed_batch(&mut wal, &[(0, 1)]);
            committed_batch(&mut wal, &[(0, 2)]);
            wal.corrupt_durable_byte(offset, 0x40);
            let scan = wal.scan();
            assert!(scan.torn_tail, "offset {offset} not detected");
            assert_eq!(scan.committed.len(), 1, "offset {offset}");
            assert_eq!(scan.valid_len, first_len, "offset {offset}");
            assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
        }
    }

    #[test]
    fn lsn_regression_terminates_the_scan() {
        // Splice a stale-but-valid record after a newer one by rebuilding
        // durable bytes out of order.
        let mut a = Wal::new();
        committed_batch(&mut a, &[(0, 1)]); // lsn 1,2
        let mut b = Wal::new();
        committed_batch(&mut b, &[(0, 9)]); // lsn 1,2 again
        let mut spliced = Wal::new();
        committed_batch(&mut spliced, &[(0, 1)]);
        // Append a replayed copy of b's bytes: checksums pass, LSNs repeat.
        let stale = b.durable.clone();
        spliced.durable.extend_from_slice(&stale);
        let scan = spliced.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(replay(&scan).pages[&0].as_bytes()[100], 1);
    }

    #[test]
    fn checkpoint_resets_replay_state() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1), (1, 2)]);
        wal.install_checkpoint(2, vec![(SegmentId(0), vec![0, 1])]);
        committed_batch(&mut wal, &[(1, 3)]);
        let scan = wal.scan();
        assert_eq!(scan.committed.len(), 2, "checkpoint batch + one more");
        let state = replay(&scan);
        assert_eq!(state.next_segment, 2);
        assert_eq!(state.segments[&SegmentId(0)], vec![0, 1]);
        // Page 0's image predates the checkpoint: the checkpoint guarantees
        // the *disk* already holds it, so replay has nothing for it.
        assert!(!state.pages.contains_key(&0));
        assert_eq!(state.pages[&1].as_bytes()[100], 3);
    }

    #[test]
    fn stats_track_appends_flushes_checkpoints() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]);
        wal.install_checkpoint(1, vec![]);
        let s = wal.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.records_appended, 4);
        assert_eq!(s.pending_bytes, 0);
        assert_eq!(s.next_lsn, 5);
    }

    #[test]
    fn next_lsn_skips_discarded_tail_so_recovery_stays_contiguous() {
        let mut wal = Wal::new();
        committed_batch(&mut wal, &[(0, 1)]); // lsn 1 (image), 2 (commit)
        wal.append(&WalRecord::PageImage {
            page: 0,
            image: Box::new(page_with_byte(2)),
        }); // lsn 3: flushed but never committed
        wal.flush();

        let scan = wal.scan();
        assert_eq!(scan.discarded_records, 1);
        assert_eq!(
            scan.next_lsn, 3,
            "next_lsn must follow the retained prefix, not the discarded tail"
        );

        // Recovery truncates the tail and renumbers from the scan; the
        // next committed batch must survive a second scan with no gap.
        wal.truncate_durable(scan.valid_len);
        wal.set_next_lsn(scan.next_lsn);
        committed_batch(&mut wal, &[(1, 9)]);
        let rescan = wal.scan();
        assert!(!rescan.torn_tail, "LSN gap after recovery");
        assert_eq!(rescan.committed.len(), 2);
        assert_eq!(replay(&rescan).pages[&1].as_bytes()[100], 9);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = Wal::new().scan();
        assert!(scan.committed.is_empty());
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.next_lsn, 1);
    }
}
