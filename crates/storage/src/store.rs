//! Record-level object store with clustering hints and overflow chains.
//!
//! ORION's `make` message accepts a `:parent` clause that doubles as a
//! clustering directive: "the newly created object is clustered with the
//! first specified parent … if the classes of the two objects are stored in
//! the same physical segment" (paper §2.3). [`ObjectStore::insert`] exposes
//! exactly that contract through its `near` hint.
//!
//! Records are addressed by [`PhysId`] — `(segment, page, slot)`. Updates
//! that outgrow their page relocate the record and return the new address;
//! the object table in `corion-core` owns the OID → `PhysId` mapping, so
//! relocation never invalidates an OID (OIDs are logical, per §2.1).
//!
//! ## Large objects
//!
//! An object whose reverse-reference list or set-valued attributes outgrow
//! one page (composite objects with hundreds of components do) is split
//! transparently into an **overflow chain**: a head record followed by
//! continuation chunks, each placed near its predecessor so a chained read
//! stays clustered. Callers never see chunks — `read` reassembles, `delete`
//! frees the chain, `scan` skips continuations.

use std::collections::HashMap;

use crate::buffer::{BufferPool, BufferStats};
use crate::codec::{self, Reader};
use crate::disk::{DiskStats, SimDisk};
use crate::error::{StorageError, StorageResult};
use crate::page::{SlotId, MAX_RECORD};
use crate::segment::{Segment, SegmentId};

/// Physical address of a stored record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysId {
    /// Segment the record lives in.
    pub segment: SegmentId,
    /// Page within the disk.
    pub page: u64,
    /// Slot within the page.
    pub slot: SlotId,
}

impl std::fmt::Display for PhysId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.segment, self.page, self.slot)
    }
}

/// Tuning knobs for the store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Frames in the buffer pool.
    pub buffer_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        // Large enough that unit tests never thrash, small enough that the
        // clustering bench can observe cold-cache behaviour by shrinking it.
        StoreConfig {
            buffer_capacity: 256,
        }
    }
}

/// Record tags (first byte of every stored record).
const TAG_INLINE: u8 = 0;
const TAG_HEAD: u8 = 1;
const TAG_CHUNK: u8 = 2;

/// Encoded size of a chain pointer: tag(present) handled separately;
/// segment u32 + page u64 + slot u16.
const PTR_BYTES: usize = 4 + 8 + 2;
/// Head record overhead: tag + total_len u64 + next pointer.
const HEAD_OVERHEAD: usize = 1 + 8 + PTR_BYTES;
/// Continuation chunk overhead: tag + has_next u8 + next pointer.
const CHUNK_OVERHEAD: usize = 1 + 1 + PTR_BYTES;

/// Payload bytes an inline record can carry.
pub const MAX_INLINE: usize = MAX_RECORD - 1;

fn put_ptr(buf: &mut Vec<u8>, id: PhysId) {
    codec::put_u32(buf, id.segment.0);
    codec::put_u64(buf, id.page);
    codec::put_u16(buf, id.slot);
}

fn get_ptr(r: &mut Reader<'_>) -> StorageResult<PhysId> {
    Ok(PhysId {
        segment: SegmentId(r.u32("chain segment")?),
        page: r.u64("chain page")?,
        slot: r.u16("chain slot")?,
    })
}

/// A segmented, buffered record store.
pub struct ObjectStore {
    pool: BufferPool,
    segments: HashMap<SegmentId, Segment>,
    next_segment: u32,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl ObjectStore {
    /// Creates a store over a fresh simulated disk.
    pub fn new(config: StoreConfig) -> Self {
        ObjectStore {
            pool: BufferPool::new(SimDisk::new(), config.buffer_capacity),
            segments: HashMap::new(),
            next_segment: 0,
        }
    }

    /// Creates a new, empty segment.
    pub fn create_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.segments.insert(id, Segment::new(id));
        id
    }

    fn segment(&self, id: SegmentId) -> StorageResult<&Segment> {
        self.segments
            .get(&id)
            .ok_or(StorageError::InvalidSegment { segment: id.0 })
    }

    /// Places one raw (already tagged) record in `segment`, preferring the
    /// pages around `near`.
    fn place(
        &mut self,
        segment: SegmentId,
        record: &[u8],
        near: Option<PhysId>,
    ) -> StorageResult<PhysId> {
        let near_page = near.filter(|n| n.segment == segment).map(|n| n.page);
        let candidates = self
            .segment(segment)?
            .placement_candidates(record.len(), near_page);
        for page in candidates {
            let inserted = self.pool.with_page_mut(page, |p| {
                if p.fits(record.len()) {
                    Some((p.insert(record), p.free_space()))
                } else {
                    None
                }
            })?;
            if let Some((slot, free)) = inserted {
                let slot = slot?;
                self.segments
                    .get_mut(&segment)
                    .expect("segment checked above")
                    .set_free_hint(page, free);
                return Ok(PhysId {
                    segment,
                    page,
                    slot,
                });
            }
            // The hint was stale; record the truth so we skip next time.
            let free = self.pool.with_page(page, |p| p.free_space())?;
            self.segments
                .get_mut(&segment)
                .expect("segment checked above")
                .set_free_hint(page, free);
        }
        // No existing page fits: grow the segment.
        let page = self.pool.allocate();
        self.segments
            .get_mut(&segment)
            .ok_or(StorageError::InvalidSegment { segment: segment.0 })?
            .adopt_page(page);
        let (slot, free) = self
            .pool
            .with_page_mut(page, |p| (p.insert(record), p.free_space()))?;
        let slot = slot?;
        self.segments
            .get_mut(&segment)
            .expect("segment checked above")
            .set_free_hint(page, free);
        Ok(PhysId {
            segment,
            page,
            slot,
        })
    }

    /// Inserts `record` into `segment`.
    ///
    /// If `near` names a record in the same segment, placement tries that
    /// record's page first, then its neighbours — the paper's clustering
    /// rule. A `near` hint in a *different* segment is ignored, exactly as
    /// ORION ignores cross-segment clustering requests. Records larger than
    /// a page are chained transparently.
    pub fn insert(
        &mut self,
        segment: SegmentId,
        record: &[u8],
        near: Option<PhysId>,
    ) -> StorageResult<PhysId> {
        self.segment(segment)?;
        if record.len() <= MAX_INLINE {
            let mut tagged = Vec::with_capacity(record.len() + 1);
            tagged.push(TAG_INLINE);
            tagged.extend_from_slice(record);
            return self.place(segment, &tagged, near);
        }
        // Overflow: head carries the first chunk, continuations the rest.
        // Continuations are written back-to-front so each knows its next.
        let head_payload = MAX_RECORD - HEAD_OVERHEAD;
        let chunk_payload = MAX_RECORD - CHUNK_OVERHEAD;
        let rest = &record[head_payload..];
        let mut chunks: Vec<&[u8]> = rest.chunks(chunk_payload).collect();
        let mut next: Option<PhysId> = None;
        while let Some(chunk) = chunks.pop() {
            let mut buf = Vec::with_capacity(chunk.len() + CHUNK_OVERHEAD);
            buf.push(TAG_CHUNK);
            match next {
                Some(ptr) => {
                    buf.push(1);
                    put_ptr(&mut buf, ptr);
                }
                None => {
                    buf.push(0);
                    put_ptr(
                        &mut buf,
                        PhysId {
                            segment,
                            page: 0,
                            slot: 0,
                        },
                    );
                }
            }
            buf.extend_from_slice(chunk);
            // Chain chunks cluster near their successor (and ultimately the
            // caller's hint).
            next = Some(self.place(segment, &buf, next.or(near))?);
        }
        let mut head = Vec::with_capacity(head_payload + HEAD_OVERHEAD);
        head.push(TAG_HEAD);
        codec::put_u64(&mut head, record.len() as u64);
        put_ptr(
            &mut head,
            next.expect("oversized record has at least one chunk"),
        );
        head.extend_from_slice(&record[..head_payload]);
        self.place(segment, &head, near)
    }

    fn read_raw(&self, id: PhysId) -> StorageResult<Vec<u8>> {
        self.segment(id.segment)?;
        let out = self
            .pool
            .with_page(id.page, |p| p.read(id.slot).map(|b| b.to_vec()))?;
        out.map_err(|_| StorageError::DanglingPhysId {
            segment: id.segment.0,
            page: id.page,
            slot: id.slot,
        })
    }

    /// Reads the record at `id`, reassembling overflow chains.
    ///
    /// Takes `&self`: reads only touch the (internally synchronised) buffer
    /// pool, so any number of threads may read concurrently.
    pub fn read(&self, id: PhysId) -> StorageResult<Vec<u8>> {
        let raw = self.read_raw(id)?;
        let mut r = Reader::new(&raw);
        match r.u8("record tag")? {
            TAG_INLINE => Ok(raw[1..].to_vec()),
            TAG_HEAD => {
                let total = r.u64("chain total length")? as usize;
                let mut next = Some(get_ptr(&mut r)?);
                let mut out = Vec::with_capacity(total);
                out.extend_from_slice(&raw[HEAD_OVERHEAD..]);
                while let Some(ptr) = next {
                    let chunk = self.read_raw(ptr)?;
                    let mut cr = Reader::new(&chunk);
                    if cr.u8("chunk tag")? != TAG_CHUNK {
                        return Err(StorageError::Corrupt {
                            context: "overflow chain",
                        });
                    }
                    let has_next = cr.u8("chunk has_next")? != 0;
                    let np = get_ptr(&mut cr)?;
                    next = has_next.then_some(np);
                    out.extend_from_slice(&chunk[CHUNK_OVERHEAD..]);
                }
                if out.len() != total {
                    return Err(StorageError::Corrupt {
                        context: "overflow chain length",
                    });
                }
                Ok(out)
            }
            // Continuation chunks are not addressable records.
            _ => Err(StorageError::DanglingPhysId {
                segment: id.segment.0,
                page: id.page,
                slot: id.slot,
            }),
        }
    }

    /// Deletes the continuation chunks hanging off a head record.
    fn free_chain(&mut self, head_raw: &[u8]) -> StorageResult<()> {
        let mut r = Reader::new(head_raw);
        let _ = r.u8("record tag")?;
        let _ = r.u64("chain total length")?;
        let mut next = Some(get_ptr(&mut r)?);
        while let Some(ptr) = next {
            let chunk = self.read_raw(ptr)?;
            let mut cr = Reader::new(&chunk);
            let _ = cr.u8("chunk tag")?;
            let has_next = cr.u8("chunk has_next")? != 0;
            let np = get_ptr(&mut cr)?;
            next = has_next.then_some(np);
            self.delete_slot(ptr)?;
        }
        Ok(())
    }

    fn delete_slot(&mut self, id: PhysId) -> StorageResult<()> {
        self.segment(id.segment)?;
        let (res, free) = self
            .pool
            .with_page_mut(id.page, |p| (p.delete(id.slot), p.free_space()))?;
        res.map_err(|_| StorageError::DanglingPhysId {
            segment: id.segment.0,
            page: id.page,
            slot: id.slot,
        })?;
        if let Some(seg) = self.segments.get_mut(&id.segment) {
            seg.set_free_hint(id.page, free);
        }
        Ok(())
    }

    /// Updates the record at `id`, returning its (possibly new) address.
    ///
    /// Inline records that still fit stay in place; everything else is
    /// re-inserted with a `near` hint at the old location, so a relocated
    /// record stays clustered with its old neighbourhood.
    pub fn update(&mut self, id: PhysId, record: &[u8]) -> StorageResult<PhysId> {
        let raw = self.read_raw(id)?;
        let tag = *raw.first().ok_or(StorageError::Corrupt {
            context: "empty record",
        })?;
        if tag == TAG_CHUNK {
            return Err(StorageError::DanglingPhysId {
                segment: id.segment.0,
                page: id.page,
                slot: id.slot,
            });
        }
        if tag == TAG_INLINE && record.len() <= MAX_INLINE {
            let mut tagged = Vec::with_capacity(record.len() + 1);
            tagged.push(TAG_INLINE);
            tagged.extend_from_slice(record);
            let in_place =
                self.pool
                    .with_page_mut(id.page, |p| match p.update(id.slot, &tagged) {
                        Ok(()) => Ok(true),
                        Err(StorageError::RecordTooLarge { .. }) => Ok(false),
                        Err(e) => Err(e),
                    })??;
            if in_place {
                let free = self.pool.with_page(id.page, |p| p.free_space())?;
                if let Some(seg) = self.segments.get_mut(&id.segment) {
                    seg.set_free_hint(id.page, free);
                }
                return Ok(id);
            }
            self.delete_slot(id)?;
            return self.insert(id.segment, record, Some(id));
        }
        // Chained old record, or growth across the inline/chain boundary:
        // free and re-insert.
        if tag == TAG_HEAD {
            self.free_chain(&raw)?;
        }
        self.delete_slot(id)?;
        self.insert(id.segment, record, Some(id))
    }

    /// Deletes the record at `id` (freeing overflow chains).
    pub fn delete(&mut self, id: PhysId) -> StorageResult<()> {
        let raw = self.read_raw(id)?;
        match raw.first() {
            Some(&TAG_HEAD) => self.free_chain(&raw)?,
            Some(&TAG_INLINE) => {}
            _ => {
                return Err(StorageError::DanglingPhysId {
                    segment: id.segment.0,
                    page: id.page,
                    slot: id.slot,
                })
            }
        }
        self.delete_slot(id)
    }

    /// Scans every live record of a segment, in page order, reassembling
    /// chained records and skipping continuation chunks.
    pub fn scan(&self, segment: SegmentId) -> StorageResult<Vec<(PhysId, Vec<u8>)>> {
        let pages: Vec<u64> = self.segment(segment)?.pages().to_vec();
        let mut heads = Vec::new();
        for page in pages {
            let recs = self.pool.with_page(page, |p| {
                p.iter()
                    .filter(|(_, b)| b.first() != Some(&TAG_CHUNK))
                    .map(|(slot, _)| slot)
                    .collect::<Vec<_>>()
            })?;
            for slot in recs {
                heads.push(PhysId {
                    segment,
                    page,
                    slot,
                });
            }
        }
        let mut out = Vec::with_capacity(heads.len());
        for id in heads {
            out.push((id, self.read(id)?));
        }
        Ok(out)
    }

    /// Number of pages in `segment`.
    pub fn segment_pages(&self, segment: SegmentId) -> StorageResult<usize> {
        Ok(self.segment(segment)?.page_count())
    }

    /// Cache counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Physical I/O counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.pool.disk_stats()
    }

    /// Arms disk-level failure injection for error-path tests.
    pub fn fail_after(&self, ops: u64) {
        self.pool.fail_after(ops);
    }

    /// Disarms failure injection.
    pub fn heal(&self) {
        self.pool.heal();
    }

    /// Resets all counters (not contents).
    pub fn reset_stats(&self) {
        self.pool.reset_stats();
    }

    /// Flushes and drops every cached page, so the next access is cold.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.pool.clear_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::default()
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut st = store();
        let seg = st.create_segment();
        let id = st.insert(seg, b"object 1", None).unwrap();
        assert_eq!(st.read(id).unwrap(), b"object 1");
    }

    #[test]
    fn near_hint_places_on_same_page() {
        let mut st = store();
        let seg = st.create_segment();
        let parent = st.insert(seg, &[1u8; 100], None).unwrap();
        let child = st.insert(seg, &[2u8; 100], Some(parent)).unwrap();
        assert_eq!(
            parent.page, child.page,
            "clustered child shares parent's page"
        );
    }

    #[test]
    fn near_hint_in_other_segment_is_ignored() {
        let mut st = store();
        let a = st.create_segment();
        let b = st.create_segment();
        let parent = st.insert(a, &[1u8; 100], None).unwrap();
        let child = st.insert(b, &[2u8; 100], Some(parent)).unwrap();
        assert_eq!(child.segment, b);
    }

    #[test]
    fn overflow_to_neighbouring_pages() {
        let mut st = store();
        let seg = st.create_segment();
        let parent = st.insert(seg, &[0u8; 2000], None).unwrap();
        let mut pages = std::collections::HashSet::new();
        for _ in 0..8 {
            let c = st.insert(seg, &[3u8; 1500], Some(parent)).unwrap();
            pages.insert(c.page);
            assert_eq!(c.segment, seg);
        }
        assert!(pages.len() >= 2, "children spilled to additional pages");
    }

    #[test]
    fn update_in_place_keeps_address() {
        let mut st = store();
        let seg = st.create_segment();
        let id = st.insert(seg, &[1u8; 64], None).unwrap();
        let id2 = st.update(id, &[2u8; 60]).unwrap();
        assert_eq!(id, id2);
        assert_eq!(st.read(id2).unwrap(), vec![2u8; 60]);
    }

    #[test]
    fn update_relocates_when_page_is_full() {
        let mut st = store();
        let seg = st.create_segment();
        let id = st.insert(seg, &[1u8; 100], None).unwrap();
        while st.insert(seg, &[9u8; 512], Some(id)).unwrap().page == id.page {}
        let id2 = st.update(id, &[2u8; 3000]).unwrap();
        assert_eq!(st.read(id2).unwrap(), vec![2u8; 3000]);
        if id2 != id {
            assert!(st.read(id).is_err(), "old address no longer resolves");
        }
    }

    #[test]
    fn delete_then_read_fails() {
        let mut st = store();
        let seg = st.create_segment();
        let id = st.insert(seg, b"gone", None).unwrap();
        st.delete(id).unwrap();
        assert!(matches!(
            st.read(id),
            Err(StorageError::DanglingPhysId { .. })
        ));
        assert!(st.delete(id).is_err());
    }

    #[test]
    fn scan_returns_all_live_records() {
        let mut st = store();
        let seg = st.create_segment();
        let a = st.insert(seg, b"a", None).unwrap();
        let b = st.insert(seg, b"b", None).unwrap();
        st.delete(a).unwrap();
        let recs = st.scan(seg).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, b);
        assert_eq!(recs[0].1, b"b");
    }

    #[test]
    fn segments_are_isolated() {
        let mut st = store();
        let a = st.create_segment();
        let b = st.create_segment();
        st.insert(a, b"in a", None).unwrap();
        assert_eq!(st.scan(b).unwrap().len(), 0);
        assert_eq!(st.scan(a).unwrap().len(), 1);
    }

    #[test]
    fn unknown_segment_is_rejected() {
        let mut st = store();
        let bad = SegmentId(42);
        assert!(st.insert(bad, b"x", None).is_err());
        assert!(st.scan(bad).is_err());
    }

    #[test]
    fn many_records_fill_multiple_pages() {
        let mut st = store();
        let seg = st.create_segment();
        let ids: Vec<PhysId> = (0..500)
            .map(|i| {
                st.insert(seg, format!("record {i}").as_bytes(), None)
                    .unwrap()
            })
            .collect();
        assert!(st.segment_pages(seg).unwrap() >= 2);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(st.read(*id).unwrap(), format!("record {i}").as_bytes());
        }
    }

    // ------------------------------------------------------------------
    // Overflow chains
    // ------------------------------------------------------------------

    #[test]
    fn oversized_record_roundtrips() {
        let mut st = store();
        let seg = st.create_segment();
        for len in [MAX_INLINE + 1, 10_000, 100_000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let id = st.insert(seg, &data, None).unwrap();
            assert_eq!(st.read(id).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn boundary_sizes_roundtrip() {
        let mut st = store();
        let seg = st.create_segment();
        for len in [MAX_INLINE - 1, MAX_INLINE, MAX_INLINE + 1, 2 * MAX_INLINE] {
            let data = vec![7u8; len];
            let id = st.insert(seg, &data, None).unwrap();
            assert_eq!(st.read(id).unwrap().len(), len);
        }
    }

    #[test]
    fn deleting_chained_record_frees_chunks() {
        let mut st = store();
        let seg = st.create_segment();
        let big = vec![1u8; 50_000];
        let id = st.insert(seg, &big, None).unwrap();
        st.delete(id).unwrap();
        assert_eq!(st.scan(seg).unwrap().len(), 0);
        // Freed space is reusable: the same insert fits again without
        // growing the segment unboundedly.
        let pages_before = st.segment_pages(seg).unwrap();
        let id2 = st.insert(seg, &big, None).unwrap();
        assert!(st.segment_pages(seg).unwrap() <= pages_before + 1);
        assert_eq!(st.read(id2).unwrap(), big);
    }

    #[test]
    fn update_grows_across_the_chain_boundary_and_back() {
        let mut st = store();
        let seg = st.create_segment();
        let id = st.insert(seg, &[1u8; 100], None).unwrap();
        let big = vec![2u8; 20_000];
        let id2 = st.update(id, &big).unwrap();
        assert_eq!(st.read(id2).unwrap(), big);
        let id3 = st.update(id2, &[3u8; 50]).unwrap();
        assert_eq!(st.read(id3).unwrap(), vec![3u8; 50]);
        // All chunks freed: scan sees exactly one record.
        assert_eq!(st.scan(seg).unwrap().len(), 1);
    }

    #[test]
    fn scan_skips_continuation_chunks() {
        let mut st = store();
        let seg = st.create_segment();
        let big = vec![9u8; 30_000];
        let id_big = st.insert(seg, &big, None).unwrap();
        let id_small = st.insert(seg, b"tiny", None).unwrap();
        let recs = st.scan(seg).unwrap();
        assert_eq!(recs.len(), 2);
        let by_id: HashMap<PhysId, Vec<u8>> = recs.into_iter().collect();
        assert_eq!(by_id[&id_big], big);
        assert_eq!(by_id[&id_small], b"tiny");
    }

    #[test]
    fn reading_a_continuation_chunk_directly_fails() {
        let mut st = store();
        let seg = st.create_segment();
        let big = vec![5u8; 20_000];
        let head = st.insert(seg, &big, None).unwrap();
        // Find some chunk: scan pages for a slot that is not the head and
        // try to read it as a record.
        let pages: Vec<u64> = st.segment(seg).unwrap().pages().to_vec();
        let mut chunk = None;
        for page in pages {
            let slots = st
                .pool
                .with_page(page, |p| p.iter().map(|(s, _)| s).collect::<Vec<_>>())
                .unwrap();
            for slot in slots {
                let id = PhysId {
                    segment: seg,
                    page,
                    slot,
                };
                if id != head {
                    chunk = Some(id);
                }
            }
        }
        let chunk = chunk.expect("a 20k record has chunks");
        assert!(st.read(chunk).is_err());
        assert!(st.delete(chunk).is_err());
        assert!(st.update(chunk, b"x").is_err());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn faults_surface_as_errors_not_panics() {
        let mut st = ObjectStore::new(StoreConfig { buffer_capacity: 2 });
        let seg = st.create_segment();
        let id = st.insert(seg, &[1u8; 100], None).unwrap();
        st.clear_cache().unwrap();
        st.fail_after(0);
        assert!(matches!(
            st.read(id),
            Err(StorageError::InjectedFault { .. })
        ));
        assert!(
            st.insert(seg, &[2u8; 5000], None).is_err(),
            "chained insert propagates too"
        );
        st.heal();
        assert_eq!(st.read(id).unwrap(), vec![1u8; 100]);
    }

    #[test]
    fn fault_during_eviction_is_reported() {
        let mut st = ObjectStore::new(StoreConfig { buffer_capacity: 1 });
        let seg = st.create_segment();
        // Two pages worth of data so accessing the second evicts the first.
        let a = st.insert(seg, &[1u8; 3000], None).unwrap();
        let b = st.insert(seg, &[2u8; 3000], None).unwrap();
        st.read(a).unwrap();
        st.fail_after(0);
        // Reading b must evict (write back) a's dirty page or read b's page:
        // either way the fault surfaces as an error.
        assert!(st.read(b).is_err());
        st.heal();
        st.read(b).unwrap();
    }
}
